#!/usr/bin/env python
"""ISx distributed integer sort: priority queues hide the sort (Fig 7a).

Run:  python examples/distributed_sort.py

Weak-scales the ISx bucket sort across 2 -> 8 simulated nodes for both
backends.  The HCL version pushes keys into one ``HCL::priority_queue``
per node, so the data is *already sorted on arrival* and the sort cost
hides behind communication; the BCL version pushes into circular queues
and pays an explicit O(n log n) local sort afterwards.
"""

from repro.apps import run_isx
from repro.config import ares_like


def main():
    print(f"{'nodes':>5} {'keys':>7} {'BCL (s)':>12} {'HCL (s)':>12} "
          f"{'speedup':>8}  verified")
    for nodes in (2, 4, 8):
        spec = ares_like(nodes=nodes, procs_per_node=4, seed=5)
        hcl = run_isx("hcl", spec, keys_per_rank=64)
        bcl = run_isx("bcl", spec, keys_per_rank=64)
        assert hcl.verified and bcl.verified
        print(f"{nodes:>5} {hcl.total_keys:>7} "
              f"{bcl.time_seconds:>12.6f} {hcl.time_seconds:>12.6f} "
              f"{bcl.time_seconds / hcl.time_seconds:>7.1f}x  "
              f"{hcl.verified and bcl.verified}")
    print("\npaper (8 -> 64 nodes): BCL scales linearly to 686 s, "
          "HCL sub-linearly to 57 s (12x)")


if __name__ == "__main__":
    main()
