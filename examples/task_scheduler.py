#!/usr/bin/env python
"""Distributed task scheduling over HCL containers.

Run:  python examples/task_scheduler.py

One of the paper's motivating use cases ("indexing services, scheduling,
data sharing").  A random task DAG is scheduled across all ranks:

* the ready queue is a global ``HCL::priority_queue`` (most-urgent-first)
  or an ``HCL::queue`` (FIFO) for comparison;
* task state lives in an ``HCL::unordered_map``; dependency checks use the
  *batched* multi-op API (one invocation per partition per check);
* tasks with unfinished dependencies are deferred back into the queue.

The run verifies that every task executed exactly once and never before
its dependencies completed, then compares the two policies' makespans.
"""

from repro.apps import make_task_graph, run_scheduler
from repro.config import ares_like


def main():
    spec = ares_like(nodes=2, procs_per_node=4, seed=1)
    tasks = make_task_graph(count=60, seed=7, max_deps=3)
    edges = sum(len(t.deps) for t in tasks)
    total_work = sum(t.duration for t in tasks)
    print(f"DAG: {len(tasks)} tasks, {edges} dependency edges, "
          f"{total_work * 1e6:.0f} us of serial work, "
          f"{spec.total_procs} workers")

    print(f"\n{'policy':>10} {'makespan':>12} {'deferrals':>10} "
          f"{'efficiency':>11}  verified")
    for policy in ("priority", "fifo"):
        result = run_scheduler(spec, tasks, policy=policy)
        efficiency = total_work / (result.makespan * spec.total_procs)
        print(f"{policy:>10} {result.makespan * 1e6:>10.1f}us "
              f"{result.deferrals:>10} {efficiency:>10.1%}  "
              f"{result.verified}")

    result = run_scheduler(spec, tasks, policy="priority")
    order = sorted(result.executions.items(), key=lambda kv: kv[1][0])
    first = [tid for tid, _ in order[:5]]
    prios = {t.task_id: t.priority for t in tasks}
    print(f"\nfirst tasks started (priority policy): "
          f"{[(t, prios[t]) for t in first]}")
    print("lower priority value = more urgent; the queue drains the DAG "
          "front first")


if __name__ == "__main__":
    main()
