#!/usr/bin/env python
"""Asynchronous futures, callback chaining, and custom bound functions.

Run:  python examples/async_and_callbacks.py

Shows the RoR framework features of Section III-C:

1. **async futures** — overlap many container operations and collect them
   (III-C4), measuring the speedup over sequential calls;
2. **callback chaining** — several dependent operations execute server-side
   in ONE network invocation (III-C3);
3. **user-bound RPC functions** — the procedural-programming escape hatch:
   ship your own function to the data instead of moving the data.
"""

from repro.config import ares_like
from repro.core import HCL
from repro.harness import Blob


def main():
    spec = ares_like(nodes=2, procs_per_node=4, seed=9)

    # ---- 1. async futures overlap the network -------------------------
    def timed(async_mode):
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              initial_buckets=4096)

        def body(rank):
            if async_mode:
                futures = [m.insert_async(rank, (rank, i), Blob(4096))
                           for i in range(32)]
                for fut in futures:
                    yield fut.wait()
            else:
                for i in range(32):
                    yield from m.insert(rank, (rank, i), Blob(4096))

        hcl.run_ranks(body, ranks=range(4))
        return hcl.now

    t_sync, t_async = timed(False), timed(True)
    print(f"128 remote inserts: sequential {t_sync * 1e6:.0f} us, "
          f"async-overlapped {t_async * 1e6:.0f} us "
          f"({t_sync / t_async:.1f}x)")

    # ---- 2. callback chaining: one invocation, three operations --------
    hcl = HCL(spec)
    server = hcl.server(1)
    inventory = {"widgets": 10}
    audit_log = []

    def take(ctx, item, n):
        yield ctx.charge_local(2)
        if inventory.get(item, 0) < n:
            raise ValueError(f"not enough {item}")
        inventory[item] -= n
        return inventory[item]

    def audit(ctx, who, item):
        audit_log.append((who, item, ctx.sim.now))
        return len(audit_log)

    def restock_check(ctx, item, threshold):
        return inventory.get(item, 0) < threshold

    server.bind("take", take)
    server.bind("audit", audit)
    server.bind("restock?", restock_check)

    client = hcl.client(0)

    def chained(rank):
        # take + audit + restock-check: spatially-local updates bundled
        # into a single network call via callback chaining.
        result = yield from client.call(
            1, "take", ("widgets", 3),
            callbacks=[("audit", (f"rank{rank}", "widgets")),
                       ("restock?", ("widgets", 5))],
        )
        return result

    proc = hcl.cluster.spawn(chained(0))
    hcl.cluster.run()
    remaining, (audit_seq, needs_restock) = proc.result
    print(f"chained call: {remaining} widgets left, audit entry "
          f"#{audit_seq}, restock needed: {needs_restock} "
          f"— one round trip, {client.invocations.value:.0f} invocation(s)")

    # ---- 3. ship the function to the data ------------------------------
    big_table = {i: i * i for i in range(100_000)}  # lives on node 1

    def summarize(ctx, lo, hi):
        # Runs where the data is: returns 16 bytes instead of moving ~1MB.
        yield ctx.charge_local((hi - lo) // 64)
        selected = [v for k, v in big_table.items() if lo <= k < hi]
        return sum(selected), len(selected)

    server.bind("summarize", summarize)

    def analyst(rank):
        total, count = yield from client.call(1, "summarize", (10, 10_000))
        return total, count

    proc = hcl.cluster.spawn(analyst(0))
    hcl.cluster.run()
    total, count = proc.result
    print(f"remote summarize(10, 10000): sum={total}, n={count} — the "
          "procedural paradigm moved the function, not the megabytes")


if __name__ == "__main__":
    main()
