#!/usr/bin/env python
"""Distributed BFS over HCL containers — the irregular-app archetype.

Run:  python examples/graph_traversal.py

Builds a random graph, distributes its adjacency lists into an
``HCL::unordered_map`` (batched loads, one invocation per partition), and
runs a level-synchronous BFS where every rank expands a slice of the
frontier and levels synchronize through the collectives layer.  Distances
are verified against networkx, and the same traversal runs on the BCL
baseline for comparison.
"""

from repro.apps import make_graph, run_bfs
from repro.config import ares_like


def main():
    spec = ares_like(nodes=4, procs_per_node=4, seed=2)
    graph = make_graph(vertices=300, avg_degree=4.0, seed=7)
    print(f"graph: {graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges; {spec.total_procs} ranks")

    h = run_bfs("hcl", spec, graph)
    b = run_bfs("bcl", spec, graph)
    assert h.verified and b.verified, "distances must match networkx"
    assert h.reached == b.reached

    print(f"\nBFS reached {h.reached} vertices in {h.levels} levels "
          "(distances verified against networkx)")
    print(f"HCL {h.time_seconds * 1e3:8.3f} ms   "
          f"BCL {b.time_seconds * 1e3:8.3f} ms   "
          f"speedup {b.time_seconds / h.time_seconds:.2f}x")
    print("\nHCL wins through batched adjacency/distance lookups (one "
          "invocation per partition per level) and server-side conditional "
          "inserts; BCL pays CAS-locked client-side updates per neighbor.")


if __name__ == "__main__":
    main()
