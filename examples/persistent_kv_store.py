#!/usr/bin/env python
"""A durable, replicated key-value store on HCL (Section III-C6 / III-A4).

Run:  python examples/persistent_kv_store.py

Demonstrates the DataBox persistency and replication features:

1. an ``unordered_map`` with ``persistence=True`` appends every mutation
   to a *real* mmap-backed log on "NVMe" (one file per partition);
2. replication=1 keeps an asynchronous second copy on the next partition;
3. the process "crashes" (we discard the runtime), and a fresh runtime
   *recovers the full store by replaying the logs*;
4. a corrupted log tail is detected by CRC and cleanly ignored.
"""

import os
import tempfile

from repro.config import ares_like
from repro.core import HCL
from repro.memory import PersistentLog
from repro.serialization import DataBox


def replay(persist_dir, name, partitions):
    """Rebuild container contents from the per-partition DataBox logs."""
    recovered = {}
    for index in range(partitions):
        path = os.path.join(persist_dir, f"{name}.part{index}.hcl")
        if not os.path.exists(path):
            continue
        with PersistentLog(path) as log:
            for record in log.records():
                op, args = DataBox.decode(record.payload).value
                if op in ("insert", "upsert"):
                    key, value = args
                    if op == "upsert":
                        value = recovered.get(key, 0) + value
                    recovered[key] = value
                elif op == "erase":
                    recovered.pop(args[0], None)
    return recovered


def main():
    with tempfile.TemporaryDirectory() as persist_dir:
        spec = ares_like(nodes=2, procs_per_node=4, seed=3)
        hcl = HCL(spec, persist_dir=persist_dir)
        store = hcl.unordered_map(
            "store", partitions=2, persistence=True, replication=1,
        )

        def writer(rank):
            yield from store.insert(rank, f"config:{rank}", rank * 100)
            yield from store.upsert(rank, "writes", 1)
            if rank == 0:
                yield from store.insert(rank, "doomed", "bye")
                yield from store.erase(rank, "doomed")

        hcl.run_ranks(writer)
        hcl.cluster.run()  # drain async replication
        expected = {f"config:{r}": r * 100 for r in range(8)}
        expected["writes"] = 8

        # Replication check: every key exists on primary AND replica.
        replicated = 0
        for key in expected:
            primary = store.partition_for(key)
            replica = store.partitions[(primary.index + 1) % 2]
            if replica.structure.find(key)[1]:
                replicated += 1
        print(f"wrote {len(expected)} keys; {replicated} have live replicas")

        store.close()  # flush the logs; then 'crash' the runtime
        del hcl, store

        # ---- recovery -------------------------------------------------
        recovered = replay(persist_dir, "store", partitions=2)
        assert recovered == expected, (recovered, expected)
        print(f"recovered {len(recovered)} keys from the mmap logs "
              "after the crash — contents exact (erased key stayed gone)")

        # ---- corruption ------------------------------------------------
        victim = os.path.join(persist_dir, "store.part0.hcl")
        size = os.path.getsize(victim)
        with open(victim, "r+b") as fh:
            fh.seek(200)
            fh.write(b"\xde\xad")
        log = PersistentLog(victim)
        intact = sum(1 for _ in log._iter_from(0, stop_on_corrupt=True))
        log.close()
        print(f"after corrupting 2 bytes: CRC scan keeps the {intact} "
              "records before the damage and discards the rest")


if __name__ == "__main__":
    main()
