#!/usr/bin/env python
"""Meraculous-style genome assembly on HCL vs BCL (the Fig 7b/7c workloads).

Run:  python examples/genome_assembly.py

Synthesizes a genome and short reads, then runs both Meraculous kernels on
both backends over the same simulated 4-node cluster configuration:

1. k-mer counting   — histogram into a distributed hash map
   (HCL: one server-side ``upsert`` per k-mer;
    BCL: a CAS-locked client-side read-modify-write, five remote ops);
2. contig generation — de Bruijn graph build + UU-k-mer traversal.

Both backends produce *identical, verified* results; only the simulated
time differs — which is the paper's entire argument.
"""

from repro.apps import (
    run_contig_generation,
    run_kmer_counting,
    synthesize_genome,
)
from repro.config import ares_like


def main():
    spec = ares_like(nodes=4, procs_per_node=4, seed=11)
    data = synthesize_genome(
        genome_length=1200,
        num_reads=90,
        read_length=60,
        k=15,
        seed=11,
    )
    print(f"genome: {len(data.genome)} bp, {data.num_reads} reads of "
          f"{len(data.reads[0])} bp, k={data.k}")

    print("\n-- k-mer counting ------------------------------------------")
    kh = run_kmer_counting("hcl", spec, data)
    kb = run_kmer_counting("bcl", spec, data)
    assert kh.verified and kb.verified, "histograms must match exactly"
    print(f"counted {kh.total_kmers} k-mer occurrences "
          f"({kh.distinct_kmers} distinct), both exact")
    print(f"HCL {kh.time_seconds * 1e3:8.3f} ms   "
          f"BCL {kb.time_seconds * 1e3:8.3f} ms   "
          f"speedup {kb.time_seconds / kh.time_seconds:.2f}x "
          f"(paper: 2.17x-8x)")

    print("\n-- contig generation ---------------------------------------")
    ch = run_contig_generation("hcl", spec, data)
    cb = run_contig_generation("bcl", spec, data)
    assert ch.verified and cb.verified
    assert ch.contigs == cb.contigs, "backends must assemble identically"
    longest = max(ch.contigs, key=len)
    print(f"assembled {len(ch.contigs)} contigs; longest {len(longest)} bp "
          f"(reads are {len(data.reads[0])} bp) — every contig is a genome "
          "substring")
    print(f"HCL {ch.time_seconds * 1e3:8.3f} ms   "
          f"BCL {cb.time_seconds * 1e3:8.3f} ms   "
          f"speedup {cb.time_seconds / ch.time_seconds:.2f}x "
          f"(paper: 1.8x-12x)")

    coverage = sum(len(c) for c in ch.contigs) / len(data.genome)
    print(f"\ncontig bases / genome bases = {coverage:.2f}")


if __name__ == "__main__":
    main()
