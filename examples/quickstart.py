#!/usr/bin/env python
"""Quickstart: HCL containers on a simulated 4-node cluster.

Run:  python examples/quickstart.py

Builds an Ares-like cluster, creates one container of each kind, runs 16
rank processes that exercise them, and prints what happened — including
the simulated wall-clock the operations took on the modeled RoCE fabric.
"""

from repro.config import ares_like
from repro.core import HCL


def main():
    # 4 nodes x 4 processes — the paper's testbed shape, scaled down.
    hcl = HCL(ares_like(nodes=4, procs_per_node=4, seed=42))

    # One container of each kind (Section III-D).  Constructors need no
    # coordination; every rank uses the same global name.
    kv = hcl.unordered_map("kv")                       # cuckoo-hash map
    members = hcl.unordered_set("members")             # hash set
    ordered = hcl.map("ordered")                       # red-black-tree map
    tasks = hcl.queue("tasks", home_node=1)            # lock-free FIFO
    sched = hcl.priority_queue("sched", home_node=2,   # MDList min-queue
                               dims=4, base=16)

    def rank_body(rank):
        # Hash map: two-level hashing picks the partition; co-located
        # partitions are accessed through shared memory (hybrid model).
        yield from kv.insert(rank, f"user:{rank}", {"rank": rank, "hits": 0})
        value, found = yield from kv.find(rank, f"user:{rank}")
        assert found and value["rank"] == rank

        # Atomic server-side update — one invocation, no lost updates.
        total = yield from kv.upsert(rank, "op-count", 1)

        # Set + ordered map.
        yield from members.insert(rank, rank % 5)
        yield from ordered.insert(rank, f"{rank:04d}", rank * rank)

        # Queues: globally visible single-partition structures.
        yield from tasks.push(rank, f"task-from-{rank}")
        yield from sched.push(rank, priority=100 - rank, value=f"job{rank}")
        return total

    procs = hcl.run_ranks(rank_body)
    print(f"16 ranks finished in {hcl.now * 1e6:.1f} simulated us")
    print(f"kv entries: {kv.total_entries()}, "
          f"local hits: {kv.local_hits.value:.0f}, "
          f"remote RPCs: {kv.remote_calls.value:.0f}")
    print(f"distinct set members: {members.total_entries()}")

    # Drain the queues from one rank: FIFO order and priority order.
    def drain(rank):
        first_task, ok = yield from tasks.pop(rank)
        top_job, ok = yield from sched.pop(rank)
        count, _found = yield from kv.find(rank, "op-count")
        return first_task, top_job, count

    proc = hcl.cluster.spawn(drain(0))
    hcl.cluster.run()
    first_task, top_job, count = proc.result
    print(f"first queued task: {first_task!r}")
    print(f"highest-priority job: {top_job!r}  (priority = 100 - rank)")
    print(f"op-count accumulated by upsert: {count}")
    hcl.close()


if __name__ == "__main__":
    main()
