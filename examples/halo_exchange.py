#!/usr/bin/env python
"""MPI-style 1-D stencil with halo exchange over the simulated fabric.

Run:  python examples/halo_exchange.py

Shows the point-to-point layer (``repro.core.p2p.Comm``) and collectives
working together like an mpi4py program: each rank owns a slice of a 1-D
field and iterates a 3-point averaging stencil, exchanging one-cell halos
with its neighbours each step.  Co-located neighbours exchange through
shared memory (the hybrid model); node-boundary neighbours cross the
simulated RoCE fabric.  The result is verified against a single-process
reference computation.
"""

import numpy as np

from repro.config import ares_like
from repro.core import HCL, Collectives, Comm


def reference(field: np.ndarray, steps: int) -> np.ndarray:
    out = field.astype(np.float64).copy()
    for _ in range(steps):
        nxt = out.copy()
        nxt[1:-1] = (out[:-2] + out[1:-1] + out[2:]) / 3.0
        out = nxt
    return out


def main():
    spec = ares_like(nodes=2, procs_per_node=4, seed=3)
    hcl = HCL(spec)
    comm = Comm(hcl)
    coll = Collectives(hcl)
    n_ranks = spec.total_procs
    cells_per_rank = 32
    total = n_ranks * cells_per_rank
    rng = np.random.default_rng(3)
    field = rng.random(total)
    steps = 10
    slices = {}

    def body(rank):
        lo = rank * cells_per_rank
        local = field[lo:lo + cells_per_rank].copy()
        for step in range(steps):
            # Halo exchange with neighbours (tags disambiguate direction).
            left, right = rank - 1, rank + 1
            handles = []
            if left >= 0:
                handles.append(comm.isend(float(local[0]), dest=left,
                                          tag=step * 2, rank=rank))
            if right < n_ranks:
                handles.append(comm.isend(float(local[-1]), dest=right,
                                          tag=step * 2 + 1, rank=rank))
            halo_l = halo_r = None
            if left >= 0:
                halo_l = yield from comm.recv(source=left, tag=step * 2 + 1,
                                              rank=rank)
            if right < n_ranks:
                halo_r = yield from comm.recv(source=right, tag=step * 2,
                                              rank=rank)
            for h in handles:
                yield h
            # 3-point stencil with the received halos.
            padded = np.concatenate((
                [halo_l if halo_l is not None else local[0]],
                local,
                [halo_r if halo_r is not None else local[-1]],
            ))
            smoothed = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
            # Boundary cells of the global domain keep their values.
            if left < 0:
                smoothed[0] = local[0]
            if right >= n_ranks:
                smoothed[-1] = local[-1]
            local = smoothed
            yield from coll.barrier(rank)
        slices[rank] = local
        norm = yield from coll.all_reduce(rank, float(np.sum(local ** 2)))
        return norm

    procs = hcl.run_ranks(body)
    result = np.concatenate([slices[r] for r in range(n_ranks)])
    expected = reference(field, steps)
    err = float(np.max(np.abs(result - expected)))
    print(f"{n_ranks} ranks x {cells_per_rank} cells, {steps} stencil steps")
    print(f"max |distributed - reference| = {err:.2e}")
    assert err < 1e-12, "stencil mismatch!"
    print(f"global L2^2 norm (all_reduce): {procs[0].result:.6f}")
    print(f"simulated time: {hcl.now * 1e6:.1f} us; "
          f"local halo messages: {comm.local_deliveries.value:.0f} of "
          f"{comm.messages_sent.value:.0f}")


if __name__ == "__main__":
    main()
