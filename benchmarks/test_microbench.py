"""Fabric microbenchmarks — the calibration evidence behind every figure.

Not a paper figure, but the paper's Section IV quotes two microbenchmark
anchors for its testbed (OSU ~4.5 GB/s between nodes, STREAM ~65 GB/s per
node).  This bench measures the same quantities from inside the simulation
for each OFI provider, so the calibration shows up in every benchmark run's
output next to the figures it underpins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import ares_like
from repro.harness import render_table
from repro.harness.microbench import run_microbench


@pytest.mark.benchmark(group="microbench")
def test_fabric_microbenchmarks(benchmark, report):
    def run():
        spec = ares_like(nodes=2, procs_per_node=4)
        return {p: run_microbench(spec, provider=p)
                for p in ("roce", "verbs", "tcp")}

    reports = run_once(benchmark, run)
    metrics = [row[0] for row in reports["roce"].rows()]
    rows = []
    for i, metric in enumerate(metrics):
        rows.append([metric] + [reports[p].rows()[i][1]
                                for p in ("roce", "verbs", "tcp")])
    report(render_table(
        "Fabric microbenchmarks by provider "
        "(paper anchors: OSU ~4.5 GB/s, STREAM ~65 GB/s)",
        ["metric", "roce", "verbs", "tcp"], rows,
    ))

    roce = reports["roce"]
    # Paper anchors.
    assert 55.0 < roce.stream_gbs < 70.0
    assert 3.2 < roce.bandwidth_gbs < 4.7
    # Provider ordering.
    assert reports["verbs"].bandwidth_gbs > roce.bandwidth_gbs
    assert reports["tcp"].bandwidth_gbs < roce.bandwidth_gbs
    assert reports["tcp"].rpc_null_latency_us > roce.rpc_null_latency_us
