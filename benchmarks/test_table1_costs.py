"""Table I — operation cost validation for all six containers.

The paper states each operation's worst-case cost in the symbols F (remote
invocation), L (local memory op), R/W (local read/write), N (entries),
E (batch size).  We run every container, measure the per-operation symbol
counts recorded by the cost ledger, and check them against the formulas:

==================  ======================  ===========================
container           insert/push             find/pop
==================  ======================  ===========================
unordered_map/set   F + L + W               F + L + R
map/set (ordered)   F + L*log(N) + W        F + L*log(N) + R
queue               F + L + W  (E*W vec.)   F + L + R  (E*R vectorized)
priority_queue      F + L*log(N) + W        F + L + R
==================  ======================  ===========================
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once
from repro.config import ares_like
from repro.core import HCL
from repro.harness import render_table

ENTRIES = 512


def _runtime():
    return HCL(ares_like(nodes=2, procs_per_node=4))


def _ledger_rows(container, ops):
    return {op: container.ledger.per_op(op) for op in ops}


@pytest.mark.benchmark(group="table1")
def test_table1_operation_costs(benchmark, report):
    def run():
        results = {}

        # --- unordered map / set -------------------------------------
        hcl = _runtime()
        um = hcl.unordered_map("um", partitions=1, nodes=[1],
                               initial_buckets=4 * ENTRIES)
        us = hcl.unordered_set("us", partitions=1, nodes=[1],
                               initial_buckets=4 * ENTRIES)

        def body(rank):
            for i in range(ENTRIES // 4):
                key = rank * 10_000 + i
                yield from um.insert(rank, key, key)
                yield from us.insert(rank, key)
            for i in range(ENTRIES // 4):
                key = rank * 10_000 + i
                yield from um.find(rank, key)
                yield from us.find(rank, key)

        hcl.run_ranks(body, ranks=range(4))
        results["unordered_map"] = _ledger_rows(um, ("insert", "find"))
        results["unordered_set"] = _ledger_rows(us, ("insert", "find"))

        # --- ordered map / set ----------------------------------------
        hcl = _runtime()
        om = hcl.map("om", partitions=1, nodes=[1],
                     partitioner=lambda k, n: 0)
        os_ = hcl.set("os", partitions=1, nodes=[1],
                      partitioner=lambda k, n: 0)

        def obody(rank):
            for i in range(ENTRIES // 4):
                key = rank * 10_000 + i
                yield from om.insert(rank, key, key)
                yield from os_.insert(rank, key)
            for i in range(ENTRIES // 4):
                key = rank * 10_000 + i
                yield from om.find(rank, key)
                yield from os_.find(rank, key)

        hcl.run_ranks(obody, ranks=range(4))
        results["map"] = _ledger_rows(om, ("insert", "find"))
        results["set"] = _ledger_rows(os_, ("insert", "find"))

        # --- queues -------------------------------------------------------
        hcl = _runtime()
        q = hcl.queue("q", home_node=1)
        pq = hcl.priority_queue("pq", home_node=1, dims=8, base=16)

        def qbody(rank):
            for i in range(ENTRIES // 8):
                yield from q.push(rank, i)
                yield from pq.push(rank, rank * 10_000 + i, i)
            for _ in range(ENTRIES // 8):
                yield from q.pop(rank)
                yield from pq.pop(rank)

        hcl.run_ranks(qbody, ranks=range(4))
        results["queue"] = _ledger_rows(q, ("push", "pop"))
        results["priority_queue"] = _ledger_rows(pq, ("push", "pop"))
        return results

    results = run_once(benchmark, run)

    rows = []
    for container, ops in results.items():
        for op, row in ops.items():
            rows.append([
                container, op, int(row["count"]),
                round(row["F"], 2), round(row["L"], 2),
                round(row["R"], 2), round(row["W"], 2),
            ])
    report(render_table(
        "Table I — measured per-op symbol counts (F=remote invocation)",
        ["container", "op", "n", "F/op", "L/op", "R/op", "W/op"], rows,
    ))

    log_n = math.log2(ENTRIES)

    # Every operation compiles to at most ONE remote invocation.
    for container, ops in results.items():
        for op, row in ops.items():
            assert row["F"] <= 1.0, f"{container}.{op}: F={row['F']}"

    # Hash containers: constant L (two-level hashing, <= a few probes).
    for name in ("unordered_map", "unordered_set"):
        assert results[name]["insert"]["L"] < 8
        assert results[name]["find"]["L"] <= 3
        assert results[name]["insert"]["W"] >= 1
        assert results[name]["find"]["R"] >= 1
        assert results[name]["find"]["W"] == 0

    # Ordered containers: L grows with log N, stays far below N.
    for name in ("map", "set"):
        assert 0.5 * log_n <= results[name]["insert"]["L"] <= 4 * log_n
        assert 0.5 * log_n <= results[name]["find"]["L"] <= 4 * log_n
        assert results[name]["find"]["W"] == 0

    # FIFO queue: constant-time push and pop.
    assert results["queue"]["push"]["L"] <= 4
    assert results["queue"]["pop"]["L"] <= 4
    assert results["queue"]["push"]["W"] >= 1
    assert results["queue"]["pop"]["R"] >= 1

    # Priority queue: push pays the log-like MDList descent, pop is cheap
    # (first unmarked node) — the Table I asymmetry.
    assert results["priority_queue"]["push"]["L"] > results["queue"]["push"]["L"]
    assert results["priority_queue"]["push"]["L"] <= 8 * 16 + 8
    assert results["priority_queue"]["pop"]["R"] >= 1


@pytest.mark.benchmark(group="table1")
def test_table1_vector_ops_amortize_invocations(benchmark, report):
    """Vector push/pop: F + L + E*W — one invocation for E elements."""

    def run():
        hcl = _runtime()
        q = hcl.queue("q", home_node=1)
        E = 32

        def body(rank):
            yield from q.push_many(rank, list(range(E)))
            yield from q.pop_many(rank, E)

        hcl.run_ranks(body, ranks=range(4))
        return {
            "push_many": q.ledger.per_op("push_many"),
            "pop_many": q.ledger.per_op("pop_many"),
        }, E

    rows, E = run_once(benchmark, run)
    report(render_table(
        "Table I — vectorized queue ops (E=%d)" % E,
        ["op", "F/call", "W/call", "R/call"],
        [["push_many", rows["push_many"]["F"], rows["push_many"]["W"],
          rows["push_many"]["R"]],
         ["pop_many", rows["pop_many"]["F"], rows["pop_many"]["W"],
          rows["pop_many"]["R"]]],
    ))
    assert rows["push_many"]["F"] <= 1.0
    assert rows["push_many"]["W"] >= E  # E writes in ONE call
    assert rows["pop_many"]["F"] <= 1.0
    assert rows["pop_many"]["R"] >= E
