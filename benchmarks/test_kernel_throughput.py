"""Kernel event-throughput microbenchmark (the tentpole metric).

Unlike the figure benches, this one measures *wall clock*, not simulated
seconds: how many DES events the kernel retires per second on the
reference workload (100 procs x 2000 timeouts).  With ``EMIT_BENCH=1``
in the environment the result is written to ``BENCH_kernel.json`` at the
repo root so the perf trajectory is tracked from PR to PR; without it
the committed baseline is left untouched (wall numbers are
machine-specific, and unconditional rewrites dirtied unrelated PRs).

The assertion threshold is deliberately generous (CI machines vary); the
real number for this tree is recorded in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.kernelbench import (
    SEED_BASELINE_EVENTS_PER_SEC,
    emit_bench_json,
    kernel_events_per_sec,
    run_kernel_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

# Generous smoke floor: the optimized kernel measures ~2.5-3x the ~384k
# ev/s seed baseline on the reference machine; flag only a collapse back
# below the seed's neighborhood, not ordinary machine-to-machine noise.
SMOKE_FLOOR_EVENTS_PER_SEC = 500_000


@pytest.mark.benchmark(group="kernel")
def test_kernel_events_per_sec(benchmark, report):
    rep = benchmark.pedantic(
        kernel_events_per_sec, rounds=1, iterations=1, warmup_rounds=0
    )
    emitted = ""
    if os.environ.get("EMIT_BENCH"):
        emit_bench_json(rep, str(REPO_ROOT / "BENCH_kernel.json"))
        emitted = "\n  -> BENCH_kernel.json"
    rows = "\n".join(f"  {k:<28} {v}" for k, v in rep.rows())
    report(
        "Kernel microbenchmark — events/s on 100 procs x 2000 timeouts\n"
        f"{rows}{emitted}"
    )
    # Workload shape is exact and deterministic even though wall clock is not:
    # 100 starts + 200,000 timeouts + 100 process-completion events.
    assert rep.events_processed == 200_200
    assert rep.events_per_sec > SMOKE_FLOOR_EVENTS_PER_SEC, (
        f"kernel throughput regressed: {rep.events_per_sec:,.0f} ev/s "
        f"(floor {SMOKE_FLOOR_EVENTS_PER_SEC:,}, "
        f"seed baseline ~{SEED_BASELINE_EVENTS_PER_SEC:,})"
    )


@pytest.mark.benchmark(group="kernel")
def test_kernel_pooling_off_matches_sim_results(benchmark, report):
    """Pooling must be a pure wall-clock knob: identical simulated outcome."""

    def run():
        return run_kernel_bench(pooling=True), run_kernel_bench(pooling=False)

    on, off = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    report(
        "Kernel pooling on/off parity\n"
        f"  pooling on   {on.events_per_sec:>12,.0f} ev/s  "
        f"(recycled {on.events_recycled:,})\n"
        f"  pooling off  {off.events_per_sec:>12,.0f} ev/s  "
        f"(recycled {off.events_recycled:,})"
    )
    assert on.events_processed == off.events_processed
    assert on.sim_seconds == off.sim_seconds
    assert on.events_recycled > 0
    assert off.events_recycled == 0
