"""Bench-regression gate: fresh BENCH_*.json vs the committed baselines.

CI regenerates each bench artifact and compares it against the version
committed in the tree, failing the job when a tracked metric regresses by
more than ``--tolerance`` (default 15%):

* ``kernel``  — ``events_per_sec`` (wall clock; higher is better).  Wall
  throughput varies machine to machine, so the committed number (recorded
  on the reference machine) is only comparable on similar hardware — CI
  jobs on shared runners should pass a wider ``--tolerance``.
* ``agg``     — per-app ``sim_speedup`` (simulated, deterministic), plus
  every fresh row must still verify.  Runs are only comparable at the
  same scale/topology; mismatches fail loudly rather than comparing
  apples to oranges.
* ``serving`` — per-config ``ops_per_sim_sec`` (higher is better) and
  ``latency.p99`` (lower is better), plus the overload-cliff ``p99_ratio``
  when both reports carry one.  All simulated and deterministic: on
  identical code the fresh report is byte-identical to the baseline, so
  any drift here is a real behavior change.
* ``async``   — the pipelined-futures A/B: the async-auto-over-sync
  speedup (wall or sim, matching the baseline's mode; higher is better),
  the async p99 server queue wait (lower is better — the SLO the AIMD
  windows protect), and the auto-tuned-vs-best-static ratio (lower is
  better).  Every fresh row must verify with a single shared digest.

Usage::

    python benchmarks/check_regression.py --kind serving \
        --fresh /tmp/BENCH_serving.json --baseline BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

__all__ = ["compare_kernel", "compare_agg", "compare_serving",
           "compare_async", "main"]

DEFAULT_TOLERANCE = 0.15

#: serving config fields that must match for two reports to be comparable
_SERVING_CONFIG_KEYS = (
    "nodes", "procs_per_node", "clients", "tenants", "theta",
    "keys_per_tenant", "queue_frac", "queue_home", "rate_per_client",
    "ops_per_client", "seed", "shed_retries", "rpc_batch_size",
)


def _worse(fresh: float, base: float, tolerance: float,
           higher_is_better: bool = True) -> bool:
    """True when ``fresh`` regresses past ``tolerance`` relative to ``base``."""
    if base == 0:
        return False
    if higher_is_better:
        return fresh < base * (1.0 - tolerance)
    return fresh > base * (1.0 + tolerance)


def _fmt(name: str, fresh: float, base: float) -> str:
    delta = (fresh / base - 1.0) * 100 if base else float("inf")
    return f"{name}: {fresh:.6g} vs baseline {base:.6g} ({delta:+.1f}%)"


def compare_kernel(fresh: Dict, baseline: Dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    failures: List[str] = []
    f, b = fresh["events_per_sec"], baseline["events_per_sec"]
    if _worse(f, b, tolerance):
        failures.append(_fmt("kernel events_per_sec", f, b))
    if fresh.get("events_processed") != baseline.get("events_processed"):
        failures.append(
            "kernel workload shape changed: events_processed "
            f"{fresh.get('events_processed')} vs "
            f"{baseline.get('events_processed')}"
        )
    return failures


def compare_agg(fresh: Dict, baseline: Dict,
                tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    failures: List[str] = []
    for key in ("scale", "nodes", "procs_per_node"):
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"agg runs not comparable: {key} {fresh.get(key)} vs "
                f"{baseline.get(key)}"
            )
    if failures:
        return failures
    for row in fresh.get("rows", []):
        if not row.get("verified", True):
            failures.append(
                f"agg row failed verification: {row['app']} "
                f"aggregation={row['aggregation']}"
            )
    for app, base_entry in sorted(baseline["speedups"].items()):
        fresh_entry = fresh["speedups"].get(app)
        if fresh_entry is None:
            failures.append(f"agg app {app!r} missing from fresh run")
            continue
        f, b = fresh_entry["sim_speedup"], base_entry["sim_speedup"]
        if _worse(f, b, tolerance):
            failures.append(_fmt(f"agg {app} sim_speedup", f, b))
    return failures


def compare_serving(fresh: Dict, baseline: Dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    failures: List[str] = []
    for key in _SERVING_CONFIG_KEYS:
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"serving runs not comparable: {key} {fresh.get(key)} vs "
                f"{baseline.get(key)}"
            )
    if failures:
        return failures
    base_cfgs = {c["queue_bound"]: c for c in baseline["configs"]}
    fresh_cfgs = {c["queue_bound"]: c for c in fresh["configs"]}
    if set(base_cfgs) != set(fresh_cfgs):
        return [f"serving bounds differ: {sorted(map(str, fresh_cfgs))} vs "
                f"{sorted(map(str, base_cfgs))}"]
    for bound, base_cfg in sorted(base_cfgs.items(), key=lambda kv: str(kv[0])):
        fresh_cfg = fresh_cfgs[bound]
        label = "off" if bound is None else bound
        f, b = fresh_cfg["ops_per_sim_sec"], base_cfg["ops_per_sim_sec"]
        if _worse(f, b, tolerance):
            failures.append(_fmt(f"serving[{label}] ops_per_sim_sec", f, b))
        f, b = fresh_cfg["latency"]["p99"], base_cfg["latency"]["p99"]
        if _worse(f, b, tolerance, higher_is_better=False):
            failures.append(_fmt(f"serving[{label}] p99", f, b))
    base_cliff = baseline.get("cliff")
    fresh_cliff = fresh.get("cliff")
    if base_cliff and fresh_cliff:
        f, b = fresh_cliff["p99_ratio"], base_cliff["p99_ratio"]
        if _worse(f, b, tolerance):
            failures.append(_fmt("serving cliff p99_ratio", f, b))
    return failures


def compare_async(fresh: Dict, baseline: Dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    failures: List[str] = []
    for key in ("scale", "nodes", "procs_per_node", "sim_only"):
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"async runs not comparable: {key} {fresh.get(key)} vs "
                f"{baseline.get(key)}"
            )
    if failures:
        return failures
    digests = set()
    for row in fresh.get("rows", []):
        if not row.get("verified", True):
            failures.append(
                f"async row failed verification: {row['mode']} "
                f"aggregation={row['aggregation']}"
            )
        digests.add(row.get("digest"))
    if len(digests) > 1:
        failures.append(
            f"async digests diverged across modes: {sorted(digests)}"
        )
    f_sum, b_sum = fresh.get("summary", {}), baseline.get("summary", {})
    metric = "sim" if baseline.get("sim_only") else "wall"
    key = f"async_{metric}_speedup"
    f, b = f_sum.get(key), b_sum.get(key)
    if f is None:
        failures.append(f"async summary missing {key!r}")
    elif b and _worse(f, b, tolerance):
        failures.append(_fmt(f"async {key}", f, b))
    f, b = f_sum.get("queue_wait_p99_async"), b_sum.get("queue_wait_p99_async")
    if f is not None and b and _worse(f, b, tolerance,
                                      higher_is_better=False):
        failures.append(_fmt("async queue_wait_p99", f, b))
    f, b = f_sum.get("auto_vs_best_static"), b_sum.get("auto_vs_best_static")
    if f is not None and b and _worse(f, b, tolerance,
                                      higher_is_better=False):
        failures.append(_fmt("async auto_vs_best_static", f, b))
    return failures


_COMPARATORS = {
    "kernel": compare_kernel,
    "agg": compare_agg,
    "serving": compare_serving,
    "async": compare_async,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regressions vs a committed BENCH json"
    )
    parser.add_argument("--kind", choices=sorted(_COMPARATORS), required=True)
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (default 0.15; "
                             "widen for wall-clock metrics on noisy runners)")
    args = parser.parse_args(argv)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = _COMPARATORS[args.kind](fresh, baseline, args.tolerance)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"{args.kind}: no regression beyond {args.tolerance:.0%} "
              f"({args.fresh} vs {args.baseline})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
