"""Bench-regression gate: fresh BENCH_*.json vs the committed baselines.

CI regenerates each bench artifact and compares it against the version
committed in the tree, failing the job when a tracked metric regresses by
more than ``--tolerance`` (default 15%):

* ``kernel``  — ``events_per_sec`` (wall clock; higher is better).  Wall
  throughput varies machine to machine, so the committed number (recorded
  on the reference machine) is only comparable on similar hardware — CI
  jobs on shared runners should pass a wider ``--tolerance``.
* ``agg``     — per-app ``sim_speedup`` (simulated, deterministic), plus
  every fresh row must still verify.  Runs are only comparable at the
  same scale/topology; mismatches fail loudly rather than comparing
  apples to oranges.
* ``serving`` — per-config ``ops_per_sim_sec`` (higher is better) and
  ``latency.p99`` (lower is better), plus the overload-cliff ``p99_ratio``
  when both reports carry one.  All simulated and deterministic: on
  identical code the fresh report is byte-identical to the baseline, so
  any drift here is a real behavior change.
* ``async``   — the pipelined-futures A/B: the async-auto-over-sync
  speedup (wall or sim, matching the baseline's mode; higher is better),
  the async p99 server queue wait (lower is better — the SLO the AIMD
  windows protect), and the auto-tuned-vs-best-static ratio (lower is
  better).  Every fresh row must verify with a single shared digest.

Every check is evaluated structurally (``evaluate_*`` return per-check
records; ``compare_*`` keep the historical list-of-failure-strings
surface).  ``--json PATH`` writes the machine-readable verdict.  On a
failing gate the differential forensics engine (``repro.obs.diff``) is
run on the same two files automatically and its markdown report printed
(and written next to ``--forensics-out``), so the failure ships its own
root-cause fingerprint; the exit code is unchanged by forensics.

Usage::

    python benchmarks/check_regression.py --kind serving \
        --fresh /tmp/BENCH_serving.json --baseline BENCH_serving.json \
        --json verdict.json --forensics-out forensics
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

__all__ = ["compare_kernel", "compare_agg", "compare_serving",
           "compare_async", "evaluate_kernel", "evaluate_agg",
           "evaluate_serving", "evaluate_async", "main"]

DEFAULT_TOLERANCE = 0.15

#: serving config fields that must match for two reports to be comparable
_SERVING_CONFIG_KEYS = (
    "nodes", "procs_per_node", "clients", "tenants", "theta",
    "keys_per_tenant", "queue_frac", "queue_home", "rate_per_client",
    "ops_per_client", "seed", "shed_retries", "rpc_batch_size",
)


def _worse(fresh: float, base: float, tolerance: float,
           higher_is_better: bool = True) -> bool:
    """True when ``fresh`` regresses past ``tolerance`` relative to ``base``."""
    if base == 0:
        return False
    if higher_is_better:
        return fresh < base * (1.0 - tolerance)
    return fresh > base * (1.0 + tolerance)


def _fmt(name: str, fresh: float, base: float) -> str:
    delta = (fresh / base - 1.0) * 100 if base else float("inf")
    return f"{name}: {fresh:.6g} vs baseline {base:.6g} ({delta:+.1f}%)"


def _metric_check(name: str, fresh: float, base: float, tolerance: float,
                  higher_is_better: bool = True) -> Dict:
    """One tracked-metric record (always emitted, pass or fail)."""
    bad = _worse(fresh, base, tolerance, higher_is_better)
    return {
        "metric": name,
        "kind": "metric",
        "ok": not bad,
        "fresh": fresh,
        "base": base,
        "tolerance": tolerance,
        "higher_is_better": higher_is_better,
        "message": _fmt(name, fresh, base) if bad else "",
    }


def _shape_check(name: str, ok: bool, message: str,
                 kind: str = "comparability") -> Dict:
    """A non-metric record (comparability / verification / shape)."""
    return {"metric": name, "kind": kind, "ok": ok,
            "message": "" if ok else message}


def evaluate_kernel(fresh: Dict, baseline: Dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[Dict]:
    checks = [_metric_check("kernel events_per_sec",
                            fresh["events_per_sec"],
                            baseline["events_per_sec"], tolerance)]
    same_shape = fresh.get("events_processed") == \
        baseline.get("events_processed")
    checks.append(_shape_check(
        "kernel events_processed", same_shape,
        "kernel workload shape changed: events_processed "
        f"{fresh.get('events_processed')} vs "
        f"{baseline.get('events_processed')}", kind="shape"))
    return checks


def evaluate_agg(fresh: Dict, baseline: Dict,
                 tolerance: float = DEFAULT_TOLERANCE) -> List[Dict]:
    checks: List[Dict] = []
    for key in ("scale", "nodes", "procs_per_node"):
        checks.append(_shape_check(
            f"agg config {key}", fresh.get(key) == baseline.get(key),
            f"agg runs not comparable: {key} {fresh.get(key)} vs "
            f"{baseline.get(key)}"))
    if any(not c["ok"] for c in checks):
        return [c for c in checks if not c["ok"]]
    for row in fresh.get("rows", []):
        if not row.get("verified", True):
            checks.append(_shape_check(
                f"agg verify {row['app']}@{row['aggregation']}", False,
                f"agg row failed verification: {row['app']} "
                f"aggregation={row['aggregation']}", kind="verification"))
    for app, base_entry in sorted(baseline["speedups"].items()):
        fresh_entry = fresh["speedups"].get(app)
        if fresh_entry is None:
            checks.append(_shape_check(
                f"agg {app} present", False,
                f"agg app {app!r} missing from fresh run", kind="shape"))
            continue
        checks.append(_metric_check(
            f"agg {app} sim_speedup", fresh_entry["sim_speedup"],
            base_entry["sim_speedup"], tolerance))
    return checks


def evaluate_serving(fresh: Dict, baseline: Dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> List[Dict]:
    checks: List[Dict] = []
    for key in _SERVING_CONFIG_KEYS:
        checks.append(_shape_check(
            f"serving config {key}", fresh.get(key) == baseline.get(key),
            f"serving runs not comparable: {key} {fresh.get(key)} vs "
            f"{baseline.get(key)}"))
    if any(not c["ok"] for c in checks):
        return [c for c in checks if not c["ok"]]
    base_cfgs = {c["queue_bound"]: c for c in baseline["configs"]}
    fresh_cfgs = {c["queue_bound"]: c for c in fresh["configs"]}
    if set(base_cfgs) != set(fresh_cfgs):
        return [_shape_check(
            "serving bounds", False,
            f"serving bounds differ: {sorted(map(str, fresh_cfgs))} vs "
            f"{sorted(map(str, base_cfgs))}", kind="shape")]
    for bound, base_cfg in sorted(base_cfgs.items(), key=lambda kv: str(kv[0])):
        fresh_cfg = fresh_cfgs[bound]
        label = "off" if bound is None else bound
        checks.append(_metric_check(
            f"serving[{label}] ops_per_sim_sec",
            fresh_cfg["ops_per_sim_sec"], base_cfg["ops_per_sim_sec"],
            tolerance))
        checks.append(_metric_check(
            f"serving[{label}] p99", fresh_cfg["latency"]["p99"],
            base_cfg["latency"]["p99"], tolerance,
            higher_is_better=False))
    base_cliff = baseline.get("cliff")
    fresh_cliff = fresh.get("cliff")
    if base_cliff and fresh_cliff:
        checks.append(_metric_check(
            "serving cliff p99_ratio", fresh_cliff["p99_ratio"],
            base_cliff["p99_ratio"], tolerance))
    return checks


def evaluate_async(fresh: Dict, baseline: Dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[Dict]:
    checks: List[Dict] = []
    for key in ("scale", "nodes", "procs_per_node", "sim_only"):
        checks.append(_shape_check(
            f"async config {key}", fresh.get(key) == baseline.get(key),
            f"async runs not comparable: {key} {fresh.get(key)} vs "
            f"{baseline.get(key)}"))
    if any(not c["ok"] for c in checks):
        return [c for c in checks if not c["ok"]]
    digests = set()
    for row in fresh.get("rows", []):
        if not row.get("verified", True):
            checks.append(_shape_check(
                f"async verify {row['mode']}@{row['aggregation']}", False,
                f"async row failed verification: {row['mode']} "
                f"aggregation={row['aggregation']}", kind="verification"))
        digests.add(row.get("digest"))
    checks.append(_shape_check(
        "async digest parity", len(digests) <= 1,
        f"async digests diverged across modes: {sorted(digests)}",
        kind="verification"))
    f_sum, b_sum = fresh.get("summary", {}), baseline.get("summary", {})
    metric = "sim" if baseline.get("sim_only") else "wall"
    key = f"async_{metric}_speedup"
    f, b = f_sum.get(key), b_sum.get(key)
    if f is None:
        checks.append(_shape_check(f"async {key}", False,
                                   f"async summary missing {key!r}",
                                   kind="shape"))
    elif b:
        checks.append(_metric_check(f"async {key}", f, b, tolerance))
    f, b = f_sum.get("queue_wait_p99_async"), b_sum.get("queue_wait_p99_async")
    if f is not None and b:
        checks.append(_metric_check("async queue_wait_p99", f, b,
                                    tolerance, higher_is_better=False))
    f, b = f_sum.get("auto_vs_best_static"), b_sum.get("auto_vs_best_static")
    if f is not None and b:
        checks.append(_metric_check("async auto_vs_best_static", f, b,
                                    tolerance, higher_is_better=False))
    return checks


def _failures(checks: List[Dict]) -> List[str]:
    return [c["message"] for c in checks if not c["ok"]]


def compare_kernel(fresh: Dict, baseline: Dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    return _failures(evaluate_kernel(fresh, baseline, tolerance))


def compare_agg(fresh: Dict, baseline: Dict,
                tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    return _failures(evaluate_agg(fresh, baseline, tolerance))


def compare_serving(fresh: Dict, baseline: Dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    return _failures(evaluate_serving(fresh, baseline, tolerance))


def compare_async(fresh: Dict, baseline: Dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    return _failures(evaluate_async(fresh, baseline, tolerance))


_EVALUATORS = {
    "kernel": evaluate_kernel,
    "agg": evaluate_agg,
    "serving": evaluate_serving,
    "async": evaluate_async,
}

_COMPARATORS = {
    "kernel": compare_kernel,
    "agg": compare_agg,
    "serving": compare_serving,
    "async": compare_async,
}


def _forensics(baseline_path: str, fresh_path: str,
               out_prefix: Optional[str]) -> Optional[str]:
    """Diff baseline vs fresh via ``repro.obs.diff``; returns markdown.

    The gate runs as a plain script (often without PYTHONPATH=src), so
    the import is defensive: src/ is appended to ``sys.path`` when the
    package isn't already importable, and any failure degrades to None
    rather than masking the gate's exit code.
    """
    try:
        try:
            from repro.obs.diff import diff_paths, render_diff, \
                write_diff_json
        except ImportError:
            src = os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src")
            if src not in sys.path:
                sys.path.insert(0, src)
            from repro.obs.diff import diff_paths, render_diff, \
                write_diff_json
        diff = diff_paths(baseline_path, fresh_path)
        report = render_diff(diff)
        if out_prefix:
            write_diff_json(diff, f"{out_prefix}.json")
            with open(f"{out_prefix}.md", "w", encoding="utf-8") as fh:
                fh.write(report)
        return report
    except Exception as exc:  # never let forensics break the gate
        print(f"forensics unavailable: {exc}", file=sys.stderr)
        return None


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regressions vs a committed BENCH json"
    )
    parser.add_argument("--kind", choices=sorted(_COMPARATORS), required=True)
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (default 0.15; "
                             "widen for wall-clock metrics on noisy runners)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable verdict (per-check "
                             "pass/fail with fresh/base/tolerance)")
    parser.add_argument("--forensics-out", default=None, metavar="PREFIX",
                        help="on failure, write the run-forensics report as "
                             "PREFIX.md + PREFIX.json")
    parser.add_argument("--no-forensics", action="store_true",
                        help="skip the automatic baseline-vs-fresh diff on "
                             "failure")
    args = parser.parse_args(argv)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    checks = _EVALUATORS[args.kind](fresh, baseline, args.tolerance)
    failures = _failures(checks)
    if args.json:
        verdict = {
            "kind": args.kind,
            "fresh": args.fresh,
            "baseline": args.baseline,
            "tolerance": args.tolerance,
            "ok": not failures,
            "checks": checks,
            "failures": failures,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures and not args.no_forensics:
        report = _forensics(args.baseline, args.fresh, args.forensics_out)
        if report:
            print(report)
    if not failures:
        print(f"{args.kind}: no regression beyond {args.tolerance:.0%} "
              f"({args.fresh} vs {args.baseline})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
