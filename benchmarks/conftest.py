"""Shared infrastructure for the figure/table reproduction benches.

Every bench:

* builds the scaled-down analogue of the paper's experiment (structure
  identical, process/op counts shrunk so a bench finishes in seconds),
* runs it under ``benchmark.pedantic(rounds=1)`` — the simulation is
  deterministic, so repeated rounds only re-measure wall clock,
* prints the same rows/series the paper reports next to the paper's quoted
  values, and
* asserts the *shape*: who wins, roughly by how much, where curves bend.

Scale factors relative to the paper are listed in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

SEPARATOR = "\n" + "=" * 72


def emit(text: str) -> None:
    """Print a bench report block (shown with pytest -s / in captured out)."""
    print(SEPARATOR)
    print(text)


@pytest.fixture
def report():
    return emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
