"""Shared infrastructure for the figure/table reproduction benches.

Every bench:

* builds the scaled-down analogue of the paper's experiment (structure
  identical, process/op counts shrunk so a bench finishes in seconds),
* runs it under ``benchmark.pedantic(rounds=1)`` — the simulation is
  deterministic, so repeated rounds only re-measure wall clock,
* prints the same rows/series the paper reports next to the paper's quoted
  values, and
* asserts the *shape*: who wins, roughly by how much, where curves bend.

Scale factors relative to the paper are listed in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

SEPARATOR = "\n" + "=" * 72

# -- scale multiplier ---------------------------------------------------------
# The default bench configs are scaled-down analogues of the paper's runs
# (EXPERIMENTS.md lists the factors).  ``--scale N`` multiplies the per-rank
# op counts of the Fig 6/7 benches so larger fractions of paper scale can be
# re-run without editing code:
#
#     PYTHONPATH=src:. pytest benchmarks/test_fig6_scaling.py --scale 4
#     python -m repro.cli fig6 --scale 4
#
# ``scaled(n)`` is what the benches call; 1.0 reproduces the defaults bit
# for bit.
_SCALE = 1.0


def set_scale(value: float) -> None:
    """Set the global work multiplier (also used by ``repro.cli``)."""
    global _SCALE
    if value <= 0:
        raise ValueError(f"--scale must be positive, got {value}")
    _SCALE = float(value)


def get_scale() -> float:
    return _SCALE


def scaled(n: int) -> int:
    """Multiply a default op count by the active ``--scale``."""
    return max(1, round(n * _SCALE))


def pytest_addoption(parser):
    parser.addoption(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier for the Fig 6/7 benches (default 1.0)",
    )


def pytest_configure(config):
    # Default of None covers the conftest being loaded non-initially
    # (e.g. ``pytest`` from the repo root), where --scale is unregistered.
    value = config.getoption("--scale", default=None)
    if value is not None:
        try:
            set_scale(value)
        except ValueError as exc:
            raise pytest.UsageError(str(exc))


def emit(text: str) -> None:
    """Print a bench report block (shown with pytest -s / in captured out)."""
    print(SEPARATOR)
    print(text)


@pytest.fixture
def report():
    return emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
