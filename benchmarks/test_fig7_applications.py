"""Figure 7 — real workloads, weak-scaled 8 -> 64 nodes in the paper.

(a) **ISx** — BCL 686 s at 64 nodes vs HCL 57 s (12x); BCL scales
    linearly in cost, HCL sub-linearly (the priority queue sorts data as
    it arrives, hiding the sort behind communication).
(b) **Meraculous contig generation** — HCL 1.8x faster at the smallest
    scale to 12x at the largest.
(c) **Meraculous k-mer counting** — HCL 2.17x to 8x faster.

Scaled: nodes 2 -> 8 with 3 procs/node, weak-scaled inputs (keys/reads
grow with nodes).  All runs *verify their outputs* (sortedness, exact
histogram, genome-substring contigs) before timing is reported.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.apps import (
    run_contig_generation,
    run_isx,
    run_kmer_counting,
    synthesize_genome,
)
from repro.config import ares_like
from repro.harness import render_series

NODE_SWEEP = [2, 4, 8]
PROCS = 3
KEYS_PER_RANK = 48  # ISx weak scaling: total keys grow with nodes


def _spec(nodes):
    return ares_like(nodes=nodes, procs_per_node=PROCS)


@pytest.mark.benchmark(group="fig7")
def test_fig7a_isx(benchmark, report):
    def run():
        keys = scaled(KEYS_PER_RANK)
        hcl_t, bcl_t = [], []
        for nodes in NODE_SWEEP:
            h = run_isx("hcl", _spec(nodes), keys_per_rank=keys)
            b = run_isx("bcl", _spec(nodes), keys_per_rank=keys)
            assert h.verified and b.verified
            hcl_t.append(h.time_seconds)
            bcl_t.append(b.time_seconds)
        return hcl_t, bcl_t

    hcl_t, bcl_t = run_once(benchmark, run)
    ratios = [b / h for h, b in zip(hcl_t, bcl_t)]
    report(render_series(
        "Fig 7a — ISx time (s), weak scaling "
        "(paper at 64 nodes: BCL 686 s vs HCL 57 s = 12x)",
        "nodes", NODE_SWEEP,
        {"bcl (s)": bcl_t, "hcl (s)": hcl_t, "speedup": ratios},
        y_format=lambda v: f"{v:.4g}",
    ))
    # HCL wins at every scale; gap in the paper's order of magnitude.
    assert all(r > 2.0 for r in ratios), ratios
    assert ratios[-1] > 5.0, f"largest-scale speedup {ratios[-1]:.1f}x"
    # HCL scales sub-linearly (paper: ~1.4x per node doubling): time must
    # grow by less than the 4x node-count growth across the sweep.
    assert hcl_t[-1] / hcl_t[0] < NODE_SWEEP[-1] / NODE_SWEEP[0]


@pytest.mark.benchmark(group="fig7")
def test_fig7b_contig_generation(benchmark, report):
    def run():
        hcl_t, bcl_t = [], []
        for nodes in NODE_SWEEP:
            # Weak scaling: genome and reads grow together with the node
            # count so coverage (and thus contig length) stays constant.
            data = synthesize_genome(
                genome_length=scaled(300 * nodes),
                num_reads=scaled(24 * nodes),
                read_length=60,
                k=15,
                seed=nodes,
            )
            h = run_contig_generation("hcl", _spec(nodes), data)
            b = run_contig_generation("bcl", _spec(nodes), data)
            assert h.verified and b.verified
            assert h.contigs == b.contigs  # identical output either way
            hcl_t.append(h.time_seconds)
            bcl_t.append(b.time_seconds)
        return hcl_t, bcl_t

    hcl_t, bcl_t = run_once(benchmark, run)
    ratios = [b / h for h, b in zip(hcl_t, bcl_t)]
    report(render_series(
        "Fig 7b — contig generation time (s), weak scaling "
        "(paper: HCL 1.8x faster at 8 nodes to 12x at 64)",
        "nodes", NODE_SWEEP,
        {"bcl (s)": bcl_t, "hcl (s)": hcl_t, "speedup": ratios},
        y_format=lambda v: f"{v:.4g}",
    ))
    # HCL wins clearly at every scale.  (Paper's gap *grows* 1.8x -> 12x
    # with node count; ours stays in the 1.4-2.2x band — the simulated
    # fabric doesn't reproduce the congestion collapse BCL suffered at 64
    # real nodes.  Recorded as a deviation in EXPERIMENTS.md.)
    assert all(r > 1.25 for r in ratios), ratios


@pytest.mark.benchmark(group="fig7")
def test_fig7c_kmer_counting(benchmark, report):
    def run():
        hcl_t, bcl_t = [], []
        for nodes in NODE_SWEEP:
            data = synthesize_genome(
                genome_length=scaled(400 + 120 * nodes),
                num_reads=scaled(20 * nodes),
                read_length=50,
                k=13,
                seed=nodes + 10,
            )
            h = run_kmer_counting("hcl", _spec(nodes), data)
            b = run_kmer_counting("bcl", _spec(nodes), data)
            assert h.verified and b.verified
            hcl_t.append(h.time_seconds)
            bcl_t.append(b.time_seconds)
        return hcl_t, bcl_t

    hcl_t, bcl_t = run_once(benchmark, run)
    ratios = [b / h for h, b in zip(hcl_t, bcl_t)]
    report(render_series(
        "Fig 7c — k-mer counting time (s), weak scaling "
        "(paper: HCL 2.17x to 8x faster)",
        "nodes", NODE_SWEEP,
        {"bcl (s)": bcl_t, "hcl (s)": hcl_t, "speedup": ratios},
        y_format=lambda v: f"{v:.4g}",
    ))
    assert all(r > 1.5 for r in ratios), ratios
