"""Figure 4 — RPC-over-RDMA overhead profiling (PAT-style time series).

Paper setup: two nodes, 40 clients on one, one target partition on the
other; each client issues 8192 x 4KB writes.  Intel PAT samples NIC-core
utilization, memory utilization and packets/s over time.  Reported shapes:

(a) NIC-core utilization: BCL ~60% (spiking to 90) vs HCL ~33% — the
    remote CAS traffic keeps the target NIC busy under BCL.
(b) Memory: BCL ramps up front (static init), HCL starts small and grows
    dynamically toward a similar footprint.
(c) Packets/s: BCL achieves ~4x lower packet rate and is slow to saturate
    (first seconds eaten by segment init); BCL takes 28 s total vs 10.5 s.

Scaled: 16 clients x 384 ops.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.bcl import BCL
from repro.config import ares_like
from repro.core import HCL
from repro.harness import Blob, render_series

NCLIENTS = 16
OPS = 384
SIZE = 4096
SAMPLES = 14


def _spec():
    return ares_like(nodes=2, procs_per_node=NCLIENTS)


def _profile(make_env):
    """Run a workload while sampling NIC util / memory / packet rate.

    ``make_env()`` builds a fresh environment and returns ``(cluster,
    body)``.  The deterministic simulation is run once to learn the total
    duration (so the sampling interval splits it into ``SAMPLES`` windows,
    like PAT's fixed 1 s interval over the paper's 28 s / 10.5 s runs) and
    once more instrumented.
    """
    dry_cluster, dry_body = make_env()
    dry_cluster.spawn_ranks(dry_body, ranks=range(NCLIENTS))
    dry_cluster.run()
    total = dry_cluster.sim.now

    cluster, body = make_env()
    target = cluster.node(1)
    sampler = cluster.sampler(interval=total / SAMPLES)
    sampler.add_probe("nic_util", target.nic.utilization_probe())
    sampler.add_probe("mem_bytes", lambda: target.memory_used.value)
    sampler.add_probe("packets", cluster.packets_probe())
    sampler.start()
    cluster.spawn_ranks(body, ranks=range(NCLIENTS))
    cluster.run(until=total * 1.001)
    sampler.stop()
    return {
        "elapsed": total,
        "nic_util": sampler.series["nic_util"].values[:SAMPLES],
        "mem": sampler.series["mem_bytes"].values[:SAMPLES],
        "packets": sampler.series["packets"].values[:SAMPLES],
    }


def _bcl_env():
    bcl = BCL(_spec())
    m = bcl.hashmap("part", capacity_per_partition=4 * NCLIENTS * OPS,
                    entry_size=SIZE, partitions=1)
    m._partition_nodes = [1]

    def body(rank):
        for i in range(OPS):
            yield from m.insert(rank, (rank, i), Blob(SIZE))

    return bcl.cluster, body


def _hcl_env():
    hcl = HCL(_spec())
    m = hcl.unordered_map("part", partitions=1, nodes=[1],
                          initial_buckets=128)  # starts small, grows

    def body(rank):
        for i in range(OPS):
            yield from m.insert(rank, (rank, i), Blob(SIZE))

    return hcl.cluster, body


@pytest.mark.benchmark(group="fig4")
def test_fig4_profiling(benchmark, report):
    def run():
        return _profile(_bcl_env), _profile(_hcl_env)

    bcl_prof, hcl_prof = run_once(benchmark, run)

    xs = list(range(1, SAMPLES + 1))
    report(render_series(
        "Fig 4a — NIC core utilization %% over time (paper: BCL ~60%%, "
        "HCL ~33%%)",
        "sample", xs,
        {"bcl": bcl_prof["nic_util"], "hcl": hcl_prof["nic_util"]},
        y_format=lambda v: f"{v:.0f}%",
    ))
    report(render_series(
        "Fig 4b — target-node memory (bytes) over time "
        "(paper: BCL ramps at init, HCL grows dynamically)",
        "sample", xs, {"bcl": bcl_prof["mem"], "hcl": hcl_prof["mem"]},
    ))
    report(render_series(
        "Fig 4c — cluster packet rate (pkt/s) over time "
        "(paper: BCL ~4x lower average rate)",
        "sample", xs,
        {"bcl": bcl_prof["packets"], "hcl": hcl_prof["packets"]},
    ))
    report(
        f"elapsed: BCL {bcl_prof['elapsed']:.4f}s vs HCL "
        f"{hcl_prof['elapsed']:.4f}s (paper: 28s vs 10.5s => 2.67x; "
        f"measured ratio {bcl_prof['elapsed'] / hcl_prof['elapsed']:.2f}x)"
    )

    # (total) BCL must be markedly slower end to end.
    assert bcl_prof["elapsed"] > 1.8 * hcl_prof["elapsed"]

    # (a) the CAS traffic keeps the target NIC busier under BCL — compare
    # the *active* phases (BCL's first seconds are the idle static init,
    # exactly as in the paper's Fig 4c).
    def active_mean(prof):
        vals = [u for u, p in zip(prof["nic_util"], prof["packets"]) if p > 0]
        return sum(vals) / len(vals) if vals else 0.0

    bcl_util = active_mean(bcl_prof)
    hcl_util = active_mean(hcl_prof)
    report(f"active-phase NIC utilization: BCL {bcl_util:.0f}% vs HCL "
           f"{hcl_util:.0f}% (paper: ~60-90% vs ~33%)")
    assert bcl_util > hcl_util

    # (b) BCL ramps to its FULL static footprint before serving a single
    # operation (Fig 4b: "increases at a constant rate for the first couple
    # of seconds"); HCL starts small and keeps growing during the run.
    first_active = next(
        i for i, p in enumerate(bcl_prof["packets"]) if p > 0
    )
    assert bcl_prof["mem"][first_active] == pytest.approx(
        bcl_prof["mem"][-1]
    ), "BCL footprint must be fully allocated before ops start"
    assert bcl_prof["mem"][0] < bcl_prof["mem"][-1], "init ramp visible"
    assert hcl_prof["mem"][0] < hcl_prof["mem"][-1]
    growth = [b <= a + 1e-9 for a, b in
              zip(hcl_prof["mem"][1:], hcl_prof["mem"][:-1])]
    assert all(growth), "HCL memory must grow monotonically"

    # (c) lower average BCL packet rate (it moves comparable volume over a
    # much longer run; paper reports a 4x gap, our BCL also sends extra
    # CAS packets which narrows the measured ratio).
    bcl_rate = sum(bcl_prof["packets"]) / SAMPLES
    hcl_rate = sum(hcl_prof["packets"]) / SAMPLES
    report(f"mean packet rate: HCL {hcl_rate:.3g}/s vs BCL {bcl_rate:.3g}/s "
           f"({hcl_rate / bcl_rate:.2f}x; paper ~4x)")
    assert hcl_rate > 1.15 * bcl_rate
