"""Figure 6 — scaling the distributed data structures.

Paper setup: 2560 processes (64 client nodes) issue 8192 ops of 64KB.

(a) **Maps** — partitions swept 8 -> 64 nodes.  HCL::unordered_map and
    HCL::map scale ~linearly; the ordered map is ~54% slower (O(log n) vs
    O(1)); BCL::unordered_map is ~9.1x slower on inserts / ~4.5x on finds.
(b) **Sets** — same sweep, HCL only (BCL has no sets); sets run 7-14%
    faster than maps (key-only buckets).
(c) **Queues** — single partition, clients swept 320 -> 2560.  Throughput
    peaks around 1280 clients then plateaus (network saturation); the
    priority queue is ~30% slower than the FIFO; BCL's circular queue caps
    at ~35K push / ~43K pop.

Scaled: fixed 8-node cluster with 6 procs/node (48 clients, mirroring the
paper's fixed 2560-rank client population), partitions swept 1 -> 8 (x8
fewer than the paper's 8 -> 64), 24 ops of 64KB; queue clients swept
8 -> 64.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.bcl import BCL
from repro.config import KB, ares_like
from repro.core import HCL
from repro.harness import Blob, key_stream, render_series

CLUSTER_NODES = 8
PART_SWEEP = [1, 2, 4, 8]
PROCS = 6
OPS = 24
SIZE = 64 * KB  # the paper's Fig 6 operation size
CLIENT_SWEEP = [8, 16, 32, 64]
QOPS = 16


def _hcl_map_run(partitions: int, ordered: bool):
    ops = scaled(OPS)
    spec = ares_like(nodes=CLUSTER_NODES, procs_per_node=PROCS)
    hcl = HCL(spec)
    if ordered:
        c = hcl.map("c", partitions=partitions,
                    partitioner=lambda k, n: k * n // (1 << 30))
    else:
        c = hcl.unordered_map("c", partitions=partitions,
                              initial_buckets=8 * PROCS * ops)
    blob = Blob(SIZE)

    def insert_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from c.insert(rank, key, blob)

    def find_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from c.find(rank, key)

    hcl.run_ranks(insert_body)
    t_ins = hcl.now
    hcl.run_ranks(find_body)
    t_fnd = hcl.now - t_ins
    total = spec.total_procs * ops
    return total / t_ins, total / t_fnd


def _hcl_set_run(partitions: int, ordered: bool):
    ops = scaled(OPS)
    spec = ares_like(nodes=CLUSTER_NODES, procs_per_node=PROCS)
    hcl = HCL(spec)
    if ordered:
        c = hcl.set("c", partitions=partitions,
                    partitioner=lambda k, n: k.tag * n // (1 << 30),
                    less=lambda a, b: a.tag < b.tag)
    else:
        c = hcl.unordered_set("c", partitions=partitions,
                              initial_buckets=8 * PROCS * ops)

    # Set elements are the full-size keys themselves: the 7-14% gap to
    # maps comes from dropping the value/bucket overhead, not the payload.
    def insert_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from c.insert(rank, Blob(SIZE, tag=key))

    def find_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from c.find(rank, Blob(SIZE, tag=key))

    hcl.run_ranks(insert_body)
    t_ins = hcl.now
    hcl.run_ranks(find_body)
    t_fnd = hcl.now - t_ins
    total = spec.total_procs * ops
    return total / t_ins, total / t_fnd


def _bcl_map_run(partitions: int):
    ops = scaled(OPS)
    spec = ares_like(nodes=CLUSTER_NODES, procs_per_node=PROCS)
    bcl = BCL(spec)
    # Static sizing at ~0.75 load factor (the operating point a loaded
    # BCL table runs at): linear-probe chains on finds read whole
    # fixed-size buckets — BCL's find penalty in Fig 6a.
    capacity = int(CLUSTER_NODES * PROCS * ops / partitions / 0.75) + 2
    m = bcl.hashmap("c", capacity_per_partition=capacity,
                    entry_size=SIZE, partitions=partitions, inflight_slots=64,
                    max_probes=capacity)
    blob = Blob(SIZE)

    def insert_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from m.insert(rank, key, blob)

    procs = bcl.cluster.spawn_ranks(insert_body)
    bcl.cluster.run()
    for p in procs:
        p.result
    t_ins = bcl.sim.now

    def find_body(rank):
        for key in key_stream(rank, ops, seed=3):
            yield from m.find(rank, key)

    procs = bcl.cluster.spawn_ranks(find_body)
    bcl.cluster.run()
    for p in procs:
        p.result
    t_fnd = bcl.sim.now - t_ins
    total = spec.total_procs * ops
    return total / t_ins, total / t_fnd


@pytest.mark.benchmark(group="fig6")
def test_fig6a_map_scaling(benchmark, report):
    def run():
        series = {"hcl_umap_ins": [], "hcl_umap_find": [],
                  "hcl_map_ins": [], "hcl_map_find": [],
                  "bcl_umap_ins": [], "bcl_umap_find": []}
        for parts in PART_SWEEP:
            ui, uf = _hcl_map_run(parts, ordered=False)
            oi, of = _hcl_map_run(parts, ordered=True)
            bi, bf = _bcl_map_run(parts)
            series["hcl_umap_ins"].append(ui)
            series["hcl_umap_find"].append(uf)
            series["hcl_map_ins"].append(oi)
            series["hcl_map_find"].append(of)
            series["bcl_umap_ins"].append(bi)
            series["bcl_umap_find"].append(bf)
        return series

    s = run_once(benchmark, run)
    report(render_series(
        "Fig 6a — map throughput op/s vs partitions "
        "(paper: BCL 9.1x slower ins / 4.5x find; ordered map 54% slower)",
        "partitions", PART_SWEEP, s,
    ))
    last = -1
    # HCL scales with partitions.
    assert s["hcl_umap_ins"][last] > 1.5 * s["hcl_umap_ins"][0]
    assert s["hcl_map_ins"][last] > 1.5 * s["hcl_map_ins"][0]
    # BCL well below HCL at the largest scale, for inserts AND finds.
    assert s["hcl_umap_ins"][last] > 2.5 * s["bcl_umap_ins"][last]
    # Our BCL find model (single one-sided read per probe) is *more*
    # favorable to BCL than GASNet reality, so the paper's 4.5x find gap
    # shrinks here; HCL must at least stay at parity (see EXPERIMENTS.md).
    assert s["hcl_umap_find"][last] > 0.9 * s["bcl_umap_find"][last]
    # BCL finds scale better than BCL inserts (fewer CAS).
    assert s["bcl_umap_find"][last] > s["bcl_umap_ins"][last]
    # Ordered map must not beat the unordered map (at 64KB ops the byte
    # cost dominates and the paper's 54% log-factor gap compresses here;
    # the saturated small-op gap is covered by the ablation bench and
    # test_core_ordered_containers).
    assert s["hcl_map_ins"][last] <= 1.05 * s["hcl_umap_ins"][last]


@pytest.mark.benchmark(group="fig6")
def test_fig6b_set_scaling(benchmark, report):
    def run():
        series = {"uset_ins": [], "uset_find": [], "oset_ins": [],
                  "oset_find": [], "umap_ins": []}
        for parts in PART_SWEEP:
            ui, uf = _hcl_set_run(parts, ordered=False)
            oi, of = _hcl_set_run(parts, ordered=True)
            mi, _mf = _hcl_map_run(parts, ordered=False)
            series["uset_ins"].append(ui)
            series["uset_find"].append(uf)
            series["oset_ins"].append(oi)
            series["oset_find"].append(of)
            series["umap_ins"].append(mi)
        return series

    s = run_once(benchmark, run)
    report(render_series(
        "Fig 6b — set throughput op/s vs partitions "
        "(paper: sets 7-14% faster than maps; ordered set slower)",
        "partitions", PART_SWEEP, s,
    ))
    last = -1
    assert s["uset_ins"][last] > 1.5 * s["uset_ins"][0]  # scales
    # Sets track the map counterpart closely; the paper's 7-14% edge from
    # key-only serialization compresses to ~0 in our cost model, where the
    # 64KB payload wire time dwarfs the per-field serialization overhead
    # (recorded as a deviation in EXPERIMENTS.md).
    assert s["uset_ins"][last] >= 0.9 * s["umap_ins"][last]
    # Ordered set must not beat the unordered set.
    assert s["oset_ins"][last] <= 1.05 * s["uset_ins"][last]


def _queue_run(clients: int, kind: str):
    qops = scaled(QOPS)
    nodes = max(2, clients // 16 + 1)
    spec = ares_like(nodes=nodes, procs_per_node=-(-clients // nodes))
    if kind == "bcl":
        bcl = BCL(spec)
        q = bcl.queue("q", capacity=4 * clients * qops, entry_size=SIZE,
                      home_node=0, inflight_slots=16)
        blob = Blob(SIZE)

        def push_body(rank):
            for _ in range(qops):
                yield from q.push(rank, blob)

        procs = bcl.cluster.spawn_ranks(push_body, ranks=range(clients))
        bcl.cluster.run()
        for p in procs:
            p.result
        t_push = bcl.sim.now

        def pop_body(rank):
            for _ in range(qops):
                yield from q.pop(rank)

        procs = bcl.cluster.spawn_ranks(pop_body, ranks=range(clients))
        bcl.cluster.run()
        for p in procs:
            p.result
        t_pop = bcl.sim.now - t_push
        total = clients * qops
        return total / t_push, total / t_pop

    hcl = HCL(spec)
    if kind == "fifo":
        q = hcl.queue("q", home_node=0)

        def push_body(rank):
            for i in range(qops):
                yield from q.push(rank, Blob(SIZE))

        def pop_body(rank):
            for _ in range(qops):
                yield from q.pop(rank)
    else:  # priority
        q = hcl.priority_queue("q", home_node=0, dims=8, base=16)

        def push_body(rank):
            for i in range(qops):
                yield from q.push(rank, rank * qops + i, Blob(SIZE))

        def pop_body(rank):
            for _ in range(qops):
                yield from q.pop(rank)

    hcl.run_ranks(push_body, ranks=range(clients))
    t_push = hcl.now
    hcl.run_ranks(pop_body, ranks=range(clients))
    t_pop = hcl.now - t_push
    total = clients * qops
    return total / t_push, total / t_pop


@pytest.mark.benchmark(group="fig6")
def test_fig6c_queue_scaling(benchmark, report):
    def run():
        series = {"fifo_push": [], "fifo_pop": [], "prio_push": [],
                  "prio_pop": [], "bcl_push": [], "bcl_pop": []}
        for clients in CLIENT_SWEEP:
            fp, fo = _queue_run(clients, "fifo")
            pp, po = _queue_run(clients, "priority")
            bp, bo = _queue_run(clients, "bcl")
            series["fifo_push"].append(fp)
            series["fifo_pop"].append(fo)
            series["prio_push"].append(pp)
            series["prio_pop"].append(po)
            series["bcl_push"].append(bp)
            series["bcl_pop"].append(bo)
        return series

    s = run_once(benchmark, run)
    report(render_series(
        "Fig 6c — queue throughput op/s vs clients "
        "(paper: plateau ~1280 clients; priority ~30% slower; BCL caps at "
        "35K push / 43K pop)",
        "clients", CLIENT_SWEEP, s,
    ))
    last = -1
    # Single-partition queue saturates: doubling clients at the high end
    # must not double throughput.
    growth = s["fifo_push"][last] / s["fifo_push"][-2]
    assert growth < 1.6, f"no saturation visible (x{growth:.2f})"
    # Priority queue slower than FIFO at scale (log-cost pushes).
    assert s["prio_push"][last] < s["fifo_push"][last]
    # BCL's client-side CAS queue is far below both HCL queues.
    assert s["bcl_push"][last] < 0.5 * s["fifo_push"][last]
    assert s["bcl_pop"][last] < s["fifo_pop"][last]
