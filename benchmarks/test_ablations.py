"""Ablations — quantify each design choice DESIGN.md calls out.

Not a paper figure: these isolate the *mechanisms* behind the headline
numbers so the reproduction is explainable rather than just matching.

1. hybrid local bypass on/off        (drives Fig 5a)
2. request aggregation batch size    (RoR innovation #1)
3. NIC core count sweep              (the offload resource)
4. replication factor 0/1/2          (durability cost)
5. serialization backend choice      (DataBox plug point)
6. persistence strict/relaxed/off    (DataBox persistency)
7. OFI provider roce/verbs/tcp       (fabric portability)
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro.config import KB, ares_like
from repro.core import HCL
from repro.harness import Blob, render_table

PROCS = 8
OPS = 64
SIZE = 4 * KB


def _insert_workload(hcl, container, payload=None):
    blob = payload if payload is not None else Blob(SIZE)

    def body(rank):
        for i in range(OPS):
            yield from container.insert(rank, (rank, i), blob)

    hcl.run_ranks(body)
    return hcl.now


@pytest.mark.benchmark(group="ablations")
def test_ablation_hybrid_bypass(benchmark, report):
    """Local ops with the bypass vs the same ops forced through the RPC."""

    def run():
        spec = ares_like(nodes=1, procs_per_node=PROCS)
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=1, nodes=[0],
                              initial_buckets=8 * PROCS * OPS)
        t_bypass = _insert_workload(hcl, m)

        hcl2 = HCL(spec)
        m2 = hcl2.unordered_map("m", partitions=1, nodes=[0],
                                initial_buckets=8 * PROCS * OPS)
        # Force the RPC path for co-located ops.
        original = m2._execute

        def forced(rank, part, op, args, payload_bytes):
            client = hcl2.client(0)
            result = yield from client.call(
                0, f"{m2.name}.{op}", (part.index, *args),
                payload_size=payload_bytes,
            )
            return result

        m2._execute = forced
        t_rpc = _insert_workload(hcl2, m2)
        return t_bypass, t_rpc

    t_bypass, t_rpc = run_once(benchmark, run)
    report(render_table(
        "Ablation 1 — hybrid local bypass",
        ["variant", "time (s)", "speedup"],
        [["shared-memory bypass", t_bypass, t_rpc / t_bypass],
         ["forced RPC loopback", t_rpc, 1.0]],
    ))
    assert t_bypass < 0.5 * t_rpc  # the bypass is the Fig 5a mechanism


@pytest.mark.benchmark(group="ablations")
def test_ablation_request_aggregation(benchmark, report):
    """Batch de-marshalling on the NIC amortizes dispatch overhead."""

    def run_one(batch):
        # Dispatch-bound regime: one NIC core, small ops — where batch
        # de-marshalling pays off (with 4 idle cores and 4KB wire times the
        # dispatch is not the bottleneck and aggregation is a wash).
        spec = ares_like(nodes=2, procs_per_node=PROCS)
        spec = spec.scaled(cost=replace(spec.cost, nic_cores=1))
        hcl = HCL(spec, rpc_batch_size=batch)
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              initial_buckets=8 * PROCS * OPS)

        def body(rank):
            futures = [m.insert_async(rank, (rank, i), Blob(256))
                       for i in range(OPS)]
            for fut in futures:
                yield fut.wait()

        hcl.run_ranks(body)
        return hcl.now

    def run():
        return {batch: run_one(batch) for batch in (1, 4, 16)}

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 2 — request aggregation (async flood workload)",
        ["batch size", "time (s)", "vs batch=1"],
        [[b, t, times[1] / t] for b, t in sorted(times.items())],
    ))
    assert times[16] < times[1]  # aggregation helps under load


@pytest.mark.benchmark(group="ablations")
def test_ablation_nic_cores(benchmark, report):
    """More NIC cores serve the RoR work queue faster — up to other limits."""

    def run_one(cores):
        spec = ares_like(nodes=2, procs_per_node=PROCS)
        spec = spec.scaled(cost=replace(spec.cost, nic_cores=cores))
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              initial_buckets=8 * PROCS * OPS)

        def body(rank):
            futures = [m.insert_async(rank, (rank, i), Blob(SIZE))
                       for i in range(OPS)]
            for fut in futures:
                yield fut.wait()

        hcl.run_ranks(body)
        return hcl.now

    def run():
        return {c: run_one(c) for c in (1, 2, 4, 8)}

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 3 — NIC core count",
        ["nic cores", "time (s)", "vs 1 core"],
        [[c, t, times[1] / t] for c, t in sorted(times.items())],
    ))
    assert times[4] < times[1]
    # Diminishing returns once another resource (wire) dominates.
    assert times[8] > 0.5 * times[4]


@pytest.mark.benchmark(group="ablations")
def test_ablation_replication(benchmark, report):
    """Asynchronous replication: modest caller cost, real copies."""

    def run_one(replication):
        spec = ares_like(nodes=4, procs_per_node=4)
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=4, replication=replication,
                              initial_buckets=4096)
        t = _insert_workload(hcl, m)
        copies = sum(len(p.structure) for p in m.partitions)
        return t, copies

    def run():
        return {r: run_one(r) for r in (0, 1, 2)}

    results = run_once(benchmark, run)
    base_entries = 4 * 4 * OPS
    report(render_table(
        "Ablation 4 — replication factor",
        ["replicas", "time (s)", "slowdown", "stored copies"],
        [[r, t, t / results[0][0], c] for r, (t, c) in sorted(results.items())],
    ))
    assert results[1][1] >= 2 * base_entries * 0.9  # copies actually exist
    assert results[2][1] > results[1][1]
    # Async replication: overhead well under the 2x of synchronous copies.
    assert results[1][0] < 1.5 * results[0][0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_serialization_backends(benchmark, report):
    """DataBox backends encode the same entries; sizes differ."""

    def run():
        from repro.serialization import get_codec, record

        @record(rank="i32", seq="i32", score="f64", label="str")
        class Entry:
            pass

        sample = {"rank": 3, "seq": 17, "score": 0.5, "label": "x" * 24}
        msgpack_len = len(get_codec("msgpack").encode(sample))
        flat_len = len(get_codec("flat").encode(list(sample.values())))
        cereal_len = len(get_codec("cereal:Entry").encode(
            Entry(**sample)))
        return msgpack_len, flat_len, cereal_len

    msgpack_len, flat_len, cereal_len = run_once(benchmark, run)
    report(render_table(
        "Ablation 5 — serialization backends (same logical entry)",
        ["backend", "bytes"],
        [["msgpack (schema-free)", msgpack_len],
         ["flat (lazy field access)", flat_len],
         ["cereal (schema, positional)", cereal_len]],
    ))
    # Schema-driven positional packing is the most compact; the flat
    # offset-table costs extra bytes for its lazy-access indices.
    assert cereal_len < msgpack_len < flat_len


@pytest.mark.benchmark(group="ablations")
def test_ablation_persistence_modes(benchmark, report, tmp_path):
    def run():
        times = {}
        for mode in ("off", "strict", "relaxed"):
            spec = ares_like(nodes=2, procs_per_node=4)
            hcl = HCL(spec, persist_dir=str(tmp_path / mode))
            m = hcl.unordered_map(
                "m", partitions=2,
                persistence=(mode != "off"),
                relaxed_persistence=(mode == "relaxed"),
                initial_buckets=4096,
            )
            times[mode] = _insert_workload(hcl, m)
            m.close()
        return times

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 6 — DataBox persistence",
        ["mode", "time (s)", "vs off"],
        [[m, t, t / times["off"]] for m, t in times.items()],
    ))
    assert times["off"] <= times["relaxed"] <= times["strict"]
    assert times["strict"] > 1.02 * times["off"]  # the msync shows up


@pytest.mark.benchmark(group="ablations")
def test_ablation_switch_oversubscription(benchmark, report):
    """Backplane oversubscription degrades all-to-all container traffic."""
    from repro.fabric import Cluster

    def run_one(oversub):
        spec = ares_like(nodes=4, procs_per_node=PROCS)
        cluster = Cluster(spec, oversubscription=oversub)
        hcl = HCL(cluster)
        m = hcl.unordered_map("m", partitions=4,
                              initial_buckets=8 * PROCS * OPS)

        def body(rank):
            for i in range(OPS):
                yield from m.insert(rank, (rank, i), Blob(16 * KB))

        hcl.run_ranks(body)
        return hcl.now

    def run():
        return {o: run_one(o) for o in (1.0, 2.0, 4.0)}

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 8 — switch oversubscription (4-node all-to-all inserts)",
        ["oversubscription", "time (s)", "vs 1:1"],
        [[o, t, t / times[1.0]] for o, t in sorted(times.items())],
    ))
    assert times[4.0] > times[2.0] >= times[1.0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_concurrency_control(benchmark, report):
    """Atomicity tuning: mutex-per-partition vs lock-free structures."""

    def run_one(concurrency):
        spec = ares_like(nodes=2, procs_per_node=PROCS)
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              concurrency=concurrency,
                              initial_buckets=8 * PROCS * OPS)

        def body(rank):
            futures = [m.insert_async(rank, (rank, i), Blob(1024))
                       for i in range(OPS)]
            for fut in futures:
                yield fut.wait()

        hcl.run_ranks(body)
        return hcl.now

    def run():
        return {c: run_one(c) for c in ("lockfree", "mutex")}

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 9 — concurrency control (contended async inserts)",
        ["level", "time (s)", "vs lockfree"],
        [[c, t, t / times["lockfree"]] for c, t in times.items()],
    ))
    assert times["mutex"] > times["lockfree"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_rebalancing_cost(benchmark, report):
    """Limitation (e): growing a BCL deployment means agreeing on a new
    static layout and re-inserting *everything* behind a barrier; HCL's
    dynamic partition addition migrates only the keys whose first-level
    hash moved (~1/(n+1) of them), with no global synchronization."""
    from repro.bcl import BCL

    ENTRIES = 256

    def run():
        # --- HCL: add one partition to a live container ----------------
        spec = ares_like(nodes=4, procs_per_node=4)
        hcl = HCL(spec)
        m = hcl.unordered_map("m", partitions=3, initial_buckets=4096)

        def fill(rank):
            for i in range(ENTRIES // spec.total_procs):
                yield from m.insert(rank, (rank, i), Blob(1024))

        hcl.run_ranks(fill)
        t0 = hcl.now

        def grow(rank):
            return (yield from m.add_partition(rank, node_id=3))

        proc = hcl.cluster.spawn(grow(0))
        hcl.cluster.run()
        moved = proc.result
        hcl_time = hcl.now - t0

        # --- BCL: clients agree on a new static layout and re-insert ---
        bcl = BCL(spec)
        old = bcl.hashmap("old", capacity_per_partition=2 * ENTRIES,
                          entry_size=1024, partitions=3, inflight_slots=16)
        new = bcl.hashmap("new", capacity_per_partition=2 * ENTRIES,
                          entry_size=1024, partitions=4, inflight_slots=16)

        def bcl_fill(rank):
            for i in range(ENTRIES // spec.total_procs):
                yield from old.insert(rank, (rank, i), Blob(1024))

        procs = bcl.cluster.spawn_ranks(bcl_fill)
        bcl.cluster.run()
        for p in procs:
            p.result
        t0 = bcl.sim.now
        barrier = bcl.barrier()

        def bcl_rehash(rank):
            # All-to-all synchronization, then every client re-inserts its
            # share of the entries into the new layout.
            yield barrier.wait()
            for i in range(ENTRIES // spec.total_procs):
                value, found = yield from old.find(rank, (rank, i))
                assert found
                yield from new.insert(rank, (rank, i), value)
            yield barrier.wait()

        procs = bcl.cluster.spawn_ranks(bcl_rehash)
        bcl.cluster.run()
        for p in procs:
            p.result
        bcl_time = bcl.sim.now - t0
        return hcl_time, bcl_time, moved

    hcl_time, bcl_time, moved = run_once(benchmark, run)
    report(render_table(
        "Ablation 10 — re-balancing to one more partition "
        f"({ENTRIES} entries; HCL migrated only {moved})",
        ["approach", "time (s)", "entries moved"],
        [["HCL add_partition (localized)", hcl_time, moved],
         ["BCL re-layout (all-to-all + full reinsert)", bcl_time, ENTRIES]],
    ))
    assert moved < ENTRIES / 2  # only the rehashed fraction moves
    assert hcl_time < bcl_time


@pytest.mark.benchmark(group="ablations")
def test_ablation_providers(benchmark, report):
    """The same container workload across OFI providers."""

    def run_one(provider):
        spec = ares_like(nodes=2, procs_per_node=PROCS)
        hcl = HCL(spec, provider=provider)
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              initial_buckets=8 * PROCS * OPS)
        return _insert_workload(hcl, m)

    def run():
        return {p: run_one(p) for p in ("roce", "verbs", "tcp")}

    times = run_once(benchmark, run)
    report(render_table(
        "Ablation 7 — OFI provider",
        ["provider", "time (s)", "vs roce"],
        [[p, t, t / times["roce"]] for p, t in times.items()],
    ))
    assert times["verbs"] < times["roce"] < times["tcp"]
