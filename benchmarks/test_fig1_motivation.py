"""Figure 1 — the motivating test case.

Paper setup: 40 clients on one node issue 8192 insert() calls of 4KB each
against a hashmap partition on a *different* node.  Three strategies:

1. **BCL** — client-side: remote CAS(reserve) + RDMA_WRITE + CAS(ready);
   paper: 1.062 s total, ~2/3 spent in the two remote CAS stages.
2. **RPC with CAS** — the same three steps bundled into one RPC executed at
   the target (CAS now local); paper: ~0.53 s, 2x faster.
3. **RPC lock-free** — the RPC server mutates a lock-free structure, no CAS
   at all; paper: ~0.42 s, 2.5x faster.

Scaled: 16 clients x 512 ops (x16 fewer ops than the paper; absolute times
are reported both raw and extrapolated to paper scale).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import ares_like
from repro.fabric import Cluster
from repro.harness import Blob, render_table
from repro.rpc import RpcClient, RpcServer
from repro.structures.stats import OpStats

NCLIENTS = 40  # as in the paper — contention level drives the CAS cost
OPS = 256
SIZE = 4096
SCALE = (40 * 8192) / (NCLIENTS * OPS)  # op-count ratio vs the paper


def _spec():
    return ares_like(nodes=2, procs_per_node=NCLIENTS)


def run_bcl():
    """Strategy 1: client-side CAS protocol, with per-stage timing."""
    cluster = Cluster(_spec())
    node1 = cluster.node(1)
    node1.register_region("part", 1 << 30)
    stages = {"reserve": 0.0, "write": 0.0, "ready": 0.0}

    def client(rank):
        qp = cluster.qp(0)
        for i in range(OPS):
            off = (rank * OPS + i) * 8
            t0 = cluster.sim.now
            yield from qp.cas(1, "part", off, 0, 1)
            t1 = cluster.sim.now
            yield from qp.rdma_write(1, "part", off + 1, Blob(SIZE), SIZE)
            t2 = cluster.sim.now
            yield from qp.cas(1, "part", off, 1, 2)
            t3 = cluster.sim.now
            stages["reserve"] += t1 - t0
            stages["write"] += t2 - t1
            stages["ready"] += t3 - t2

    cluster.spawn_ranks(client, ranks=range(NCLIENTS))
    cluster.run()
    per_client = {k: v / NCLIENTS for k, v in stages.items()}
    return cluster.sim.now, per_client


#: Cost of one *contended* CAS executed by a NIC core: the cache line is
#: shared by every concurrent handler, so the CASes serialize behind the
#: same memory region (cheaper than a remote CAS, but not free).
CAS_LOCKED_COST = 0.5e-6


def _run_rpc(lock_free: bool):
    """Strategies 2/3: one RPC per insert; CAS (or not) executed locally."""
    from repro.simnet.sync import SimLock

    cluster = Cluster(_spec())
    servers = {i: RpcServer(cluster.node(i)) for i in range(2)}
    client = RpcClient(cluster, 0, servers)
    store = {}
    bucket_lock = SimLock(cluster.sim, name="bucket-line")

    def handler(ctx, key, value):
        if not lock_free:
            # reserve + ready CAS, serialized on the shared bucket line.
            yield bucket_lock.acquire()
            try:
                yield ctx.sim.timeout(2 * CAS_LOCKED_COST)
            finally:
                bucket_lock.release()
        from repro.core.costs import charge

        yield from charge(ctx.node, OpStats(local_ops=2, writes=1), SIZE,
                          cpu_factor=ctx.cost.nic_compute_factor)
        store[key] = value
        return True

    servers[1].bind("insert", handler)

    def body(rank):
        for i in range(OPS):
            yield from client.call(1, "insert", ((rank, i), Blob(SIZE)),
                                   payload_size=SIZE)

    cluster.spawn_ranks(body, ranks=range(NCLIENTS))
    cluster.run()
    assert len(store) == NCLIENTS * OPS
    return cluster.sim.now


@pytest.mark.benchmark(group="fig1")
def test_fig1_motivating_case(benchmark, report):
    def run_all():
        t_bcl, stages = run_bcl()
        t_rpc_cas = _run_rpc(lock_free=False)
        t_rpc_lf = _run_rpc(lock_free=True)
        return t_bcl, stages, t_rpc_cas, t_rpc_lf

    t_bcl, stages, t_rpc_cas, t_rpc_lf = run_once(benchmark, run_all)

    rows = [
        ["BCL (client-side)", t_bcl, t_bcl * SCALE, 1.062, 1.0],
        ["RPC with CAS", t_rpc_cas, t_rpc_cas * SCALE, 0.53,
         t_bcl / t_rpc_cas],
        ["RPC lock-free", t_rpc_lf, t_rpc_lf * SCALE, 0.42,
         t_bcl / t_rpc_lf],
    ]
    cas_fraction = (stages["reserve"] + stages["ready"]) / max(
        stages["reserve"] + stages["write"] + stages["ready"], 1e-12
    )
    report(
        render_table(
            "Fig 1 — motivating test (scaled x%.0f; paper values at full "
            "scale)" % SCALE,
            ["approach", "sim time (s)", "extrapolated (s)", "paper (s)",
             "speedup vs BCL"],
            rows,
        )
        + "\n\nBCL per-client stage split: reserve %.3gs  write %.3gs  "
        "ready %.3gs  (CAS stages = %.0f%% of total; paper: ~2/3)"
        % (stages["reserve"], stages["write"], stages["ready"],
           100 * cas_fraction)
    )

    # Shape assertions from the paper.
    assert t_bcl / t_rpc_cas > 1.5, "RPC-with-CAS must be ~2x faster"
    assert t_rpc_lf < t_rpc_cas, "lock-free must beat RPC-with-CAS"
    assert t_bcl / t_rpc_lf > 2.0, "lock-free must be ~2.5x faster"
    assert cas_fraction > 0.5, "CAS stages must dominate BCL's time"
