"""Serving-SLO bench: the Zipfian overload A/B at CI smoke scale.

Paper scale (64 nodes x 10^5 clients) lives in the committed
``BENCH_serving.json`` and the CI ``paper-scale`` job; this bench runs the
4x4-node, 500-client analogue and asserts the *shape* every larger run
shows: admission control flattens the overload latency cliff (unbounded
p99 many multiples of the shed p99) without starving any tenant.

``shed_retries=0`` on purpose: retried ops pay their backoff inside the
latency figure, which measures the retry policy rather than the cliff.
The retry machinery is covered by tests/test_serving.py.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.serving import check_serving, render_serving, run_serving

#: the CI smoke configuration (mirrored by the serving-smoke workflow job)
SMOKE = dict(nodes=4, procs_per_node=4, clients=500, tenants=4, theta=0.99,
             keys=512, queue_frac=0.5, queue_home="packed", rate=4800.0,
             ops_per_client=30.0, seed=3, bounds=(None, 16), shed_retries=0,
             rpc_batch_size=1)

#: conservative floor — the config measures ~16x on the reference machine
CLIFF_FACTOR = 3.0


def _monitor_lines(sink) -> str:
    """Skew + burn-rate rows for the bench report, one line per config."""
    lines = []
    for entry in sink:
        bound = "off" if entry["queue_bound"] is None else entry["queue_bound"]
        skew = entry["flight"]["skew"]
        slo = entry["flight"]["slo"]
        parts = "  ".join(f"{p['partition']} {p['share']:.1%}"
                          for p in skew["top_partitions"][:3])
        key = skew["top_keys"][0]
        lines.append(
            f"  monitors[{bound}]: imbalance {skew['imbalance']:.2f} "
            f"(cv {skew['cv']:.2f}); top partitions {parts}; "
            f"hot key {key['key']} x{key['count']} (err {key['error']}); "
            f"{skew['hot_events']} hot-partition event(s), "
            f"{slo['alerts']} SLO alert(s) in {slo['ticks']} ticks"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="serving")
def test_serving_overload_cliff(benchmark, report):
    # Monitors armed: the observability stack (flight recorder + skew
    # detector + burn-rate SLO monitor) is pure observation, so the report
    # is identical with it on (tests/test_serving.py asserts that
    # byte-for-byte) and the sink gives the bench its skew/alert rows.
    sink = []
    rep = run_once(benchmark, lambda: run_serving(
        **SMOKE, monitors=True, monitors_sink=sink))
    failures = check_serving(rep, require_cliff=True,
                             cliff_factor=CLIFF_FACTOR)
    cliff = rep["cliff"]
    report(
        render_serving(rep)
        + f"\n  unbounded p99 {cliff['p99_shedding_off'] * 1e6:.0f}us vs "
          f"shed {cliff['p99_shedding_on'] * 1e6:.0f}us "
          f"({cliff['p99_ratio']:.1f}x; floor {CLIFF_FACTOR}x)\n"
        + _monitor_lines(sink)
    )
    assert not failures, failures
    unbounded, bounded = rep["configs"]
    # Shedding surfaces overload as explicit errors, not hidden latency.
    assert bounded["shed"] > 0
    assert bounded["shed_gaveup"] == bounded["shed"]  # retries disabled
    assert unbounded["shed"] == 0
    # One flight per admission-control config, each with live monitors.
    assert [e["queue_bound"] for e in sink] == list(SMOKE["bounds"])
    for entry in sink:
        skew = entry["flight"]["skew"]
        assert skew["imbalance"] >= 1.0
        assert skew["top_keys"] and skew["keys_offered"] > 0
        assert entry["flight"]["slo"]["ticks"] > 0
