"""Beyond-the-paper application kernels: BFS and the task scheduler.

Not paper figures — these cover the remaining workload classes the paper's
introduction motivates ("irregular patterns, indexing services, scheduling,
data sharing"), with the same verified-results discipline as Fig 7.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.apps import make_graph, make_task_graph, run_bfs, run_scheduler
from repro.config import ares_like
from repro.harness import render_table

NODE_SWEEP = [2, 4]
PROCS = 4


@pytest.mark.benchmark(group="extra-apps")
def test_bfs_irregular_traversal(benchmark, report):
    def run():
        rows = []
        for nodes in NODE_SWEEP:
            spec = ares_like(nodes=nodes, procs_per_node=PROCS)
            graph = make_graph(vertices=90 * nodes, avg_degree=4.0,
                               seed=nodes)
            h = run_bfs("hcl", spec, graph)
            b = run_bfs("bcl", spec, graph)
            assert h.verified and b.verified
            assert h.reached == b.reached
            rows.append([nodes, graph.number_of_nodes(), h.levels,
                         b.time_seconds, h.time_seconds,
                         b.time_seconds / h.time_seconds])
        return rows

    rows = run_once(benchmark, run)
    report(render_table(
        "Extra — distributed BFS (verified vs networkx)",
        ["nodes", "vertices", "levels", "bcl (s)", "hcl (s)", "speedup"],
        rows,
    ))
    for row in rows:
        assert row[-1] > 1.5  # HCL's batched lookups + server-side inserts


@pytest.mark.benchmark(group="extra-apps")
def test_scheduler_policies(benchmark, report):
    def run():
        rows = []
        for seed in (2, 7, 11):
            spec = ares_like(nodes=2, procs_per_node=4, seed=seed)
            tasks = make_task_graph(count=48, seed=seed)
            rp = run_scheduler(spec, tasks, policy="priority")
            rf = run_scheduler(spec, tasks, policy="fifo")
            assert rp.verified and rf.verified
            rows.append([seed, rp.makespan, rp.deferrals,
                         rf.makespan, rf.deferrals,
                         rf.makespan / rp.makespan])
        return rows

    rows = run_once(benchmark, run)
    report(render_table(
        "Extra — task scheduler: priority queue vs FIFO ready-queue",
        ["seed", "prio makespan (s)", "prio defers",
         "fifo makespan (s)", "fifo defers", "prio advantage"],
        rows,
    ))
    # Priority scheduling wins on makespan in the clear majority of DAGs
    # and always defers less (it drains the dependency frontier first).
    wins = sum(1 for row in rows if row[-1] > 1.0)
    assert wins >= 2
    assert all(row[2] <= row[4] for row in rows)
