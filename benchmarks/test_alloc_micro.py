"""Allocation microbenchmark for the per-op hot classes.

Full-paper-scale runs allocate one :class:`~repro.fabric.packet.Message`,
one :class:`~repro.rpc.server.RpcRequest` and one
:class:`~repro.rpc.future.RPCFuture` per remote operation — millions of
short-lived instances per bench.  Those classes are slotted so each
instance skips the per-object ``__dict__``; this bench pins the slotted
layout (a silent regression back to dict-backed instances would cost both
memory and allocation wall time at scale) and tracks the raw allocation
rate of the per-op trio.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once

from repro.fabric.packet import Message, Verb
from repro.rpc.client import RpcClient
from repro.rpc.coalesce import OpCoalescer, ReadCache, _Buffer
from repro.rpc.future import RPCFuture
from repro.rpc.server import RpcRequest
from repro.simnet.core import Simulator

#: Classes allocated on (or near) every remote op.  A class is dict-free
#: iff no class in its MRO installs a ``__dict__`` descriptor.
SLOTTED_HOT_CLASSES = [
    Message, RpcRequest, RPCFuture, RpcClient, OpCoalescer, ReadCache,
    _Buffer,
]

ALLOCS = 200_000

# Generous smoke floor (allocs of the full per-op trio per second); the
# point is catching a collapse, not benchmarking the CPython allocator.
SMOKE_FLOOR_TRIOS_PER_SEC = 100_000


def test_hot_classes_are_slotted():
    for cls in SLOTTED_HOT_CLASSES:
        offenders = [
            base.__name__ for base in cls.__mro__
            if "__dict__" in getattr(base, "__dict__", {})
        ]
        assert not offenders, (
            f"{cls.__name__} instances carry a __dict__ "
            f"(introduced by {offenders}) — add __slots__"
        )


@pytest.mark.benchmark(group="kernel")
def test_per_op_allocation_rate(benchmark, report):
    sim = Simulator()

    def alloc_trios():
        t0 = time.perf_counter()
        for i in range(ALLOCS):
            Message(Verb.SEND, 0, 1, 64)
            RpcRequest(op="push", args=(i, None), src_node=0, slot=i,
                       response_size_hint=16)
            RPCFuture(sim, "push")
        return time.perf_counter() - t0

    wall = run_once(benchmark, alloc_trios)
    rate = ALLOCS / wall if wall > 0 else float("inf")
    report(
        "Per-op allocation microbenchmark (slotted hot classes)\n"
        f"  {ALLOCS:,} x (Message + RpcRequest + RPCFuture)\n"
        f"  wall time      {wall:.3f} s\n"
        f"  trio rate      {rate:,.0f} trios/s"
    )
    assert rate > SMOKE_FLOOR_TRIOS_PER_SEC, (
        f"per-op allocation collapsed: {rate:,.0f} trios/s "
        f"(floor {SMOKE_FLOOR_TRIOS_PER_SEC:,})"
    )
