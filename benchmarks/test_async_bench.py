"""Async-pipeline bench: the sync-vs-async k-mer A/B at CI smoke scale.

The committed wall-clock numbers live in ``BENCH_async.json`` (regenerated
by ``python -m repro.cli asyncbench --emit``); this bench runs the sim-only
analogue — deterministic, so it can assert hard invariants rather than
noisy wall ratios:

* every mode (sync baseline, async static sweep, async auto) verifies and
  produces the SAME application digest — the pipeline reorders work, never
  results;
* the async simulated timeline does not regress against the aggregated
  sync baseline;
* the self-tuned coalescer threshold lands within tolerance of the best
  hand-tuned static run;
* the emitted JSON round-trips through the ``check_regression`` async gate
  cleanly against itself.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.check_regression import compare_async
from benchmarks.conftest import run_once
from repro.harness.asyncbench import emit_async_json, run_async_bench

SMOKE = dict(scale=1.0, nodes=2, procs_per_node=2, repeats=1, sim_only=True)


@pytest.mark.benchmark(group="async")
def test_async_pipeline_ab(benchmark, report, tmp_path):
    rep = run_once(benchmark, lambda: run_async_bench(**SMOKE))

    failures = rep.check()
    assert failures == [], failures
    assert {r.digest for r in rep.rows} != set()
    assert all(r.verified for r in rep.rows)
    assert len({r.digest for r in rep.rows}) == 1

    summary = rep.summary()
    assert summary["async_sim_speedup"] >= 1.0
    assert summary["auto_vs_best_static"] <= 1.10
    auto = rep.auto_row()
    assert auto.auto_threshold is not None and auto.auto_threshold >= 4

    path = emit_async_json(rep, str(tmp_path / "BENCH_async.json"))
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["benchmark"] == "async_pipeline"
    assert compare_async(payload, payload) == []

    report(
        "Async pipeline A/B (sim-only smoke)\n"
        + "\n".join(
            f"  {r.mode:<5} agg={r.aggregation:<5} sim={r.sim_seconds:.6f}s "
            f"rpc/window_stalls={r.window_stalls} digest={r.digest}"
            for r in rep.rows
        )
        + f"\n  coalesce/auto_threshold={auto.auto_threshold}"
        + f"\n  async sim speedup {summary['async_sim_speedup']:.2f}x, "
          f"auto/best-static {summary['auto_vs_best_static']:.2f}x"
    )


@pytest.mark.benchmark(group="async")
def test_async_bench_deterministic(benchmark, tmp_path):
    """Same seed, same scale -> byte-identical sim-only JSON."""

    def emit(path):
        rep = run_async_bench(**SMOKE)
        return emit_async_json(rep, str(path))

    a = run_once(benchmark, lambda: emit(tmp_path / "a.json"))
    b = emit(tmp_path / "b.json")
    with open(a, "rb") as fa, open(b, "rb") as fb:
        assert fa.read() == fb.read()
