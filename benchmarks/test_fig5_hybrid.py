"""Figure 5 — hybrid data access model bandwidth sweep.

Paper setup: each client issues 8192 writes (inserts) or reads (finds) of
one operation size, swept 4KB -> 8MB; bandwidth in MB/s.

(a) **Intra-node**: clients co-located with the partition.  HCL bypasses
    the RPC/NIC entirely (direct shared memory): 45-55 GB/s, i.e. 2x-20x
    over BCL inserts and 1.5x-7.2x over BCL finds (BCL averages ~4 GB/s
    insert / ~12 GB/s find — it still drives verbs through the local NIC).
(b) **Inter-node**: partition remote.  HCL reaches ~4-4.2 GB/s (link
    speed); BCL 1.3 GB/s insert / 4 GB/s find at 1MB.  Above 1MB BCL runs
    out of memory (exclusive client buffers + static entry-size layout
    exceed the 60% budget at the paper's scale).

Scaled: 8 clients x 48 ops per size point.  BCL's >1MB OOM is checked at
the paper's op-count scale analytically (the allocation math is exact) and
reported in the table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.bcl import BCL
from repro.config import KB, MB, ares_like
from repro.core import HCL
from repro.harness import Blob, render_series

NCLIENTS = 8
OPS = 48
SIZES = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 8 * MB]

# Paper-scale parameters for the analytic OOM check.
PAPER_CLIENTS = 40
PAPER_OPS = 8192


def _mb_per_s(nbytes: float, seconds: float) -> float:
    return nbytes / seconds / MB if seconds > 0 else 0.0


def _bcl_paper_scale_footprint(size: int) -> int:
    """Exact BCL allocation at the paper's configuration for one size point.

    The bandwidth test reuses a fixed-size bucket table (16 Ki buckets —
    writes overwrite; this is a throughput test, not a capacity test), but
    both the static table *and* each client's 512 exclusive in-flight
    buffers scale with the fixed entry size — the growth that breaks the
    60% budget above 1 MB in the paper.
    """
    capacity = 16 * 1024
    static = capacity * (size + 16)
    buffers = PAPER_CLIENTS * 512 * size  # exclusive in-flight buffers
    return static + buffers


def _run_hcl(size: int, local: bool, op: str) -> float:
    spec = ares_like(nodes=1 if local else 2, procs_per_node=NCLIENTS)
    hcl = HCL(spec)
    node = 0 if local else 1
    m = hcl.unordered_map("m", partitions=1, nodes=[node],
                          initial_buckets=8 * NCLIENTS * OPS)

    def insert_body(rank):
        for i in range(OPS):
            yield from m.insert(rank, (rank, i), Blob(size))

    def find_body(rank):
        for i in range(OPS):
            yield from m.find(rank, (rank, i))

    hcl.run_ranks(insert_body)
    t_insert = hcl.now
    hcl.run_ranks(find_body)
    t_find = hcl.now - t_insert
    total = NCLIENTS * OPS * size
    return {
        "insert": _mb_per_s(total, t_insert),
        "find": _mb_per_s(total, t_find),
    }[op]


def _run_bcl(size: int, local: bool, op: str) -> float:
    spec = ares_like(nodes=1 if local else 2, procs_per_node=NCLIENTS)
    bcl = BCL(spec)
    m = bcl.hashmap("m", capacity_per_partition=4 * NCLIENTS * OPS,
                    entry_size=size, partitions=1, inflight_slots=64)
    if not local:
        m._partition_nodes = [1]

    def insert_body(rank):
        for i in range(OPS):
            yield from m.insert(rank, (rank, i), Blob(size))

    procs = bcl.cluster.spawn_ranks(insert_body)
    bcl.cluster.run()
    for p in procs:
        p.result
    t_insert = bcl.sim.now

    def find_body(rank):
        for i in range(OPS):
            yield from m.find(rank, (rank, i))

    procs = bcl.cluster.spawn_ranks(find_body)
    bcl.cluster.run()
    for p in procs:
        p.result
    t_find = bcl.sim.now - t_insert
    total = NCLIENTS * OPS * size
    return {
        "insert": _mb_per_s(total, t_insert),
        "find": _mb_per_s(total, t_find),
    }[op]


def _sweep(local: bool):
    out = {"hcl_insert": [], "hcl_find": [], "bcl_insert": [], "bcl_find": []}
    for size in SIZES:
        out["hcl_insert"].append(_run_hcl(size, local, "insert"))
        out["hcl_find"].append(_run_hcl(size, local, "find"))
        out["bcl_insert"].append(_run_bcl(size, local, "insert"))
        out["bcl_find"].append(_run_bcl(size, local, "find"))
    return out


@pytest.mark.benchmark(group="fig5")
def test_fig5a_intra_node(benchmark, report):
    sweep = run_once(benchmark, lambda: _sweep(local=True))
    labels = [f"{s // KB}KB" if s < MB else f"{s // MB}MB" for s in SIZES]
    report(render_series(
        "Fig 5a — intra-node bandwidth MB/s "
        "(paper: HCL 45-55 GB/s; BCL ~4 GB/s ins / ~12 GB/s find)",
        "op size", labels, sweep,
    ))
    for i, size in enumerate(SIZES):
        # HCL's shared-memory bypass must beat BCL's loopback-verb path.
        assert sweep["hcl_insert"][i] > 1.5 * sweep["bcl_insert"][i], size
        assert sweep["hcl_find"][i] > 1.2 * sweep["bcl_find"][i], size
    # HCL approaches node memory bandwidth at large sizes (>= 20 GB/s).
    assert sweep["hcl_insert"][-1] > 20_000
    # BCL finds beat BCL inserts (fewer CAS round trips).
    assert sum(sweep["bcl_find"]) > sum(sweep["bcl_insert"])


@pytest.mark.benchmark(group="fig5")
def test_fig5b_inter_node(benchmark, report):
    def run():
        sweep = _sweep(local=False)
        oom = ["OOM" if _bcl_paper_scale_footprint(s) >
               int(0.6 * 96 * 1024 * MB) else "ok" for s in SIZES]
        return sweep, oom

    sweep, oom = run_once(benchmark, run)
    labels = [f"{s // KB}KB" if s < MB else f"{s // MB}MB" for s in SIZES]
    series = dict(sweep)
    report(render_series(
        "Fig 5b — inter-node bandwidth MB/s "
        "(paper: HCL ~4-4.2 GB/s; BCL 1.3 ins / 4.0 find; OOM > 1MB)",
        "op size", labels, series,
    ) + "\nBCL at paper scale (40 clients x 8192 ops): " + ", ".join(
        f"{label}={o}" for label, o in zip(labels, oom)))

    for i, size in enumerate(SIZES):
        assert sweep["hcl_insert"][i] > sweep["bcl_insert"][i], size
    # HCL saturates toward link bandwidth (4.5 GB/s) at large sizes.
    assert sweep["hcl_insert"][-1] > 3000
    assert sweep["hcl_find"][-1] > 3000
    # BCL inserts stay well below HCL (multiple remote CAS per op).
    assert sweep["bcl_insert"][-1] < 0.75 * sweep["hcl_insert"][-1]
    # The paper-scale memory math shows OOM strictly above 1MB.
    oom_sizes = [s for s, o in zip(SIZES, oom) if o == "OOM"]
    assert all(s > 1 * MB for s in oom_sizes)
    assert 4 * MB in oom_sizes and 8 * MB in oom_sizes
