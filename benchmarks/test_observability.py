"""Observability benches: registry counters, span overhead, Fig-4 telemetry.

Three previously hidden layers of instrumentation are surfaced into the
bench report via the unified metrics registry:

* the chaos stack's RPC retry / failover / replay / fault-injection
  counters (previously summed ad hoc inside the soak harness),
* the coalescer's flush counters,
* the Fig-4 telemetry series (NIC utilization, memory, packet rate)
  produced by the two-pass :mod:`repro.harness.telemetry` sampler.

The span-tracing bench asserts the overhead contract: tracing off is the
default and costs nothing observable (identical simulated results), and
tracing on changes *nothing* about the simulation — only wall clock.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import ares_like
from repro.harness import render_table
from repro.harness.aggbench import _run_app
from repro.harness.chaos import run_chaos_soak
from repro.harness.telemetry import FIG4_SERIES, check_telemetry, run_telemetry
from repro.obs import install_tracer, registry_of, tracer_of

#: wall-clock slack for the traced run: spans are two floats + one object
#: per stage, so even 5x would signal a regression; CI machines are noisy.
TRACE_WALL_SLACK = 5.0


@pytest.mark.benchmark(group="observability")
def test_registry_surfaces_hidden_counters(benchmark, report):
    """The chaos soak's registry snapshot exposes every hidden counter."""

    def run():
        return run_chaos_soak(plan="mixed", seed=0, nodes=3,
                              procs_per_node=2, aggregation=8)

    rep = run_once(benchmark, run)
    metrics = rep["metrics"]

    def total(suffix, prefix=""):
        return int(sum(v for k, v in metrics.items()
                       if k.endswith(suffix)
                       and k.startswith(prefix)
                       and isinstance(v, (int, float))))

    rows = [
        ["rpc retries", total("/retries", "rpcc")],
        ["rpc retry budget exhausted", total("/exhausted", "rpcc")],
        ["server duplicates suppressed", total("/dups_suppressed")],
        ["failover writes", total("/failover_writes")],
        ["failover reads", total("/failover_reads")],
        ["replayed writes", total("/replayed_writes")],
        ["coalescer flushes", total("/agg_flushes")],
        ["coalesced ops", total("/agg_ops")],
        ["fault injections", rep["injected_total"]],
        ["switch transits", total("transits")],
    ]
    report(render_table(
        "hidden counters surfaced via the metrics registry "
        "(chaos-soak plan=mixed, agg=8)",
        ["counter", "value"], rows,
    ))

    assert rep["ok"], "soak must uphold the reliability contract"
    # The registry totals must agree with the report's own rollups — the
    # report *is* a registry consumer now, not a parallel bookkeeper.
    assert total("/retries", "rpcc") == rep["rpc"]["retries"]
    assert total("/exhausted", "rpcc") == rep["rpc"]["exhausted"]
    assert (total("/failover_writes")) == rep["failover"]["writes"]
    assert (total("/replayed_writes")) == rep["failover"]["replayed"]
    assert metrics["faults/drops"] == rep["injected"]["drops"]
    # The storm must actually have exercised the hidden machinery.
    assert total("/retries", "rpcc") > 0
    assert total("/agg_flushes") > 0
    assert rep["injected_total"] > 0


@pytest.mark.benchmark(group="observability")
def test_span_tracing_overhead_bound(benchmark, report):
    """Tracing on: identical simulation, bounded wall cost; off: free."""
    import time

    spec = ares_like(nodes=2, procs_per_node=2)

    def timed(traced):
        box = {}

        def instrument(hcl):
            box["sim"] = hcl.sim
            if traced:
                install_tracer(hcl.sim)

        t0 = time.perf_counter()
        ops, sim_s, verified, _ = _run_app(
            "kmer", ares_like(nodes=2, procs_per_node=2), 0.5, 0, instrument
        )
        wall = time.perf_counter() - t0
        return sim_s, verified, wall, box["sim"]

    def run():
        return timed(False), timed(True)

    (off_sim, off_ok, off_wall, off_simob), \
        (on_sim, on_ok, on_wall, on_simob) = run_once(benchmark, run)

    tracer = tracer_of(on_simob)
    report(render_table(
        "span tracing overhead (kmer, 2x2 ranks)",
        ["mode", "sim (s)", "wall (s)", "spans"],
        [["tracing off", f"{off_sim:.6f}", f"{off_wall:.3f}", 0],
         ["tracing on", f"{on_sim:.6f}", f"{on_wall:.3f}", len(tracer)]],
    ))

    assert off_ok and on_ok
    assert tracer_of(off_simob) is None, "tracing must be off by default"
    assert on_sim == off_sim, "spans must not perturb the simulation"
    assert len(tracer) > 0
    assert on_wall < TRACE_WALL_SLACK * max(off_wall, 1e-3), (
        f"traced wall {on_wall:.3f}s exceeds {TRACE_WALL_SLACK}x "
        f"untraced {off_wall:.3f}s"
    )
    # Registry population is construction-time and identical either way.
    assert registry_of(on_simob).names() == registry_of(off_simob).names()


@pytest.mark.benchmark(group="observability")
def test_fig4_telemetry_harness(benchmark, report):
    """The telemetry harness yields all three Fig-4 series per app."""

    def run():
        return run_telemetry(scale=0.5, nodes=2, procs_per_node=2, samples=12)

    rep = run_once(benchmark, run)

    for run_rec in rep["runs"]:
        rows = [[name,
                 len(run_rec["series"][name]["values"]),
                 f"{run_rec['series'][name]['mean']:.4g}",
                 f"{run_rec['series'][name]['max']:.4g}"]
                for name in FIG4_SERIES]
        report(render_table(
            f"Fig 4 telemetry — {run_rec['app']} "
            f"({run_rec['sim_seconds']:.6f}s sim, "
            f"{run_rec['samples']} samples)",
            ["series", "samples", "mean", "max"], rows,
        ))

    assert check_telemetry(rep) == []
    apps = {r["app"] for r in rep["runs"]}
    assert {"isx", "contig"} <= apps  # one ISx and one contig-gen run
    for run_rec in rep["runs"]:
        # Two-pass sampling must not have perturbed the measured run.
        assert run_rec["sim_seconds"] == run_rec["dry_run_seconds"]
        assert run_rec["samples"] == 12
        for name in FIG4_SERIES:
            assert max(run_rec["series"][name]["values"]) > 0.0
