"""Transparent destination-coalescing buffers + locality-aware read cache.

Covers the aggregation subsystem end to end: buffered ops write-combine
into per-(node, partition) batches flushed as ONE invocation, sync points
(sync reads, keyed batches, barriers, explicit flush) preserve program
order, ``aggregation=0`` stays on the classic one-invocation-per-op path,
and the epoch-validated read cache can never serve a stale value.
"""

from __future__ import annotations

import pytest

from repro.config import ares_like
from repro.core import HCL, Collectives

from tests.conftest import run_rank0


def _total_invocations(h: HCL) -> int:
    return int(sum(c.invocations.value for c in h._clients.values()))


def _contents(m) -> dict:
    return {k: v for part in m.partitions for k, v in part.structure.items()}


def _remote_key(m, node_id: int, start: int = 0):
    """A key owned by a partition NOT on ``node_id``."""
    return next(
        k for k in range(start, start + 10_000)
        if m.partition_for(k).node_id != node_id
    )


class TestCoalescer:
    def _run_upserts(self, spec, aggregation):
        h = HCL(spec)
        m = h.unordered_map("t", partitions=2, aggregation=aggregation)

        def body(rank):
            for i in range(24):
                yield from m.upsert_buffered(rank, i % 7, 1)
            yield from m.flush(rank)

        h.run_ranks(body)
        return h, m

    def test_identical_results_fewer_invocations(self, small_spec):
        h_off, m_off = self._run_upserts(small_spec, aggregation=0)
        h_on, m_on = self._run_upserts(small_spec, aggregation=8)
        assert _contents(m_off) == _contents(m_on)
        assert _total_invocations(h_on) < _total_invocations(h_off)
        h_off.close()
        h_on.close()

    def test_flush_counters(self, small_spec):
        h, m = self._run_upserts(small_spec, aggregation=8)
        report = m.aggregation_report()["aggregation"]
        assert report["flushes"] > 0
        assert report["flushed_ops"] > 0
        assert report["ops_per_flush"] > 1.0
        assert report["pending_ops"] == 0
        h.close()

    def test_sync_read_drains_buffer(self, hcl):
        """Program order: a sync find sees the rank's earlier buffered op
        without an explicit flush."""
        m = hcl.unordered_map("t", partitions=2, aggregation=64)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert_buffered(0, key, "v")
            assert m._coalescer.pending_total() == 1
            value, found = yield from m.find(0, key)
            assert (value, found) == ("v", True)
            assert m._coalescer.pending_total() == 0

        run_rank0(hcl, body())

    def test_keyed_batch_drains_buffer(self, hcl):
        m = hcl.unordered_map("t", partitions=2, aggregation=64)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.upsert_buffered(0, key, 5)
            results = yield from m.batch(0, [("find", key)])
            assert results == [(5, True)]

        run_rank0(hcl, body())

    def test_barrier_flushes_all_containers(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=512)
        coll = Collectives(h)
        total = small_spec.total_procs

        def body(rank):
            yield from m.insert_buffered(rank, ("k", rank), rank)
            yield from coll.barrier(rank)
            # After the barrier every rank's buffered insert is visible.
            value, found = yield from m.find(rank, ("k", (rank + 1) % total))
            assert found and value == (rank + 1) % total

        h.run_ranks(body)
        assert m._coalescer.pending_total() == 0
        h.close()

    def test_threshold_flush_by_op_count(self, hcl):
        m = hcl.unordered_map("t", partitions=2, aggregation=4)
        key = _remote_key(m, node_id=0)

        def body():
            part = m.partition_for(key)
            for i in range(8):
                yield from m.upsert_buffered(0, key, 1)
            # Two threshold flushes were spawned; drain them.
            yield from m.flush(0)
            value, found, _stats = part.structure.find(key)
            assert found and value == 8

        run_rank0(hcl, body())
        report = m.aggregation_report()["aggregation"]
        assert report["threshold_flushes"] >= 2

    def test_local_ops_bypass_buffers(self, hcl):
        """Same-node ops keep the direct shared-memory path: nothing to
        buffer, nothing to flush."""
        m = hcl.unordered_map("t", partitions=2, aggregation=8)
        key = next(
            k for k in range(1000) if m.partition_for(k).node_id == 0
        )

        def body():
            yield from m.insert_buffered(0, key, "local")
            assert m._coalescer.pending_total() == 0
            value, found, _stats = m.partition_for(key).structure.find(key)
            assert found and value == "local"

        run_rank0(hcl, body())

    def test_aggregation_off_is_plain_execute(self, hcl):
        m = hcl.unordered_map("t", partitions=2)
        assert m._coalescer is None
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert_buffered(0, key, 1)  # applies immediately
            value, found, _stats = m.partition_for(key).structure.find(key)
            assert found and value == 1
            yield from m.flush(0)  # no-op

        run_rank0(hcl, body())

    def test_negative_aggregation_rejected(self, hcl):
        with pytest.raises(ValueError, match="aggregation"):
            hcl.unordered_map("t", aggregation=-1)

    def test_close_raises_on_unflushed_ops(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=64)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert_buffered(0, key, 1)

        run_rank0(h, body())
        with pytest.raises(RuntimeError, match="unflushed"):
            m.close()
        run_rank0(h, m.flush(0))
        m.close()
        h.close()

    def test_priority_queue_push_buffered(self, hcl):
        q = hcl.priority_queue("pq", home_node=1, dims=9, base=8,
                               aggregation=8)

        def body():
            for p in (30, 10, 20):
                yield from q.push_buffered(0, p, str(p))
            yield from q.flush(0)
            entries = yield from q.pop_many(4, 8)  # rank 4 is on node 1
            assert [p for p, _v in entries] == [10, 20, 30]

        run_rank0(hcl, body())


class TestReadCache:
    def _cached_map(self, h):
        return h.unordered_map("c", partitions=2, read_cache=True)

    def test_hit_skips_invocation(self, hcl):
        m = self._cached_map(hcl)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert(0, key, 42)
            first = yield from m.find(0, key)
            before = _total_invocations(hcl)
            second = yield from m.find(0, key)  # served from cache
            assert _total_invocations(hcl) == before
            assert first == second == (42, True)

        run_rank0(hcl, body())
        report = m.aggregation_report()["read_cache"]
        assert report["hits"] == 1
        assert report["misses"] >= 1

    def test_never_stale_after_remote_write(self, hcl):
        """A write from any rank invalidates/expires the cached entry: the
        next read returns the new value, not the cached one."""
        m = self._cached_map(hcl)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert(0, key, "old")
            _ = yield from m.find(0, key)  # prime the cache
            yield from m.insert(0, key, "new")  # write-through invalidation
            value, found = yield from m.find(0, key)
            assert (value, found) == ("new", True)

        run_rank0(hcl, body())

    def test_never_stale_after_owner_local_write(self, small_spec):
        """The hard case: the owner mutates its partition directly (no RPC
        the caller could observe).  The epoch check must reject the
        caller's cached entry."""
        h = HCL(small_spec)
        m = self._cached_map(h)
        key = _remote_key(m, node_id=0)
        owner_rank = next(
            r for r in range(small_spec.total_procs)
            if h.cluster.node_of_rank(r) == m.partition_for(key).node_id
        )

        def reader():
            yield from m.insert(0, key, 1)
            _ = yield from m.find(0, key)  # cached at epoch E

        run_rank0(h, reader())

        def owner_writes():
            yield from m.insert(owner_rank, key, 2)  # direct local mutation

        run_rank0(h, owner_writes())

        def reread():
            value, found = yield from m.find(0, key)
            assert (value, found) == (2, True)

        run_rank0(h, reread())
        assert m.aggregation_report()["read_cache"]["stale_drops"] >= 1
        h.close()

    def test_find_async_hit_and_fill(self, hcl):
        m = self._cached_map(hcl)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert(0, key, 7)
            fut1 = m.find_async(0, key)  # miss: goes to the wire
            yield fut1.wait()
            assert fut1.result == (7, True)
            before = _total_invocations(hcl)
            fut2 = m.find_async(0, key)  # hit: completes instantly
            assert fut2.done and fut2.result == (7, True)
            assert _total_invocations(hcl) == before

        run_rank0(hcl, body())

    def test_erase_invalidates(self, hcl):
        m = self._cached_map(hcl)
        key = _remote_key(m, node_id=0)

        def body():
            yield from m.insert(0, key, 1)
            _ = yield from m.find(0, key)
            ok = yield from m.erase(0, key)
            assert ok
            value, found = yield from m.find(0, key)
            assert (value, found) == (None, False)

        run_rank0(hcl, body())


class TestAppEquivalence:
    """Aggregation is a transport optimization: app results are identical."""

    def test_kmer_histogram_identical(self):
        from repro.apps import run_kmer_counting, synthesize_genome

        spec = ares_like(nodes=2, procs_per_node=2, seed=3)
        data = synthesize_genome(genome_length=400, num_reads=30,
                                 read_length=40, k=11, seed=3)
        off = run_kmer_counting("hcl", spec, data)
        on = run_kmer_counting("hcl", spec, data, aggregation=16)
        assert off.verified and on.verified
        assert off.distinct_kmers == on.distinct_kmers
        assert on.time_seconds < off.time_seconds
        assert on.agg_report["aggregation"]["flushes"] > 0

    def test_contig_set_identical(self):
        from repro.apps import run_contig_generation, synthesize_genome

        spec = ares_like(nodes=2, procs_per_node=2, seed=3)
        data = synthesize_genome(genome_length=400, num_reads=30,
                                 read_length=40, k=11, seed=3)
        off = run_contig_generation("hcl", spec, data)
        on = run_contig_generation("hcl", spec, data, aggregation=16,
                                   read_cache=True)
        assert off.verified and on.verified
        assert off.contigs == on.contigs
        assert on.time_seconds < off.time_seconds
        assert on.agg_report["read_cache"]["hits"] > 0
