"""Tests for the hot-partition / hot-key skew detector."""

import pytest

from repro.obs import MetricsRegistry, SkewDetector, SpaceSavingSketch


class TestSpaceSavingSketch:
    def test_exact_below_capacity(self):
        sk = SpaceSavingSketch(capacity=8)
        for key, n in (("a", 5), ("b", 3), ("c", 1)):
            for _ in range(n):
                sk.offer(key)
        assert sk.top(3) == [("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]
        assert sk.offered == 9
        assert len(sk) == 3 and "a" in sk and "z" not in sk

    def test_eviction_inherits_floor_as_error(self):
        sk = SpaceSavingSketch(capacity=2)
        sk.offer("a")
        sk.offer("a")
        sk.offer("b")
        sk.offer("c")  # evicts b (count 1): c = count 2, error 1
        assert ("c", 2, 1) in sk.top(2)
        assert "b" not in sk

    def test_fifo_tie_break_is_deterministic(self):
        def run():
            sk = SpaceSavingSketch(capacity=3)
            for key in "a b c a d b e".split():
                sk.offer(key)
            return sk.top(3)

        assert run() == run()

    def test_heavy_key_survives_churn(self):
        """A key with true count > N/capacity is always retained."""
        sk = SpaceSavingSketch(capacity=4)
        stream = []
        for i in range(60):
            stream.append("hot")
            stream.append(f"cold{i}")
        for key in stream:
            sk.offer(key)
        top = sk.top(1)
        assert top[0][0] == "hot"
        assert top[0][1] >= 60  # upper bound never undercounts

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)


def _rig(per_partition):
    """A registry + detector over ``len(per_partition)`` fake partitions."""
    reg = MetricsRegistry()
    counters = [reg.counter(f"m.{i}/ops") for i in range(len(per_partition))]
    sources = [(f"m.{i}/ops", i % 2) for i in range(len(per_partition))]
    for c, n in zip(counters, per_partition):
        c.add(n)
    return reg, counters, sources


class TestSkewDetector:
    def test_hot_factor_validation(self):
        reg, _c, sources = _rig([1, 1])
        with pytest.raises(ValueError):
            SkewDetector(reg, sources, hot_factor=1.0)

    def test_imbalance_and_top_partitions(self):
        reg, _c, sources = _rig([90, 5, 5, 0])
        det = SkewDetector(reg, sources)
        s = det.summary()
        assert s["partitions"] == 4
        assert s["total_ops"] == 100.0
        assert s["imbalance"] == pytest.approx(90 / 25)
        assert s["top_partitions"][0]["partition"] == "m.0/ops"
        assert s["top_partitions"][0]["share"] == pytest.approx(0.9)
        # Node rollup: partitions 0, 2 live on node 0; 1, 3 on node 1.
        assert s["node_ops"] == {"0": 95.0, "1": 5.0}

    def test_uniform_load_is_balanced(self):
        reg, _c, sources = _rig([25, 25, 25, 25])
        det = SkewDetector(reg, sources)
        s = det.summary()
        assert s["imbalance"] == pytest.approx(1.0)
        assert s["cv"] == pytest.approx(0.0)
        assert s["hot_events"] == 0

    def test_hot_event_edge_triggered(self, sim):
        from repro.simnet import EventLog

        reg, counters, sources = _rig([0, 0, 0, 0])
        log = EventLog(sim)
        det = SkewDetector(reg, sources, hot_factor=2.0, event_log=log)
        # Tick 1: partition 0 takes 80% of the delta -> hot (fair share 25%).
        counters[0].add(80)
        counters[1].add(20)
        det.tick(1.0)
        # Tick 2: still hot -> edge-triggered, no second event.
        counters[0].add(80)
        counters[1].add(20)
        det.tick(2.0)
        # Tick 3: load evens out -> cooled.
        for c in counters:
            c.add(25)
        det.tick(3.0)
        kinds = [kind for _t, kind, _p in log.entries]
        assert kinds == ["skew.hot_partition", "skew.cooled"]
        assert det.hot_events == 1
        hot_payload = log.entries[0][2]
        assert hot_payload["partition"] == "m.0/ops"
        assert hot_payload["share"] == pytest.approx(0.8)

    def test_idle_tick_fires_nothing(self):
        reg, _c, sources = _rig([10, 10])
        det = SkewDetector(reg, sources)
        det.tick(1.0)  # consumes the initial counts
        det.tick(2.0)  # zero delta: no division, no events
        assert det.ticks == 2 and det.hot_events == 0

    def test_zipf_hot_keys_rank_first(self):
        """Acceptance: the sketch ranks known Zipf hot keys first."""
        n_keys = 512
        theta = 0.99
        raw = [(r + 1) ** -theta for r in range(n_keys)]
        norm = sum(raw)
        # Deterministic proportional stream: key i appears ~w_i * N times
        # (the serving harness's Zipf popularity law, exact instead of
        # sampled so the ground-truth ranking is unambiguous).
        counts = [max(1, round(w / norm * 50_000)) for w in raw]
        det = SkewDetector(MetricsRegistry(), [("m.0/ops", 0)],
                           sketch_capacity=64, top_k=5)
        # Interleave round-robin so heavy keys don't just arrive first.
        remaining = list(counts)
        alive = True
        while alive:
            alive = False
            for i in range(n_keys):
                if remaining[i] > 0:
                    det.offer_key(i)
                    remaining[i] -= 1
                    alive = True
        truth = sorted(range(n_keys), key=lambda i: (-counts[i], i))[:5]
        top = [entry["key"] for entry in det.summary()["top_keys"]]
        assert top == [str(i) for i in truth]
        # Counts are exact upper bounds >= the true frequency.
        for entry, i in zip(det.summary()["top_keys"], truth):
            assert entry["count"] >= counts[i]

    def test_summary_deterministic(self):
        def run():
            reg, counters, sources = _rig([7, 3, 90])
            det = SkewDetector(reg, sources, top_k=3)
            for k in (1, 2, 2, 3, 3, 3):
                det.offer_key(k)
            det.tick(0.5)
            return det.summary()

        assert run() == run()
