"""End-to-end tests for RPC span tracing and the exporters.

The two load-bearing invariants:

* **Tiling** — a traced RPC's contiguous client-side stage spans sum
  exactly to its end-to-end simulated latency (they partition the root
  interval by construction).
* **Purity** — tracing never perturbs the simulation: a traced run and an
  untraced run of the same workload produce identical results and final
  sim times.
"""

import json

import pytest

from repro.config import ares_like
from repro.harness.aggbench import _run_app
from repro.obs import (
    STAGE_NAMES,
    install_tracer,
    span_record,
    tracer_of,
    validate_chrome_trace,
    validate_span_log,
    write_chrome_trace,
    write_span_jsonl,
)


def _traced_run(app="kmer", aggregation=0, scale=0.25):
    box = {}

    def instrument(hcl):
        box["sim"] = hcl.sim
        install_tracer(hcl.sim)

    spec = ares_like(nodes=2, procs_per_node=2)
    ops, sim_s, verified, _agg = _run_app(app, spec, scale, aggregation,
                                          instrument)
    assert verified
    return tracer_of(box["sim"]), sim_s


def _rpc_roots(tracer):
    """Spans for whole RPC invocations (`rpc.<op>`, not the deliver stage)."""
    return [s for s in tracer.spans
            if s.name.startswith("rpc.") and s.name not in STAGE_NAMES]


@pytest.fixture(scope="module")
def kmer_tracer():
    tracer, _sim_s = _traced_run("kmer")
    return tracer


class TestStageTiling:
    def test_stages_sum_to_e2e_latency(self, kmer_tracer):
        rpcs = _rpc_roots(kmer_tracer)
        assert len(rpcs) > 10
        for root in rpcs:
            stages = kmer_tracer.stage_children(root)
            assert stages, f"rpc {root.name} has no stage spans"
            total = sum(s.duration for s in stages)
            assert total == pytest.approx(root.duration, rel=1e-9, abs=1e-15)

    def test_stages_are_contiguous(self, kmer_tracer):
        for root in _rpc_roots(kmer_tracer):
            stages = sorted(kmer_tracer.stage_children(root),
                            key=lambda s: s.start)
            assert stages[0].start == root.start
            assert stages[-1].end == root.end
            for prev, nxt in zip(stages, stages[1:]):
                assert nxt.start == prev.end

    def test_fair_weather_stage_names(self, kmer_tracer):
        root = _rpc_roots(kmer_tracer)[0]
        names = [s.name for s in kmer_tracer.stage_children(root)]
        assert names == ["client.marshal", "client.send", "server.wait",
                         "client.pull", "client.settle"]

    def test_server_detail_nests_in_wait(self, kmer_tracer):
        root = _rpc_roots(kmer_tracer)[0]
        children = {s.name: s for s in kmer_tracer.children_of(root)}
        wait = children["server.wait"]
        queue = children["server.queue"]
        execute = children["server.execute"]
        assert wait.start <= queue.start <= queue.end == execute.start
        assert execute.end <= wait.end


class TestHardenedPath:
    def test_deliver_stage_tiles_under_retry_stack(self):
        """The chaos harness's hardened client emits rpc.deliver spans."""
        from repro.harness.chaos import run_chaos_soak

        box = {}

        def instrument(h):
            box["sim"] = h.sim
            install_tracer(h.sim)

        run_chaos_soak(plan="calm", nodes=2, procs_per_node=1,
                       keys_per_rank=4, kmers_per_rank=3, horizon=1e-3,
                       instrument=instrument)
        tracer = tracer_of(box["sim"])
        rpcs = _rpc_roots(tracer)
        assert rpcs
        deliver = [s for s in tracer.spans if s.name == "rpc.deliver"]
        assert deliver
        for root in rpcs:
            stages = tracer.stage_children(root)
            total = sum(s.duration for s in stages)
            assert total == pytest.approx(root.duration, rel=1e-9, abs=1e-15)


class TestPurity:
    def test_traced_run_is_bit_identical(self):
        spec = ares_like(nodes=2, procs_per_node=2)
        _ops, plain_s, plain_ok, _ = _run_app("kmer", spec, 0.25, 0, None)
        tracer, traced_s = _traced_run("kmer")
        assert plain_ok
        assert traced_s == plain_s  # exact equality, not approx
        assert len(tracer) > 0

    def test_tracer_off_by_default(self):
        from repro.simnet.core import Simulator

        assert tracer_of(Simulator()) is None

    def test_identical_runs_identical_span_logs(self):
        a, _ = _traced_run("isx")
        b, _ = _traced_run("isx")
        assert [span_record(s) for s in a.spans] \
            == [span_record(s) for s in b.spans]


class TestCoalesceSpans:
    def test_buffer_span_parents_batch_rpc(self):
        tracer, _ = _traced_run("kmer", aggregation=8)
        buffers = [s for s in tracer.spans if s.name == "coalesce.buffer"]
        assert buffers
        for buf in buffers:
            children = tracer.children_of(buf)
            assert any(c.name.startswith("rpc.") for c in children)
            assert buf.attrs["ops"] >= 1
            # The buffer opens at first append, before the flush RPC fires.
            for child in children:
                assert buf.start <= child.start

    def test_batch_tiling_still_holds(self):
        tracer, _ = _traced_run("kmer", aggregation=8)
        for root in _rpc_roots(tracer):
            total = sum(s.duration for s in tracer.stage_children(root))
            assert total == pytest.approx(root.duration, rel=1e-9, abs=1e-15)


class TestExporters:
    def test_span_log_round_trip(self, kmer_tracer, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        n = write_span_jsonl(kmer_tracer.spans, path)
        assert n == len(kmer_tracer.spans)
        assert validate_span_log(path) == []

    def test_chrome_trace_valid_and_shaped(self, kmer_tracer, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(kmer_tracer.spans, path)
        assert validate_chrome_trace(path) == []
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert metas and slices
        assert {e["args"]["name"] for e in metas} >= {"node0", "node1"}
        # Roots are categorized "rpc", stages "stage".
        assert {e["cat"] for e in slices} == {"rpc", "stage"}

    def test_validator_rejects_tampered_log(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        good = {"trace_id": 1, "span_id": 1, "parent_id": None,
                "name": "rpc.x", "node": 0, "start": 0.0, "end": 1.0,
                "dur": 1.0}
        lines = [
            dict(good),
            {**good, "span_id": 2, "dur": 0.5},           # dur != end-start
            {**good, "span_id": 3, "end": -1.0},          # end < start, < min
            {**good, "span_id": 4, "parent_id": 99},      # dangling parent
            {**good, "span_id": 5, "extra": True},        # unexpected field
            {**good, "span_id": "six"},                   # wrong type
        ]
        with open(path, "w") as fh:
            for rec in lines:
                fh.write(json.dumps(rec) + "\n")
            fh.write("not json\n")
        errors = validate_span_log(path)
        assert len(errors) >= 6
        assert any("parent_id 99" in e for e in errors)
        assert any("invalid JSON" in e for e in errors)

    def test_validator_rejects_missing_required(self, tmp_path):
        path = str(tmp_path / "missing.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"trace_id": 1}) + "\n")
        errors = validate_span_log(path)
        assert any("missing required" in e for e in errors)


class TestWindowedPath:
    """Tiling under the AIMD-windowed client: shed retries relaunch whole
    attempts, so every attempt's root span must still tile exactly."""

    @pytest.fixture(scope="class")
    def windowed_tracer(self):
        from repro.fabric import Cluster
        from repro.rpc import RpcClient, RpcServer
        from repro.rpc.window import WindowConfig

        spec = ares_like(nodes=2, procs_per_node=4, seed=7)
        cluster = Cluster(spec)
        tracer = install_tracer(cluster.sim)
        servers = {
            0: RpcServer(cluster.node(0)),
            1: RpcServer(cluster.node(1), workers=1, queue_bound=1),
        }
        client = RpcClient(cluster, 0, servers,
                           window=WindowConfig(initial=8))

        def slow(ctx, i):
            yield ctx.sim.timeout(40e-6)
            return i

        servers[1].bind("slow", slow)
        futs = [client.invoke(1, "slow", (i,), stream=i % 2)
                for i in range(24)]
        cluster.run()
        for f in futs:
            assert f.ok
        assert client.windows.window(1, 0).sheds.value > 0, \
            "rig must provoke shed retries"
        return tracer

    def test_every_attempt_root_tiles_exactly(self, windowed_tracer):
        roots = _rpc_roots(windowed_tracer)
        # Sheds force extra attempts: more roots than the 24 logical ops.
        assert len(roots) > 24
        for root in roots:
            stages = windowed_tracer.stage_children(root)
            assert stages, f"root {root.name} has no stage spans"
            total = sum(s.duration for s in stages)
            assert total == pytest.approx(root.duration, rel=1e-9,
                                          abs=1e-15)

    def test_stage_sum_equals_root_sum_fleet_wide(self, windowed_tracer):
        """Cluster-wide: STAGE_NAMES durations partition total RPC time."""
        stage_total = sum(s.duration for s in windowed_tracer.spans
                          if s.name in STAGE_NAMES)
        root_total = sum(s.duration for s in _rpc_roots(windowed_tracer))
        assert stage_total == pytest.approx(root_total, rel=1e-9)

    def test_roots_carry_stream_attr(self, windowed_tracer):
        streams = {s.attrs.get("stream") for s in _rpc_roots(windowed_tracer)}
        assert streams == {0, 1}

    def test_critpath_grouping_sees_streams(self, windowed_tracer):
        from repro.obs import critpath_analyze

        result = critpath_analyze(windowed_tracer)
        assert result["tiling_max_residual"] == pytest.approx(0.0,
                                                              abs=1e-12)
        keys = {(g["dst"], g["stream"]) for g in result["groups"]}
        assert keys == {(1, 0), (1, 1)}


class TestAsyncCoalescedPath:
    def test_auto_coalescer_traced_run_tiles(self):
        """The async-futures path (auto coalescer + windows) keeps tiling:
        coalesce.buffer spans parent batch RPC roots and windowed retries
        relaunch whole attempts, and every root still tiles exactly."""
        from repro.apps import run_kmer_counting, synthesize_genome

        data = synthesize_genome(genome_length=240, num_reads=24,
                                 read_length=60, k=15, seed=3)
        box = {}

        def instrument(hcl):
            box["tracer"] = install_tracer(hcl.sim)

        res = run_kmer_counting(
            "hcl", ares_like(nodes=2, procs_per_node=2), data,
            aggregation="auto", sim_only=True, async_api=True,
            window=True, instrument=instrument,
        )
        assert res.verified
        tracer = box["tracer"]
        roots = _rpc_roots(tracer)
        assert roots
        assert any(s.name == "coalesce.buffer" for s in tracer.spans)
        for root in roots:
            total = sum(s.duration for s in tracer.stage_children(root))
            assert total == pytest.approx(root.duration, rel=1e-9,
                                          abs=1e-15)
