"""AIMD congestion windows on the pipelined RPC issue path.

Covers the window's control law (additive increase, epoch-guarded halving,
the floor-of-1 progress guarantee), the windowed ``invoke`` (shed retry
with correct idempotency-token semantics, stall accounting) and the
bit-determinism of window trajectories across reruns.
"""

from __future__ import annotations

import pytest

from repro.config import ares_like
from repro.fabric import Cluster
from repro.obs.registry import registry_of
from repro.rpc import RpcClient, RpcServer
from repro.rpc.future import ServerOverloaded
from repro.rpc.window import AIMDWindow, WindowConfig, WindowSet
from repro.simnet import Simulator


def _window(sim, **kw) -> AIMDWindow:
    cfg = WindowConfig(**kw)
    metrics = registry_of(sim)
    return AIMDWindow(
        sim, cfg, metrics.gauge("rpc/cwnd/test"),
        metrics.counter("rpc/window_stalls"),
        metrics.counter("rpc/window_sheds"),
        metrics.counter("rpc/window_retries"),
    )


class TestWindowConfig:
    def test_floor_below_one_rejected(self):
        with pytest.raises(ValueError, match="floor"):
            WindowConfig(floor=0)

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            WindowConfig(initial=2, floor=4)
        with pytest.raises(ValueError):
            WindowConfig(initial=16, cap=8)


class TestControlLaw:
    def test_additive_increase_under_target(self):
        win = _window(Simulator(), initial=4)
        for seq in range(1, 9):
            win._launch_seq = seq
            win.outstanding = 1
            win.completed(seq, latency=1e-6)
        assert win.cwnd > 4.0
        # ~ additive ops per window of completions, not per completion
        assert win.cwnd < 4.0 + 8

    def test_capped_at_cap(self):
        win = _window(Simulator(), initial=4, cap=5)
        for seq in range(1, 50):
            win._launch_seq = seq
            win.outstanding = 1
            win.completed(seq, latency=1e-6)
        assert win.cwnd == 5.0

    def test_shed_halves(self):
        win = _window(Simulator(), initial=16)
        win._launch_seq = 1
        win.outstanding = 1
        win.shed(1)
        assert win.cwnd == 8.0

    def test_latency_spike_halves(self):
        win = _window(Simulator(), initial=16, latency_factor=4.0)
        win._launch_seq = 2
        win.outstanding = 2
        win.completed(1, latency=1e-6)   # establishes base latency
        win.completed(2, latency=1e-3)   # >> 4x base
        assert win.cwnd < 16.0

    def test_sustained_sheds_hit_floor_of_one(self):
        """The floor guarantees progress: never 0, never negative."""
        win = _window(Simulator(), initial=64, floor=1)
        for seq in range(1, 40):
            win._launch_seq = seq  # new launch epoch -> decrease allowed
            win.outstanding = 1
            win.shed(seq)
        assert win.cwnd == 1.0
        # ...and a window of 1 still launches.
        ran = []
        win.submit(lambda seq: ran.append(seq))
        assert ran

    def test_recovery_epoch_absorbs_shed_burst(self):
        """Sheds of launches from one in-flight window halve once, not N."""
        win = _window(Simulator(), initial=16)
        win._launch_seq = 8          # 8 launches in flight
        win.outstanding = 8
        for seq in range(1, 9):      # every one of them sheds
            win.shed(seq)
        assert win.cwnd == 8.0       # one halving, not 16 / 2**8


class TestSubmitQueue:
    def test_full_window_queues_and_counts_stall(self):
        sim = Simulator()
        win = _window(sim, initial=1)
        order = []
        win.submit(lambda seq: order.append(("a", seq)))
        win.submit(lambda seq: order.append(("b", seq)))  # window full
        assert order == [("a", 1)]
        assert win.queued == 1
        assert registry_of(sim).counter("rpc/window_stalls").value == 1
        win.completed(1, latency=1e-6)  # frees a slot -> pump
        assert order == [("a", 1), ("b", 2)]
        assert win.queued == 0


class TestWindowSet:
    def test_keyed_per_node_and_stream(self, sim):
        ws = WindowSet(sim, src_node=0, cfg=WindowConfig())
        a = ws.window(1, 0)
        assert ws.window(1, 0) is a
        assert ws.window(1, 1) is not a
        assert ws.window(2, 0) is not a
        snap = ws.snapshot()
        assert set(snap) == {"n0-n1s0", "n0-n1s1", "n0-n2s0"}
        assert all(v == 4.0 for v in snap.values())

    def test_gauges_exported(self, sim):
        ws = WindowSet(sim, src_node=3, cfg=WindowConfig())
        ws.window(1, 2).completed(1, 1e-6)
        gauge = registry_of(sim).gauge("rpc/cwnd/n3-n1s2")
        assert gauge.value == ws.window(1, 2).cwnd


def _shed_rig(initial=8, queue_bound=1, **cfg_kw):
    """2 nodes; node 1 serves with one worker and a tiny receive queue."""
    spec = ares_like(nodes=2, procs_per_node=4, seed=7)
    cluster = Cluster(spec)
    servers = {
        0: RpcServer(cluster.node(0)),
        1: RpcServer(cluster.node(1), workers=1, queue_bound=queue_bound),
    }
    client = RpcClient(cluster, 0, servers,
                       window=WindowConfig(initial=initial, **cfg_kw))

    def slow(ctx, i):
        yield ctx.sim.timeout(40e-6)
        return i

    servers[1].bind("slow", slow)
    return cluster, servers, client


class TestWindowedInvoke:
    def test_same_result_as_direct(self, small_spec):
        cluster = Cluster(small_spec)
        servers = {i: RpcServer(cluster.node(i)) for i in range(2)}
        client = RpcClient(cluster, 0, servers, window=WindowConfig())
        servers[1].bind("echo", lambda ctx, x: x * 2)
        fut = client.invoke(1, "echo", (21,), stream=0)
        cluster.run()
        assert fut.result == 42

    def test_storm_sheds_shrink_window_without_deadlock(self):
        cluster, _servers, client = _shed_rig()
        futs = [client.invoke(1, "slow", (i,), stream=0) for i in range(40)]
        cluster.run()
        assert [f.result for f in futs] == list(range(40))
        metrics = registry_of(cluster.sim)
        assert metrics.counter("rpc/window_sheds").value > 0
        assert metrics.counter("rpc/window_retries").value > 0
        assert metrics.counter("rpc/window_stalls").value > 0
        win = client.windows.window(1, 0)
        assert win.cwnd < 8.0          # shrank under overload...
        assert win.cwnd >= 1.0         # ...but never below the floor
        assert win.outstanding == 0 and win.queued == 0

    def test_shed_surfaces_after_retry_budget(self):
        cluster, _servers, client = _shed_rig(max_shed_retries=1)
        futs = [client.invoke(1, "slow", (i,), stream=0) for i in range(40)]
        cluster.run()
        failed = [f for f in futs if not f.ok]
        assert failed, "retry budget of 1 should leave surfaced sheds"
        with pytest.raises(ServerOverloaded):
            _ = failed[0].result

    def test_pinned_token_rides_every_attempt(self, monkeypatch):
        cluster, _servers, client = _shed_rig()
        seen = []
        direct = RpcClient._invoke_direct

        def spy(self, dst, op, args=(), payload_size=None, callbacks=None,
                token=None, trace_parent=None, fused=False, stream=None):
            seen.append(token)
            return direct(self, dst, op, args, payload_size, callbacks,
                          token, trace_parent, fused, stream)

        monkeypatch.setattr(RpcClient, "_invoke_direct", spy)
        futs = [client.invoke(1, "slow", (i,), stream=0, token=(0, 100 + i))
                for i in range(20)]
        cluster.run()
        for f in futs:
            assert f.ok
        assert len(seen) > 20, "sheds should have forced extra attempts"
        # A pinned token is preserved verbatim on every attempt.
        assert set(seen) == {(0, 100 + i) for i in range(20)}

    def test_auto_tokens_never_reused_across_attempts(self, monkeypatch):
        """Auto tokens defer to the hardened path's per-attempt draw: the
        window never replays a previously drawn token on a fresh attempt."""
        cluster, _servers, client = _shed_rig()
        seen = []
        direct = RpcClient._invoke_direct

        def spy(self, dst, op, args=(), payload_size=None, callbacks=None,
                token=None, trace_parent=None, fused=False, stream=None):
            seen.append(token)
            return direct(self, dst, op, args, payload_size, callbacks,
                          token, trace_parent, fused, stream)

        monkeypatch.setattr(RpcClient, "_invoke_direct", spy)
        futs = [client.invoke(1, "slow", (i,), stream=0) for i in range(20)]
        cluster.run()
        for f in futs:
            assert f.ok
        assert len(seen) > 20
        assert all(t is None for t in seen)


class TestDeterminism:
    def _trajectory(self):
        cluster, _servers, client = _shed_rig()
        futs = [client.invoke(1, "slow", (i,), stream=i % 2)
                for i in range(60)]
        cluster.run()
        for f in futs:
            assert f.ok
        metrics = registry_of(cluster.sim)
        return (
            client.windows.snapshot(),
            cluster.sim.now,
            metrics.counter("rpc/window_stalls").value,
            metrics.counter("rpc/window_sheds").value,
            metrics.counter("rpc/window_retries").value,
        )

    def test_same_seed_same_window_trajectory(self):
        assert self._trajectory() == self._trajectory()
