"""Tests for the DataBox abstraction and the three codec backends."""

import struct

import pytest

from repro.serialization import (
    CerealCodec,
    DataBox,
    FlatCodec,
    FlatView,
    SerializationError,
    get_codec,
    list_codecs,
    record,
    register_custom_type,
)
from repro.serialization.cereal_like import SchemaError
from repro.serialization.databox import estimate_size
from repro.serialization.msgpack_like import pack, unpack


@pytest.fixture(autouse=True)
def _clean_custom_types():
    """Snapshot/restore the registry so library-level registrations (e.g.
    the harness Blob codec) survive these tests' throwaway types."""
    from repro.serialization import databox

    encoders = dict(databox._CUSTOM_ENCODERS)
    decoders = dict(databox._CUSTOM_DECODERS)
    yield
    databox._CUSTOM_ENCODERS.clear()
    databox._CUSTOM_ENCODERS.update(encoders)
    databox._CUSTOM_DECODERS.clear()
    databox._CUSTOM_DECODERS.update(decoders)


class TestMsgpackVectors:
    """Byte-exact checks against the real MessagePack format."""

    VECTORS = [
        (None, b"\xc0"),
        (False, b"\xc2"),
        (True, b"\xc3"),
        (0, b"\x00"),
        (127, b"\x7f"),
        (-1, b"\xff"),
        (-32, b"\xe0"),
        (255, b"\xcc\xff"),
        (65535, b"\xcd\xff\xff"),
        (-33, b"\xd0\xdf"),
        (1.5, b"\xcb" + struct.pack(">d", 1.5)),
        ("", b"\xa0"),
        ("abc", b"\xa3abc"),
        (b"\x01\x02", b"\xc4\x02\x01\x02"),
        ([], b"\x90"),
        ([1, 2], b"\x92\x01\x02"),
        ({}, b"\x80"),
        ({"a": 1}, b"\x81\xa1a\x01"),
    ]

    @pytest.mark.parametrize("value,expected", VECTORS)
    def test_pack_matches_spec(self, value, expected):
        assert pack(value) == expected

    @pytest.mark.parametrize("value,expected", VECTORS)
    def test_unpack_matches_spec(self, value, expected):
        assert unpack(expected) == value


class TestMsgpackRoundtrips:
    CASES = [
        2**40,
        -(2**40),
        2**63 - 1,
        -(2**63),
        2**100,  # bignum escape hatch
        "x" * 40,  # str8
        "y" * 300,  # str16
        b"z" * 300,  # bin16
        list(range(20)),  # array16 boundary is 65536; this is fixarray+
        {i: str(i) for i in range(20)},
        [1, [2, [3, [4, "deep"]]]],
        {"nested": {"sets": {1, 2, 3}}},
        (1, 2, 3),  # tuples decode as lists
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_roundtrip(self, value):
        out = unpack(pack(value))
        if isinstance(value, tuple):
            assert out == list(value)
        else:
            assert out == value

    def test_large_array16(self):
        data = list(range(70_000))
        assert unpack(pack(data)) == data

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            unpack(pack(1) + b"\x00")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            unpack(pack("hello")[:-1])

    def test_unencodable_type(self):
        with pytest.raises(TypeError):
            pack(object())


class TestCereal:
    def test_fixed_record_roundtrip(self):
        @record(key="i64", weight="f64", flag="bool")
        class Entry:
            pass

        codec = CerealCodec(Entry)
        e = Entry(key=-5, weight=2.25, flag=True)
        assert codec.decode(codec.encode(e)) == e
        assert codec.fixed_size

    def test_variable_record(self):
        @record(name="str", blob="bytes")
        class Doc:
            pass

        codec = CerealCodec(Doc)
        d = Doc(name="héllo", blob=b"\x00\xff")
        assert codec.decode(codec.encode(d)) == d
        assert not codec.fixed_size

    def test_nested_records(self):
        @record(x="i32", y="i32")
        class Point:
            pass

        @record(a=Point, b=Point, label="str")
        class Segment:
            pass

        codec = CerealCodec(Segment)
        s = Segment(a=Point(x=1, y=2), b=Point(x=3, y=4), label="s1")
        assert codec.decode(codec.encode(s)) == s

    def test_positional_layout_is_compact(self):
        @record(a="u8", b="u8")
        class Two:
            pass

        assert len(CerealCodec(Two).encode(Two(a=1, b=2))) == 2

    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            @record(bad="quaternion")
            class Nope:
                pass

    def test_missing_field_rejected(self):
        @record(a="i32")
        class One:
            pass

        with pytest.raises(SchemaError):
            One()
        with pytest.raises(SchemaError):
            One(a=1, b=2)

    def test_range_checked(self):
        @record(a="u8")
        class Tiny:
            pass

        codec = CerealCodec(Tiny)
        with pytest.raises(SchemaError):
            codec.encode(Tiny(a=300))

    def test_wrong_type_rejected(self):
        @record(a="i32")
        class A:
            pass

        @record(a="i32")
        class B:
            pass

        with pytest.raises(SchemaError):
            CerealCodec(A).encode(B(a=1))

    def test_codec_registry_lookup(self):
        @record(k="i64")
        class Keyed:
            pass

        codec = get_codec("cereal:Keyed")
        assert codec.decode(codec.encode(Keyed(k=7))) == Keyed(k=7)

    def test_unregistered_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(SchemaError):
            CerealCodec(Plain)
        with pytest.raises(SerializationError):
            get_codec("cereal:Plain")


class TestFlat:
    def test_multi_field_roundtrip(self):
        codec = FlatCodec()
        value = [1, "two", b"three", [4, 5]]
        assert codec.decode(codec.encode(value)) == value

    def test_single_value(self):
        codec = FlatCodec()
        assert codec.decode(codec.encode("solo")) == "solo"

    def test_lazy_field_access(self):
        codec = FlatCodec()
        buf = codec.encode(["key-field", b"A" * 10_000, 42])
        view = codec.view(buf)
        assert len(view) == 3
        # Read field 0 without touching the 10 KB blob.
        assert view[0] == "key-field"
        assert view[2] == 42
        assert view.field_bytes(1) == b"A" * 10_000

    def test_raw_bytes_stored_verbatim(self):
        codec = FlatCodec()
        buf = codec.encode([b"raw"])
        view = FlatView(buf)
        assert view.field_bytes(0) == b"raw"

    def test_index_bounds(self):
        view = FlatView(FlatCodec().encode([1]))
        with pytest.raises(IndexError):
            _ = view[1]

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            FlatView(b"\x01")


class TestDataBox:
    @pytest.mark.parametrize("value", [None, True, False, 7, -7, 3.5])
    def test_byte_copyable_fast_path(self, value):
        box = DataBox(value)
        assert box.byte_copyable and box.fixed_length
        assert DataBox.decode(box.encode()).value == value
        # Fast-path encodings are tiny: tag + at most 8 bytes.
        assert len(box.encode()) <= 9

    def test_big_int_not_byte_copyable(self):
        box = DataBox(2**70)
        assert not box.byte_copyable
        assert DataBox.decode(box.encode()).value == 2**70

    def test_variable_types_use_codec(self):
        for value in ["s", [1, 2], {"k": "v"}, {3, 4}]:
            box = DataBox(value)
            assert not box.fixed_length
            assert DataBox.decode(box.encode()).value == value

    def test_fixed_record_classified_fixed(self):
        @record(a="i64", b="f64")
        class FixedRec:
            pass

        assert DataBox(FixedRec(a=1, b=2.0)).fixed_length

    def test_custom_type_roundtrip(self):
        class Vec2:
            def __init__(self, x, y):
                self.x, self.y = x, y

            def __eq__(self, other):
                return (self.x, self.y) == (other.x, other.y)

        register_custom_type(
            Vec2,
            lambda v: struct.pack("<dd", v.x, v.y),
            lambda b: Vec2(*struct.unpack("<dd", b)),
        )
        box = DataBox(Vec2(1.0, -2.0))
        assert DataBox.decode(box.encode()).value == Vec2(1.0, -2.0)

    def test_duplicate_custom_tag_rejected(self):
        class T1:
            pass

        register_custom_type(T1, lambda v: b"", lambda b: T1(), tag="T")
        class T2:
            pass

        with pytest.raises(SerializationError):
            register_custom_type(T2, lambda v: b"", lambda b: T2(), tag="T")

    def test_unregistered_type_fails(self):
        class Mystery:
            pass

        with pytest.raises(TypeError):
            DataBox(Mystery()).encode()

    def test_decode_errors(self):
        with pytest.raises(SerializationError):
            DataBox.decode(b"")
        with pytest.raises(SerializationError):
            DataBox.decode(b"Zjunk")

    def test_wire_size_without_encoding(self):
        box = DataBox("x" * 100)
        assert box.wire_size >= 100
        assert box._encoded is None  # size estimate did not force an encode

    def test_codec_listing(self):
        names = list_codecs()
        assert "msgpack" in names and "flat" in names
        with pytest.raises(SerializationError):
            get_codec("bogus")


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_size(5) == 8
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1

    def test_strings_and_bytes(self):
        assert estimate_size("abcd") == 8
        assert estimate_size(b"abcd") == 8

    def test_containers_recurse(self):
        assert estimate_size([1, 2]) == 4 + 16
        assert estimate_size({"a": 1}) == 4 + 5 + 8

    def test_nbytes_attribute_respected(self):
        class Sized:
            nbytes = 4096

        assert estimate_size(Sized()) == 16 + 4096

    def test_estimate_close_to_actual_for_typical_entries(self):
        value = {"key": "k" * 20, "count": 3, "items": [1, 2, 3]}
        actual = len(pack(value))
        estimate = estimate_size(value)
        assert 0.3 * actual <= estimate <= 3 * actual
