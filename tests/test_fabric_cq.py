"""Tests for completion queues, async work requests, and BCL flush."""

import numpy as np
import pytest

from repro.bcl import BCL
from repro.fabric import Cluster, CompletionQueue, QueuePairAsync
from repro.serialization.msgpack_like import pack, unpack


class TestCompletionQueue:
    def test_poll_empty_returns_none(self, sim):
        cq = CompletionQueue(sim)
        assert cq.poll() is None
        assert len(cq) == 0

    def test_post_and_poll(self, cluster):
        cluster.node(1).register_region("r", 1 << 16)
        qp = cluster.qp(0)
        aqp = QueuePairAsync(qp)
        wr = aqp.post(qp.rdma_write(1, "r", 0, "data", 256))
        assert aqp.cq.outstanding == 1
        cluster.run()
        completion = aqp.cq.poll()
        assert completion is not None and completion.ok
        assert completion.wr_id == wr.wr_id
        assert wr.done

    def test_completion_order_and_results(self, cluster):
        cluster.node(1).register_region("r", 1 << 16)
        qp = cluster.qp(0)
        aqp = QueuePairAsync(qp)

        def body():
            for i in range(4):
                aqp.post(qp.cas(1, "r", 0, i, i + 1), wr_id=100 + i)
            completions = yield from aqp.flush()
            return completions

        completions = cluster.sim.run_process(body())
        assert len(completions) == 4
        assert {c.wr_id for c in completions} == {100, 101, 102, 103}
        assert all(c.ok for c in completions)
        # CAS results (old values) observed through the CQ: 0,1,2,3.
        assert sorted(c.result for c in completions) == [0, 1, 2, 3]

    def test_error_surfaces_as_failed_completion(self, cluster):
        cluster.node(1).register_region("r", 64)
        qp = cluster.qp(0)
        aqp = QueuePairAsync(qp)
        aqp.post(qp.rdma_write(1, "r", 9999, "x", 8))  # out of bounds
        cluster.run()
        completion = aqp.cq.poll()
        assert completion is not None and not completion.ok
        assert "IndexError" in completion.error

    def test_wait_blocks_until_completion(self, cluster):
        cluster.node(1).register_region("r", 1 << 16)
        qp = cluster.qp(0)
        aqp = QueuePairAsync(qp)

        def body():
            aqp.post(qp.rdma_write(1, "r", 0, "x", 4096))
            completion = yield aqp.cq.wait()
            return completion.ok, cluster.sim.now > 0

        ok, time_passed = cluster.sim.run_process(body())
        assert ok and time_passed

    def test_overlapped_posts_faster_than_serial(self, small_spec):
        def run(overlapped):
            cluster = Cluster(small_spec)
            cluster.node(1).register_region("r", 1 << 20)
            qp = cluster.qp(0)
            aqp = QueuePairAsync(qp)

            def body():
                if overlapped:
                    for i in range(8):
                        aqp.post(qp.rdma_write(1, "r", i, None, 65536))
                    yield from aqp.flush()
                else:
                    for i in range(8):
                        yield from qp.rdma_write(1, "r", i, None, 65536)

            cluster.sim.run_process(body())
            return cluster.sim.now

        assert run(True) < run(False)


class TestBclFlush:
    def test_insert_nb_plus_flush(self, small_spec):
        bcl = BCL(small_spec)
        m = bcl.hashmap("m", capacity_per_partition=1024, entry_size=128)

        def body(rank):
            for i in range(8):
                m.insert_nb(rank, (rank, i), i)
            yield from m.flush(rank)
            # After the flush every write is visible.
            for i in range(8):
                value, found = yield from m.find(rank, (rank, i))
                assert found and value == i

        procs = bcl.cluster.spawn_ranks(body, ranks=range(4))
        bcl.cluster.run()
        for p in procs:
            p.result

    def test_flush_reports_failures(self, small_spec):
        bcl = BCL(small_spec)
        m = bcl.hashmap("m", capacity_per_partition=2, entry_size=64,
                        partitions=1, max_probes=2)

        def body(rank):
            for i in range(6):  # overflows the 2-bucket static table
                m.insert_nb(rank, i, i)
            yield from m.flush(rank)

        proc = bcl.cluster.spawn(body(0))
        bcl.cluster.run()
        with pytest.raises(RuntimeError, match="flush"):
            proc.result

    def test_flush_is_a_synchronization_point(self, small_spec):
        """Posting is ~free; the flush is where the time goes (limitation b)."""
        bcl = BCL(small_spec)
        m = bcl.hashmap("m", capacity_per_partition=1024, entry_size=4096)
        marks = {}

        def body(rank):
            t0 = bcl.sim.now
            for i in range(16):
                m.insert_nb(rank, (rank, i), i)
            marks["posted"] = bcl.sim.now - t0
            yield from m.flush(rank)
            marks["flushed"] = bcl.sim.now - t0

        proc = bcl.cluster.spawn(body(0))
        bcl.cluster.run()
        proc.result
        assert marks["posted"] == 0.0  # non-blocking posts
        assert marks["flushed"] > 0.0


class TestNumpySerialization:
    @pytest.mark.parametrize("arr", [
        np.arange(10, dtype=np.int64),
        np.linspace(0, 1, 7, dtype=np.float32),
        np.zeros((3, 4), dtype=np.float64),
        np.array([], dtype=np.int32),
        np.arange(24, dtype=np.uint8).reshape(2, 3, 4),
    ], ids=lambda a: f"{a.dtype}-{a.shape}")
    def test_roundtrip(self, arr):
        out = unpack(pack(arr))
        assert isinstance(out, np.ndarray)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_nested_in_containers(self):
        value = {"weights": np.ones(5), "meta": [np.int64(3), "x"]}
        out = unpack(pack(value))
        assert np.array_equal(out["weights"], np.ones(5))

    def test_databox_carries_arrays(self):
        from repro.serialization import DataBox

        arr = np.arange(100, dtype=np.float64)
        box = DataBox(arr)
        out = DataBox.decode(box.encode()).value
        assert np.array_equal(out, arr)

    def test_estimate_size_uses_nbytes(self):
        from repro.serialization.databox import estimate_size

        arr = np.zeros(1000, dtype=np.float64)
        assert estimate_size(arr) == 16 + 8000
