"""Edge-case coverage: container count, MDList sizing, simnet corner paths."""

import pytest

from repro.structures.mdlist import MDListPriorityQueue


class TestContainerCount:
    def test_hash_count(self, hcl4, drive):
        m = hcl4.unordered_map("m", partitions=4)

        def body(rank):
            for i in range(5):
                yield from m.insert(rank, (rank, i), i)

        hcl4.run_ranks(body)

        def counter(rank):
            return (yield from m.count(rank))

        proc = hcl4.cluster.spawn(counter(0))
        hcl4.cluster.run()
        assert proc.result == 16 * 5

    def test_ordered_count(self, hcl, drive):
        om = hcl.map("om", partitions=2)

        def body():
            for i in range(9):
                yield from om.insert(0, i, i)
            return (yield from om.count(0))

        assert drive(hcl, body()) == 9

    def test_empty_count(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            return (yield from m.count(0))

        assert drive(hcl, body()) == 0


class TestMDListSizing:
    @pytest.mark.parametrize("max_key,expect_dims", [
        (0, 1), (15, 1), (16, 2), (255, 2), (256, 3), (1 << 32, 9),
    ])
    def test_for_key_space(self, max_key, expect_dims):
        pq = MDListPriorityQueue.for_key_space(max_key)
        assert pq.dims == expect_dims
        assert pq.key_limit > max_key
        pq.push(max_key, "edge")
        assert pq.pop_min()[:2] == (max_key, "edge")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MDListPriorityQueue.for_key_space(-1)


class TestSimnetEdges:
    def test_resource_use_releases_on_exception(self, sim):
        from repro.simnet import Resource

        res = Resource(sim, capacity=1)

        def failing():
            try:
                req = res.request()
                yield req
                try:
                    yield sim.timeout(1.0)
                    raise RuntimeError("boom")
                finally:
                    res.release(req)
            except RuntimeError:
                return "handled"

        assert sim.run_process(failing()) == "handled"
        assert res.in_use == 0  # released despite the exception

    def test_lock_holding_releases_on_interrupt(self, sim):
        from repro.simnet import Interrupt, SimLock

        lock = SimLock(sim)

        def holder():
            try:
                yield from lock.holding(100.0)
            except Interrupt:
                return "interrupted"

        def other():
            yield lock.acquire()
            lock.release()
            return "got it"

        h = sim.process(holder())

        def interrupter():
            yield sim.timeout(1.0)
            h.interrupt()

        sim.process(interrupter())
        o = sim.process(other())
        sim.run(until=200.0)
        assert h.result == "interrupted"
        assert o.done and o.result == "got it"  # lock was freed

    def test_store_get_cancel_not_supported_but_harmless(self, sim):
        """A dangling getter simply never fires; the sim drains clean."""
        from repro.simnet import Store

        store = Store(sim)
        ev = store.get()
        sim.run()
        assert not ev.triggered

    def test_priority_resource_use_helper(self, sim):
        from repro.simnet import PriorityResource

        res = PriorityResource(sim, capacity=1)
        order = []

        def worker(name, prio):
            yield from res.use(1.0, priority=prio)
            order.append(name)

        def spawn():
            req = res.request(0)
            yield req
            sim.process(worker("low", 9))
            sim.process(worker("high", 1))
            yield sim.timeout(0.5)
            res.release(req)

        sim.process(spawn())
        sim.run()
        assert order == ["high", "low"]

    def test_gauge_negative_values(self):
        from repro.simnet import Gauge

        g = Gauge("g")
        g.add(-5)
        assert g.value == -5 and g.peak == 0

    def test_event_repr_and_process_repr(self, sim):
        ev = sim.event()
        assert "pending" in repr(ev)

        def body():
            yield sim.timeout(0)

        proc = sim.process(body(), name="p1")
        assert "p1" in repr(proc)
        sim.run()
        assert "done" in repr(proc)
