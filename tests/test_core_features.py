"""Tests for replication, persistence, cost ledger, and runtime plumbing."""

import pytest

from repro.core import HCL
from repro.core.costs import CostLedger
from repro.memory import PersistentLog
from repro.serialization import DataBox
from repro.structures.stats import OpStats


class TestReplication:
    def test_mutations_copied_to_replicas(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, replication=1)

        def body(rank):
            yield from m.insert(rank, f"key-{rank}", rank)

        hcl4.run_ranks(body)
        hcl4.cluster.run()  # drain async replication traffic
        for rank in range(hcl4.spec.total_procs):
            key = f"key-{rank}"
            primary = m.partition_for(key)
            replica = m.partitions[(primary.index + 1) % 4]
            assert primary.structure.find(key)[1], "primary missing"
            assert replica.structure.find(key)[1], "replica missing"

    def test_replication_is_asynchronous(self, hcl4):
        """The caller does not wait for replicas: time ~ non-replicated."""

        def run(replication):
            runtime = HCL(hcl4.spec)
            m = runtime.unordered_map("m", partitions=4,
                                      replication=replication)

            def body(rank):
                for i in range(16):
                    yield from m.insert(rank, (rank, i), i)
                return runtime.now  # time when the *caller* finished

            procs = runtime.run_ranks(body)
            return max(p.result for p in procs)

        t0, t1 = run(0), run(1)
        assert t1 < t0 * 1.6  # replication must not double caller latency

    def test_reads_not_replicated(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, replication=1)

        def body(rank):
            yield from m.find(rank, "nothing")

        hcl4.run_ranks(body)
        hcl4.cluster.run()
        assert all(len(p.structure) == 0 for p in m.partitions)


class TestPersistence:
    def test_operations_logged_and_recoverable(self, small_spec, tmp_path):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        m = hcl.unordered_map("kv", partitions=2, persistence=True)

        def body(rank):
            yield from m.insert(rank, f"k{rank}", rank)

        hcl.run_ranks(body)
        m.close()

        # Replay the logs and rebuild the map contents.
        recovered = {}
        for index in range(2):
            path = tmp_path / f"kv.part{index}.hcl"
            assert path.exists()
            with PersistentLog(str(path)) as log:
                for record in log.records():
                    op, args = DataBox.decode(record.payload).value
                    if op == "insert":
                        key, value = args
                        recovered[key] = value
        assert recovered == {f"k{r}": r for r in range(8)}

    def test_relaxed_mode_skips_foreground_flush(self, small_spec, tmp_path):
        def run(relaxed):
            runtime = HCL(small_spec, persist_dir=str(tmp_path / str(relaxed)))
            m = runtime.unordered_map(
                "kv", partitions=1, nodes=[1],
                persistence=True, relaxed_persistence=relaxed,
            )

            def body(rank):
                for i in range(32):
                    yield from m.insert(rank, (rank, i), i)

            runtime.run_ranks(body, ranks=range(4))
            t = runtime.now
            m.close()
            return t

        assert run(relaxed=True) < run(relaxed=False)

    def test_queue_persistence(self, small_spec, tmp_path):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        q = hcl.queue("wq", persistence=True)

        def body(rank):
            yield from q.push(rank, rank)

        hcl.run_ranks(body)
        q.close()
        with PersistentLog(str(tmp_path / "wq.part0.hcl")) as log:
            ops = [DataBox.decode(r.payload).value[0] for r in log.records()]
        assert ops == ["push"] * 8


class TestCostLedger:
    def test_record_and_average(self):
        ledger = CostLedger()
        ledger.record("insert", OpStats(local_ops=3, writes=1, cas_ops=1),
                      remote=True)
        ledger.record("insert", OpStats(local_ops=5, writes=1), remote=False)
        row = ledger.per_op("insert")
        assert row["count"] == 2
        assert row["F"] == 0.5
        assert row["L"] == 4.0
        assert row["W"] == 1.0

    def test_resize_counted_as_n_reads_writes(self):
        ledger = CostLedger()
        ledger.record("resize", OpStats(resized=True, resize_entries=10),
                      remote=True)
        row = ledger.per_op("resize")
        assert row["R"] == 10 and row["W"] == 10

    def test_unknown_op_empty(self):
        assert CostLedger().per_op("nope")["count"] == 0

    def test_table1_shape_unordered_map(self, hcl):
        """Table I: insert = F + L + W with O(1) L; find = F + L + R."""
        m = hcl.unordered_map("m", partitions=1, nodes=[1],
                              initial_buckets=4096)

        def body(rank):
            for i in range(50):
                yield from m.insert(rank, (rank, i), i)
            for i in range(50):
                yield from m.find(rank, (rank, i))

        hcl.run_ranks(body, ranks=range(4))
        ins = m.ledger.per_op("insert")
        fnd = m.ledger.per_op("find")
        assert ins["F"] == 1.0 and fnd["F"] == 1.0  # ONE remote invocation
        assert ins["W"] >= 1.0 and fnd["W"] == 0.0
        assert fnd["R"] >= 1.0
        assert ins["L"] <= 8  # constant-ish, not O(n)

    def test_table1_shape_ordered_map_log_growth(self, hcl):
        """Ordered map L grows ~log N (Table I row 2)."""
        m = hcl.map("om", partitions=1, nodes=[1],
                    partitioner=lambda k, n: 0)

        def burst(base, count):
            def body(rank):
                for i in range(count):
                    yield from m.insert(rank, base + rank * count + i, i)
            return body

        hcl.run_ranks(burst(0, 32), ranks=range(1))
        small = m.ledger.per_op("insert")["L"]
        hcl.run_ranks(burst(10_000, 512), ranks=range(1))
        big = m.ledger.per_op("insert")["L"]
        # L/op grows, but sublinearly (log 544/log 32 ~ 1.8, not 17x).
        assert small < big < small * 6


class TestRuntime:
    def test_client_cached(self, hcl):
        assert hcl.client(0) is hcl.client(0)

    def test_run_ranks_propagates_failures(self, hcl):
        def body(rank):
            yield hcl.sim.timeout(0.0)
            if rank == 3:
                raise RuntimeError("rank 3 died")

        with pytest.raises(RuntimeError, match="rank 3 died"):
            hcl.run_ranks(body)

    def test_partition_placement_round_robin(self, hcl4):
        m = hcl4.unordered_map("m", partitions=8)
        assert [p.node_id for p in m.partitions] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_explicit_placement(self, hcl4):
        m = hcl4.unordered_map("m", partitions=2, nodes=[2, 2])
        assert [p.node_id for p in m.partitions] == [2, 2]

    def test_placement_length_validated(self, hcl4):
        with pytest.raises(ValueError):
            hcl4.unordered_map("m", partitions=3, nodes=[0])

    def test_container_registry(self, hcl):
        m = hcl.unordered_map("kv")
        assert hcl.containers["kv"] is m

    def test_close_releases_segments(self, small_spec):
        runtime = HCL(small_spec)
        runtime.unordered_map("m", partitions=2)
        used_before = runtime.cluster.node(0).memory_used.value
        runtime.close()
        assert runtime.cluster.node(0).memory_used.value < used_before
