"""Property-based tests (hypothesis) on core invariants.

Each property pins an invariant the paper's machinery depends on:
allocator coverage, codec round-trips, structure/reference equivalence,
FIFO and priority ordering, persistence recoverability.
"""

import heapq

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memory import Allocator, AllocationError, PersistentLog
from repro.serialization.msgpack_like import pack, unpack
from repro.structures import (
    CuckooHash,
    MDListPriorityQueue,
    OptimisticQueue,
    RedBlackTree,
)

# -- strategies ----------------------------------------------------------------

json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**64 - 1)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)

key_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "find", "remove"]),
        st.integers(min_value=0, max_value=200),
    ),
    max_size=300,
)


class TestMsgpackProperties:
    @given(json_like)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, value):
        assert unpack(pack(value)) == value

    @given(st.integers())
    @settings(max_examples=100, deadline=None)
    def test_any_integer_roundtrips(self, value):
        assert unpack(pack(value)) == value

    @given(st.lists(st.integers(0, 255), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_encoding(self, values):
        assert pack(values) == pack(list(values))


class TestAllocatorProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "free", "realloc"]),
                      st.integers(1, 400)),
            max_size=120,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants_under_random_ops(self, ops):
        a = Allocator(4096)
        live = []
        for kind, size in ops:
            if kind == "alloc":
                try:
                    live.append(a.alloc(size))
                except AllocationError:
                    pass
            elif kind == "free" and live:
                a.free(live.pop(size % len(live)))
            elif kind == "realloc" and live:
                off = live[size % len(live)]
                a.realloc(off, size)  # None result is fine; must not corrupt
            a.check_invariants()

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_free_all_restores_capacity(self, sizes):
        a = Allocator(8192)
        offs = []
        for s in sizes:
            try:
                offs.append(a.alloc(s))
            except AllocationError:
                break
        for off in offs:
            a.free(off)
        assert a.free_bytes == 8192
        assert a.fragmentation == 0.0


class TestCuckooProperties:
    @given(key_ops)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_equivalent_to_dict(self, ops):
        c = CuckooHash(initial_buckets=16)
        ref = {}
        for kind, key in ops:
            if kind == "insert":
                new, _ = c.insert(key, key * 7)
                assert new == (key not in ref)
                ref[key] = key * 7
            elif kind == "find":
                value, found, _ = c.find(key)
                assert found == (key in ref)
                if found:
                    assert value == ref[key]
            else:
                ok, _ = c.remove(key)
                assert ok == (key in ref)
                ref.pop(key, None)
        assert dict(c.items()) == ref
        c.check_invariants()


class TestRBTreeProperties:
    @given(key_ops)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_equivalent_to_dict_sorted(self, ops):
        t = RedBlackTree()
        ref = {}
        for kind, key in ops:
            if kind == "insert":
                t.insert(key, str(key))
                ref[key] = str(key)
            elif kind == "find":
                assert t.find(key)[1] == (key in ref)
            else:
                assert t.remove(key)[0] == (key in ref)
                ref.pop(key, None)
        assert list(t.items()) == sorted(ref.items())
        t.check_invariants()


class TestQueueProperties:
    @given(st.lists(st.integers(), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_preserved(self, values):
        q = OptimisticQueue()
        for v in values:
            q.push(v)
        out = [q.pop()[0] for _ in range(len(values))]
        assert out == values
        assert q.empty

    @given(st.lists(st.booleans(), min_size=1, max_size=100),
           st.lists(st.integers(), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_matches_list(self, pops, pushes):
        from collections import deque

        q = OptimisticQueue()
        ref = deque()
        pi = iter(pushes)
        for do_pop in pops:
            if do_pop and ref:
                value, _ = q.pop()
                assert value == ref.popleft()
            else:
                v = next(pi, None)
                if v is None:
                    break
                q.push(v)
                ref.append(v)
        assert list(q.snapshot()) == list(ref)


class TestMDListProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 4095)),
                    max_size=200))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_equivalent_to_heap(self, ops):
        pq = MDListPriorityQueue(dims=4, base=8)
        ref = []
        counter = 0
        for do_pop, key in ops:
            if do_pop and ref:
                assert pq.pop_min()[:2] == heapq.heappop(ref)
            else:
                heapq.heappush(ref, (key, counter))
                pq.push(key, counter)
                counter += 1
        while ref:
            assert pq.pop_min()[:2] == heapq.heappop(ref)
        pq.check_invariants()

    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_items_always_sorted(self, keys):
        pq = MDListPriorityQueue(dims=4, base=8)
        for k in keys:
            pq.push(k, None)
        assert [k for k, _v in pq.items()] == sorted(keys)


class TestPersistentLogProperties:
    @given(st.lists(st.binary(min_size=0, max_size=200), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_all_records_recoverable(self, payloads):
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "x.hcl")
            with PersistentLog(path) as log:
                for p in payloads:
                    log.append(p)
            with PersistentLog(path) as log:
                assert [r.payload for r in log.records()] == payloads
