"""Tests for the extension features: collectives, range queries, dynamic
partitions, concurrency control, and failure handling with replica reads."""

import pytest

from repro.core import HCL, Collectives


class TestCollectives:
    def test_barrier_synchronizes(self, hcl):
        coll = Collectives(hcl)
        arrivals = []

        def body(rank):
            yield hcl.sim.timeout(rank * 1e-6)
            yield from coll.barrier(rank)
            arrivals.append(hcl.now)

        hcl.run_ranks(body)
        assert len(set(arrivals)) == 1  # everyone released together

    def test_broadcast(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            value = yield from coll.broadcast(
                rank, value={"cfg": 1} if rank == 0 else None, root=0
            )
            got[rank] = value

        hcl.run_ranks(body)
        assert all(v == {"cfg": 1} for v in got.values())

    def test_gather_root_only(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.gather(rank, rank * 10, root=2)

        hcl.run_ranks(body)
        assert got[2] == [r * 10 for r in range(8)]
        assert all(got[r] is None for r in range(8) if r != 2)

    def test_all_gather_ordered(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.all_gather(rank, chr(ord("a") + rank))

        hcl.run_ranks(body)
        expected = [chr(ord("a") + r) for r in range(8)]
        assert all(v == expected for v in got.values())

    def test_scatter(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.scatter(
                rank, values=list(range(100, 108)) if rank == 0 else None
            )

        hcl.run_ranks(body)
        assert got == {r: 100 + r for r in range(8)}

    def test_scatter_validates_length(self, hcl):
        coll = Collectives(hcl)

        def body(rank):
            yield from coll.scatter(rank, values=[1] if rank == 0 else None)

        with pytest.raises(ValueError):
            hcl.run_ranks(body)

    def test_reduce_sums_server_side(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.reduce(rank, rank + 1, root=0)

        hcl.run_ranks(body)
        assert got[0] == sum(range(1, 9))
        assert got[1] is None

    def test_all_reduce(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.all_reduce(rank, 2.5)

        hcl.run_ranks(body)
        assert all(v == pytest.approx(20.0) for v in got.values())

    def test_collectives_reusable_across_rounds(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            first = yield from coll.all_reduce(rank, 1)
            second = yield from coll.all_reduce(rank, 10)
            got[rank] = (first, second)

        hcl.run_ranks(body)
        assert all(v == (8, 80) for v in got.values())


class TestRangeQueries:
    @pytest.fixture
    def filled(self, hcl):
        om = hcl.map("om", partitions=2)

        def body(rank):
            for i in range(10):
                yield from om.insert(rank, rank * 100 + i, f"v{rank}.{i}")

        hcl.run_ranks(body)
        return om

    def test_range_find_sorted_and_bounded(self, hcl, filled, drive):
        def body():
            return (yield from filled.range_find(0, 100, 302))

        items = drive(hcl, body())
        keys = [k for k, _v in items]
        assert keys == sorted(keys)
        assert all(100 <= k < 302 for k in keys)
        assert len(keys) == 22  # ranks 1,2 fully + rank 3 keys 300,301

    def test_range_find_limit(self, hcl, filled, drive):
        def body():
            return (yield from filled.range_find(0, 0, 10_000, limit=5))

        items = drive(hcl, body())
        assert [k for k, _v in items] == [0, 1, 2, 3, 4]

    def test_min_max_keys(self, hcl, filled, drive):
        def body():
            mn = yield from filled.min_key(0)
            mx = yield from filled.max_key(0)
            return mn, mx

        assert drive(hcl, body()) == (0, 709)

    def test_empty_container(self, hcl, drive):
        om = hcl.map("empty", partitions=2)

        def body():
            items = yield from om.range_find(0, 0, 100)
            mn = yield from om.min_key(0)
            return items, mn

        assert drive(hcl, body()) == ([], None)

    def test_custom_comparator_ordering(self, hcl, drive):
        om = hcl.map("rev", partitions=1, less=lambda a, b: a > b)

        def body():
            for k in (1, 5, 3):
                yield from om.insert(0, k, k)
            return (yield from om.range_find(0, 5, 0))  # reversed bounds

        items = drive(hcl, body())
        # Under the reversed comparator [5, 0) means 5 >= k > 0, descending.
        assert [k for k, _v in items] == [5, 3, 1]


class TestDynamicPartitions:
    def test_add_partition_migrates_and_preserves(self, hcl4):
        m = hcl4.unordered_map("m", partitions=2)

        def write(rank):
            for i in range(8):
                yield from m.insert(rank, (rank, i), i)

        hcl4.run_ranks(write)
        entries = m.total_entries()

        def grow(rank):
            return (yield from m.add_partition(rank, node_id=3))

        proc = hcl4.cluster.spawn(grow(0))
        hcl4.cluster.run()
        moved = proc.result
        assert len(m.partitions) == 3
        assert m.total_entries() == entries
        assert moved > 0  # some keys rehash to the new partition
        assert len(m.partitions[2].structure) > 0

        def readback(rank):
            for r in range(hcl4.spec.total_procs):
                for i in range(8):
                    value, found = yield from m.find(rank, (r, i))
                    assert found and value == i

        proc = hcl4.cluster.spawn(readback(1))
        hcl4.cluster.run()
        proc.result

    def test_remove_partition_rehomes_entries(self, hcl4):
        m = hcl4.unordered_map("m", partitions=3)

        def write(rank):
            for i in range(6):
                yield from m.insert(rank, (rank, i), i)

        hcl4.run_ranks(write)
        entries = m.total_entries()

        def shrink(rank):
            return (yield from m.remove_partition(rank, 1))

        proc = hcl4.cluster.spawn(shrink(0))
        hcl4.cluster.run()
        proc.result
        assert len(m.partitions) == 2
        assert m.total_entries() == entries
        assert [p.index for p in m.partitions] == [0, 1]

    def test_remove_last_partition_rejected(self, hcl4):
        m = hcl4.unordered_map("m", partitions=1)
        with pytest.raises(ValueError):
            next(m.remove_partition(0, 0))

    def test_set_add_partition(self, hcl4):
        s = hcl4.unordered_set("s", partitions=2)

        def write(rank):
            yield from s.insert(rank, rank)

        hcl4.run_ranks(write)

        def grow(rank):
            yield from s.add_partition(rank, node_id=0)

        proc = hcl4.cluster.spawn(grow(0))
        hcl4.cluster.run()
        proc.result
        assert s.total_entries() == hcl4.spec.total_procs


class TestConcurrencyControl:
    def test_invalid_level_rejected(self, hcl):
        with pytest.raises(ValueError):
            hcl.unordered_map("m", concurrency="optimistic")

    def test_mutex_mode_correct(self, hcl):
        m = hcl.unordered_map("m", concurrency="mutex")

        def body(rank):
            yield from m.upsert(rank, "ctr", 1)

        hcl.run_ranks(body)

        def read(rank):
            return (yield from m.find(rank, "ctr"))

        proc = hcl.cluster.spawn(read(0))
        hcl.cluster.run()
        assert proc.result == (8, True)

    def test_mutex_slower_under_contention(self, small_spec):
        def run(concurrency):
            hcl = HCL(small_spec)
            m = hcl.unordered_map("m", partitions=1, nodes=[1],
                                  concurrency=concurrency,
                                  initial_buckets=4096)

            def body(rank):
                futures = [m.insert_async(rank, (rank, i), i)
                           for i in range(32)]
                for fut in futures:
                    yield fut.wait()

            hcl.run_ranks(body)
            return hcl.now

        assert run("mutex") > run("lockfree")


class TestFailureHandling:
    def test_rpc_to_dead_node_raises(self, hcl):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])
        hcl.cluster.node(1).fail()

        def body(rank):
            yield from m.insert(rank, "k", 1)

        with pytest.raises(ConnectionError):
            hcl.run_ranks(body, ranks=range(1))  # rank 0 is on node 0

    def test_replica_serves_reads_after_primary_failure(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, replication=1)

        def write(rank):
            yield from m.insert(rank, f"k{rank}", rank)

        hcl4.run_ranks(write)
        hcl4.cluster.run()  # drain replication

        primary = m.partition_for("k5")
        hcl4.cluster.node(primary.node_id).fail()
        reader = next(r for r in range(16)
                      if hcl4.cluster.node_of_rank(r) != primary.node_id)

        def read(rank):
            return (yield from m.find(rank, "k5"))

        proc = hcl4.cluster.spawn(read(reader))
        hcl4.cluster.run()
        assert tuple(proc.result) == (5, True)

    def test_writes_still_fail_without_primary(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, replication=1)
        part = m.partition_for("key")
        hcl4.cluster.node(part.node_id).fail()
        writer = next(r for r in range(16)
                      if hcl4.cluster.node_of_rank(r) != part.node_id)

        def write(rank):
            yield from m.insert(rank, "key", 1)

        proc = hcl4.cluster.spawn(write(writer))
        hcl4.cluster.run()
        with pytest.raises(ConnectionError):
            proc.result

    def test_unreplicated_reads_fail(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, replication=0)
        part = m.partition_for("key")
        hcl4.cluster.node(part.node_id).fail()
        reader = next(r for r in range(16)
                      if hcl4.cluster.node_of_rank(r) != part.node_id)

        def read(rank):
            yield from m.find(rank, "key")

        proc = hcl4.cluster.spawn(read(reader))
        hcl4.cluster.run()
        with pytest.raises(ConnectionError):
            proc.result

    def test_recovery_restores_service(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4)
        part = m.partition_for("key")
        node = hcl4.cluster.node(part.node_id)
        node.fail()
        node.recover()
        writer = 0

        def write(rank):
            yield from m.insert(rank, "key", "v")
            return (yield from m.find(rank, "key"))

        proc = hcl4.cluster.spawn(write(writer))
        hcl4.cluster.run()
        assert tuple(proc.result) == ("v", True)
