"""Smoke tests: every shipped example runs clean as a subprocess.

The examples are the library's front door; each must execute end to end
(they contain their own assertions) with status 0 and produce the output
their docstrings promise.
"""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{name} failed (exit {proc.returncode}):\n{proc.stderr[-2000:]}"
    )
    return proc.stdout


class TestExamples:
    def test_all_examples_present(self):
        present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
        expected = {
            "quickstart.py", "genome_assembly.py", "distributed_sort.py",
            "persistent_kv_store.py", "async_and_callbacks.py",
            "task_scheduler.py", "halo_exchange.py",
            "graph_traversal.py",
        }
        assert expected <= present

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ranks finished" in out
        assert "op-count accumulated by upsert: 16" in out

    def test_genome_assembly(self):
        out = run_example("genome_assembly.py")
        assert "both exact" in out
        assert "speedup" in out

    def test_distributed_sort(self):
        out = run_example("distributed_sort.py")
        assert out.count("True") >= 3  # all scales verified

    def test_persistent_kv_store(self):
        out = run_example("persistent_kv_store.py")
        assert "recovered" in out and "CRC" in out

    def test_async_and_callbacks(self):
        out = run_example("async_and_callbacks.py")
        assert "1 invocation(s)" in out
        assert "moved the function" in out

    def test_task_scheduler(self):
        out = run_example("task_scheduler.py")
        assert "verified" in out and "priority" in out

    def test_halo_exchange(self):
        out = run_example("halo_exchange.py")
        assert "max |distributed - reference|" in out

    def test_graph_traversal(self):
        out = run_example("graph_traversal.py")
        assert "verified against networkx" in out and "speedup" in out
