"""Container-level pipelined async API and the self-tuning coalescer.

``async_insert``/``async_find``/``async_rmw`` return per-op futures that
ride the write-combining buffers (including same-node partitions), so a
storm issues without yielding per op; results are bit-identical to the
synchronous path.  ``aggregation="auto"`` derives the flush threshold from
observed flush efficiency instead of a hand-tuned knob.
"""

from __future__ import annotations

import pytest

from repro.apps import run_kmer_counting, synthesize_genome
from repro.config import ares_like
from repro.core import HCL
from repro.obs import metrics_snapshot
from repro.obs.registry import registry_of
from repro.rpc.coalesce import AUTO_FLOOR, AUTO_INITIAL


def _contents(m) -> dict:
    return {k: v for part in m.partitions for k, v in part.structure.items()}


class TestAsyncHashOps:
    def test_async_insert_find_rmw_round_trip(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=8)

        def body(rank):
            if rank != 0:
                return None
            futs = [m.async_insert(rank, i, i * 10) for i in range(12)]
            # flush: ordering across op kinds is guaranteed at sync points
            yield from m.flush(rank)
            futs += [m.async_rmw(rank, i, 5) for i in range(12)]
            yield from m.flush(rank)
            for fut in futs:
                if not fut.done:
                    yield fut.wait()
                _ = fut.result
            reads = [m.async_find(rank, i) for i in range(12)]
            yield from m.flush(rank)
            out = []
            for fut in reads:
                if not fut.done:
                    yield fut.wait()
                out.append(fut.result)
            return out

        found = h.run_ranks(body)[0].result
        assert [v for v, ok in found] == [i * 10 + 5 for i in range(12)]
        assert all(ok for _v, ok in found)
        h.close()

    def test_async_rmw_future_value_is_per_op(self, small_spec):
        """Each rider settles with ITS slot of the batch result."""
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=64)

        def body(rank):
            if rank != 0:
                return None
            futs = [m.async_rmw(rank, "k", 1) for _ in range(6)]
            yield from m.flush(rank)
            for fut in futs:
                if not fut.done:
                    yield fut.wait()
            return [f.result for f in futs]

        assert h.run_ranks(body)[0].result == [1, 2, 3, 4, 5, 6]
        h.close()

    def test_async_matches_sync_results(self, small_spec):
        def run(use_async):
            h = HCL(small_spec)
            m = h.unordered_map("t", partitions=2, aggregation=8)

            def body(rank):
                for i in range(30):
                    if use_async:
                        m.async_rmw(rank, i % 11, 1)
                        # generator protocol needs at least one yield
                        if False:
                            yield
                    else:
                        yield from m.upsert_buffered(rank, i % 11, 1)
                yield from m.flush(rank)

            h.run_ranks(body)
            out = _contents(m)
            h.close()
            return out

        assert run(True) == run(False)

    def test_failed_flush_fails_every_rider(self, small_spec):
        """A flush whose batch handler raises fails ALL its riders."""
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=8)
        seen = []

        def body(rank):
            if rank != 0:
                return None
            yield from m.insert(rank, "k", 1)
            # int + str raises inside the partition's upsert handler
            futs = [m.async_rmw(rank, "k", "boom") for _ in range(4)]
            try:
                yield from m.flush(rank)
            except Exception as err:  # noqa: BLE001
                seen.append(err)
            for fut in futs:
                assert fut.done and not fut.ok
            return True

        assert h.run_ranks(body)[0].result is True
        assert seen, "failed batch should surface at the flush sync point"
        h.close()

    def test_ordered_map_async_ops(self, small_spec):
        h = HCL(small_spec)
        m = h.map("om", partitions=2, aggregation=8)

        def body(rank):
            if rank != 0:
                return None
            futs = [m.async_insert(rank, i, -i) for i in range(8)]
            yield from m.flush(rank)
            for fut in futs:
                if not fut.done:
                    yield fut.wait()
                _ = fut.result
            reads = [m.async_find(rank, i) for i in range(8)]
            done = []
            for fut in reads:
                if not fut.done:
                    yield fut.wait()
                done.append(fut.result)
            return done

        found = h.run_ranks(body)[0].result
        assert [v for v, ok in found] == [-i for i in range(8)]
        h.close()

    def test_async_without_coalescer_still_works(self, small_spec):
        """aggregation=0: pipelined ops degrade to plain async execution."""
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=0)

        def body(rank):
            if rank != 0:
                return None
            futs = [m.async_rmw(rank, i % 3, 1) for i in range(9)]
            for fut in futs:
                if not fut.done:
                    yield fut.wait()
                _ = fut.result
            return True

        assert h.run_ranks(body)[0].result is True
        assert sum(_contents(m).values()) == 9
        h.close()


class TestAutoTunedCoalescer:
    def test_dense_storm_grows_threshold(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation="auto")

        def body(rank):
            for i in range(600):
                m.async_rmw(rank, i % 251, 1)
                if False:
                    yield
            yield from m.flush(rank)

        h.run_ranks(body)
        report = m.aggregation_report()["aggregation"]
        assert report["auto"] is True
        assert report["auto_threshold"] > AUTO_INITIAL
        h.close()

    def test_sparse_traffic_shrinks_toward_floor(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation="auto")
        coal = m._coalescer
        coal.max_ops = 64  # pretend a dense phase grew it

        def body(rank):
            for i in range(40):
                yield from m.upsert_buffered(rank, i, 1)
                yield from m.flush(rank)  # drain-dominated: 1 op per flush

        h.run_ranks(body)
        assert coal.max_ops < 64
        assert coal.max_ops >= AUTO_FLOOR
        h.close()

    def test_static_knob_is_not_auto(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation=16)

        def body(rank):
            for i in range(600):
                m.async_rmw(rank, i % 251, 1)
                if False:
                    yield
            yield from m.flush(rank)

        h.run_ranks(body)
        report = m.aggregation_report()["aggregation"]
        assert "auto" not in report
        assert m._coalescer.max_ops == 16  # static override never adapts
        h.close()

    def test_auto_gauges_exported(self, small_spec):
        h = HCL(small_spec)
        m = h.unordered_map("t", partitions=2, aggregation="auto")

        def body(rank):
            for i in range(600):
                m.async_rmw(rank, i % 251, 1)
                if False:
                    yield
            yield from m.flush(rank)

        h.run_ranks(body)
        metrics = registry_of(h.sim)
        assert (metrics.gauge("coalesce/auto_threshold").value
                == m._coalescer.max_ops)
        assert (metrics.gauge("t/auto_threshold").value
                == m._coalescer.max_ops)
        h.close()


class TestKmerSyncAsyncIdentity:
    def test_digests_identical_across_api(self):
        data = synthesize_genome(genome_length=600, num_reads=48,
                                 read_length=60, k=15, seed=3)
        spec = ares_like(nodes=2, procs_per_node=2)
        sync = run_kmer_counting("hcl", spec, data, aggregation=512)
        spec = ares_like(nodes=2, procs_per_node=2)
        asyn = run_kmer_counting("hcl", spec, data, async_api=True,
                                 window=True)
        assert sync.verified and asyn.verified
        assert sync.digest == asyn.digest
        assert sync.total_kmers == asyn.total_kmers
        assert asyn.agg_report["aggregation"]["auto"] is True

    def test_async_defaults_to_auto_aggregation(self):
        data = synthesize_genome(genome_length=300, num_reads=12,
                                 read_length=60, k=15, seed=3)
        spec = ares_like(nodes=2, procs_per_node=2)
        res = run_kmer_counting("hcl", spec, data, async_api=True)
        assert res.agg_report["aggregation"]["auto"] is True


class TestAdaptiveMetricsVisibility:
    def test_window_stalls_and_auto_threshold_in_snapshot(self):
        """Satellite: both adaptive-state series must be visible in the
        ``--metrics-out`` snapshot of a windowed async run."""
        data = synthesize_genome(genome_length=600, num_reads=48,
                                 read_length=60, k=15, seed=3)
        spec = ares_like(nodes=3, procs_per_node=2)
        box = {}
        res = run_kmer_counting(
            "hcl", spec, data, async_api=True, window=True,
            instrument=lambda h: box.setdefault("sim", h.sim),
        )
        assert res.verified
        snap = metrics_snapshot(registry_of(box["sim"]))
        assert "rpc/window_stalls" in snap
        assert "coalesce/auto_threshold" in snap
        assert any(k.startswith("rpc/cwnd/") for k in snap)


class TestPipelineWithWindows:
    def test_windows_do_not_change_results(self, small_spec):
        def run(window):
            h = HCL(small_spec, window=window)
            m = h.unordered_map("t", partitions=2, aggregation=8)

            def body(rank):
                for i in range(40):
                    m.async_rmw(rank, i % 13, 1)
                    if False:
                        yield
                yield from m.flush(rank)

            h.run_ranks(body)
            out = _contents(m)
            h.close()
            return out

        assert run(None) == run(True)

    def test_window_false_means_off(self, small_spec):
        h = HCL(small_spec, window=False)
        assert all(c.windows is None for c in h._clients.values())
        h.close()

    def test_window_true_arms_every_client(self, small_spec):
        h = HCL(small_spec, window=True)
        assert all(c.windows is not None for c in h._clients.values())
        h.close()


class TestRejections:
    def test_auto_string_other_than_auto_rejected(self, small_spec):
        h = HCL(small_spec)
        with pytest.raises((ValueError, TypeError)):
            h.unordered_map("t", partitions=2, aggregation="adaptive")
        h.close()
