"""Tests for the red-black tree."""

import random

import pytest

from repro.structures import RedBlackTree


class TestBasics:
    def test_insert_find(self):
        t = RedBlackTree()
        new, stats = t.insert(5, "five")
        assert new and stats.writes == 1
        value, found, fstats = t.find(5)
        assert found and value == "five"
        assert fstats.local_ops >= 1

    def test_overwrite(self):
        t = RedBlackTree()
        t.insert(5, "a")
        new, _ = t.insert(5, "b")
        assert not new
        assert t.find(5)[0] == "b"
        assert len(t) == 1

    def test_remove(self):
        t = RedBlackTree()
        for k in (5, 3, 8):
            t.insert(k, k)
        ok, _ = t.remove(3)
        assert ok and len(t) == 2
        assert not t.find(3)[1]
        assert not t.remove(99)[0]
        t.check_invariants()

    def test_min_max(self):
        t = RedBlackTree()
        assert t.min_key() is None and t.max_key() is None
        for k in (5, 1, 9, 3):
            t.insert(k, k)
        assert t.min_key() == 1 and t.max_key() == 9

    def test_sorted_iteration(self):
        t = RedBlackTree()
        keys = [7, 3, 9, 1, 5, 8, 2]
        for k in keys:
            t.insert(k, str(k))
        assert [k for k, _v in t.items()] == sorted(keys)

    def test_range_items(self):
        t = RedBlackTree()
        for k in range(20):
            t.insert(k, k)
        assert [k for k, _v in t.range_items(5, 10)] == [5, 6, 7, 8, 9]

    def test_contains(self):
        t = RedBlackTree()
        t.insert("x", 1)
        assert t.contains("x")[0]
        assert not t.contains("y")[0]


class TestBalance:
    def test_sequential_insert_stays_logarithmic(self):
        """Sorted insertion is the classic BST worst case; RB must balance."""
        t = RedBlackTree()
        for k in range(1024):
            t.insert(k, k)
        t.check_invariants()
        _v, _f, stats = t.find(1023)
        # Height of an RB tree with n=1024 is <= 2*log2(n+1) = 20.
        assert stats.local_ops <= 20

    def test_rotations_counted(self):
        t = RedBlackTree()
        for k in range(100):
            t.insert(k, k)
        assert t.rotations_total > 0

    def test_find_cost_grows_logarithmically(self):
        """The L·log(N) of Table I."""
        t = RedBlackTree()
        costs = {}
        for n in (64, 4096):
            while len(t) < n:
                t.insert(len(t), None)
            total = 0
            for k in range(0, n, max(1, n // 64)):
                _v, _f, stats = t.find(k)
                total += stats.local_ops
            costs[n] = total / (n / max(1, n // 64))
        # 64x more entries must cost ~log ratio (~2x), far below linear (64x).
        assert costs[4096] <= costs[64] * 4

    @pytest.mark.parametrize("seed", [0, 1])
    def test_invariants_under_churn(self, seed):
        rng = random.Random(seed)
        t = RedBlackTree()
        ref = {}
        for i in range(3000):
            op = rng.random()
            k = rng.randrange(700)
            if op < 0.55:
                new, _ = t.insert(k, k)
                assert new == (k not in ref)
                ref[k] = k
            elif op < 0.8:
                assert t.find(k)[1] == (k in ref)
            else:
                assert t.remove(k)[0] == (k in ref)
                ref.pop(k, None)
            if i % 500 == 499:
                t.check_invariants()
        t.check_invariants()
        assert list(t.items()) == sorted(ref.items())


class TestComparators:
    def test_custom_less_reverses_order(self):
        """The std::less override of Section III-D2."""
        t = RedBlackTree(less=lambda a, b: a > b)
        for k in (3, 1, 2):
            t.insert(k, k)
        assert [k for k, _v in t.items()] == [3, 2, 1]
        assert t.find(2)[1]
        t.check_invariants()

    def test_tuple_keys(self):
        t = RedBlackTree()
        t.insert((1, "b"), 1)
        t.insert((1, "a"), 2)
        t.insert((0, "z"), 3)
        assert [k for k, _v in t.items()] == [(0, "z"), (1, "a"), (1, "b")]

    def test_string_keys(self):
        t = RedBlackTree()
        for s in ("pear", "apple", "mango"):
            t.insert(s, s)
        assert t.min_key() == "apple" and t.max_key() == "pear"


class TestDeletion:
    def test_delete_all_in_varied_orders(self):
        for order in (list(range(64)), list(range(63, -1, -1))):
            t = RedBlackTree()
            for k in range(64):
                t.insert(k, k)
            for k in order:
                assert t.remove(k)[0]
            assert len(t) == 0
            t.check_invariants()

    def test_delete_root_repeatedly(self):
        t = RedBlackTree()
        for k in range(32):
            t.insert(k, k)
        while len(t):
            root_key = t._root.key
            assert t.remove(root_key)[0]
            t.check_invariants()
