"""Tests for point-to-point rank messaging (the mpi4py-flavoured Comm)."""

import pytest

from repro.core.p2p import ANY_SOURCE, ANY_TAG, Comm


@pytest.fixture
def comm(hcl):
    return Comm(hcl)


class TestSendRecv:
    def test_basic_roundtrip(self, hcl, comm):
        got = {}

        def body(rank):
            if rank == 0:
                yield from comm.send({"a": 7, "b": 3.14}, dest=1, tag=11,
                                     rank=0)
            elif rank == 1:
                got["data"] = yield from comm.recv(source=0, tag=11, rank=1)
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)
        assert got["data"] == {"a": 7, "b": 3.14}

    def test_recv_before_send_blocks(self, hcl, comm):
        times = {}

        def receiver(rank):
            payload = yield from comm.recv(rank=5)
            times["recv_done"] = hcl.now
            return payload

        def sender(rank):
            yield hcl.sim.timeout(50e-6)
            yield from comm.send("late", dest=5, rank=0)

        procs = [hcl.cluster.spawn(receiver(5)), hcl.cluster.spawn(sender(0))]
        hcl.cluster.run()
        assert procs[0].result == "late"
        assert times["recv_done"] >= 50e-6

    def test_tag_matching(self, hcl, comm):
        order = []

        def receiver(rank):
            b = yield from comm.recv(source=0, tag=2, rank=1)
            order.append(b)
            a = yield from comm.recv(source=0, tag=1, rank=1)
            order.append(a)

        def sender(rank):
            yield from comm.send("tag1", dest=1, tag=1, rank=0)
            yield from comm.send("tag2", dest=1, tag=2, rank=0)

        hcl.cluster.spawn(receiver(1))
        hcl.cluster.spawn(sender(0))
        hcl.cluster.run()
        assert order == ["tag2", "tag1"]  # matched by tag, not arrival

    def test_any_source_any_tag(self, hcl, comm):
        got = []

        def receiver(rank):
            for _ in range(3):
                payload, src, tag = yield from comm.recv_with_status(
                    source=ANY_SOURCE, tag=ANY_TAG, rank=7
                )
                got.append((src, tag, payload))

        def sender(rank):
            yield from comm.send(f"msg{rank}", dest=7, tag=rank, rank=rank)

        hcl.cluster.spawn(receiver(7))
        for r in (0, 3, 5):
            hcl.cluster.spawn(sender(r))
        hcl.cluster.run()
        assert sorted(got) == [(0, 0, "msg0"), (3, 3, "msg3"), (5, 5, "msg5")]

    def test_local_send_uses_shared_memory(self, hcl, comm):
        """Same-node ranks exchange without any network packets."""
        before = hcl.cluster.total_packets()

        def body(rank):
            if rank == 0:
                yield from comm.send("hi", dest=1, rank=0)  # ranks 0,1: node 0
            elif rank == 1:
                yield from comm.recv(source=0, rank=1)
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)
        assert hcl.cluster.total_packets() == before
        assert comm.local_deliveries.value == 1

    def test_remote_send_crosses_fabric(self, hcl, comm):
        before = hcl.cluster.total_packets()

        def body(rank):
            if rank == 0:
                yield from comm.send("hi", dest=6, rank=0)  # node 0 -> node 1
            elif rank == 6:
                yield from comm.recv(source=0, rank=6)
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)
        assert hcl.cluster.total_packets() > before

    def test_validation(self, hcl, comm):
        with pytest.raises(ValueError):
            next(comm.send("x", dest=999, rank=0))
        with pytest.raises(ValueError):
            next(comm.send("x", dest=1))  # missing rank
        with pytest.raises(ValueError):
            next(comm.recv(source=0))


class TestPatterns:
    def test_ring_pass(self, hcl, comm):
        """Token circulates rank 0 -> 1 -> ... -> 7 -> 0."""
        n = hcl.spec.total_procs
        final = {}

        def body(rank):
            if rank == 0:
                yield from comm.send(["r0"], dest=1, rank=0)
                token = yield from comm.recv(source=n - 1, rank=0)
                final["token"] = token
            else:
                token = yield from comm.recv(source=rank - 1, rank=rank)
                token.append(f"r{rank}")
                yield from comm.send(token, dest=(rank + 1) % n, rank=rank)

        hcl.run_ranks(body)
        assert final["token"] == [f"r{i}" for i in range(n)]

    def test_sendrecv_exchange(self, hcl, comm):
        got = {}

        def body(rank):
            if rank in (0, 1):
                partner = 1 - rank
                got[rank] = yield from comm.sendrecv(
                    f"from{rank}", dest=partner, source=partner, rank=rank
                )
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)
        assert got == {0: "from1", 1: "from0"}

    def test_isend_overlaps(self, hcl, comm):
        def body(rank):
            if rank == 0:
                handles = [comm.isend(i, dest=4, tag=i, rank=0)
                           for i in range(4)]
                for h in handles:
                    yield h
            elif rank == 4:
                values = []
                for i in range(4):
                    values.append((yield from comm.recv(tag=i, rank=4)))
                assert values == [0, 1, 2, 3]
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)

    def test_probe(self, hcl, comm):
        def body(rank):
            if rank == 0:
                assert not comm.probe(rank=0)
                yield from comm.send("x", dest=0, rank=0)  # self-send
                assert comm.probe(rank=0, source=0)
                payload = yield from comm.recv(rank=0)
                assert payload == "x"
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)
