"""Tests for the mmap-backed persistent log (real file I/O)."""

import os

import pytest

from repro.memory import CorruptRecordError, PersistentLog


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "container.hcl")


class TestAppendRecover:
    def test_roundtrip(self, log_path):
        with PersistentLog(log_path) as log:
            log.append(b"alpha")
            log.append(b"beta")
        with PersistentLog(log_path) as log:
            assert [r.payload for r in log.records()] == [b"alpha", b"beta"]

    def test_append_after_reopen(self, log_path):
        with PersistentLog(log_path) as log:
            log.append(b"one")
        with PersistentLog(log_path) as log:
            log.append(b"two")
        with PersistentLog(log_path) as log:
            assert [r.payload for r in log.records()] == [b"one", b"two"]

    def test_empty_log(self, log_path):
        with PersistentLog(log_path) as log:
            assert list(log.records()) == []

    def test_large_payload_grows_file(self, log_path):
        blob = os.urandom(3 << 20)  # > initial 1 MiB chunk
        with PersistentLog(log_path) as log:
            log.append(blob)
        with PersistentLog(log_path) as log:
            (rec,) = list(log.records())
            assert rec.payload == blob

    def test_many_records(self, log_path):
        payloads = [f"record-{i}".encode() for i in range(500)]
        with PersistentLog(log_path) as log:
            for p in payloads:
                log.append(p)
            assert log.records_written == 500
        with PersistentLog(log_path) as log:
            assert [r.payload for r in log.records()] == payloads

    def test_payload_type_checked(self, log_path):
        with PersistentLog(log_path) as log:
            with pytest.raises(TypeError):
                log.append("not bytes")

    def test_closed_log_rejects_append(self, log_path):
        log = PersistentLog(log_path)
        log.close()
        with pytest.raises(ValueError):
            log.append(b"x")
        log.close()  # idempotent


class TestDurabilityModes:
    def test_strict_flushes_per_append(self, log_path):
        log = PersistentLog(log_path, relaxed=False)
        log.append(b"a")
        log.append(b"b")
        assert log.flushes == 2
        log.close()

    def test_relaxed_defers_flush(self, log_path):
        log = PersistentLog(log_path, relaxed=True)
        log.append(b"a")
        log.append(b"b")
        assert log.flushes == 0
        log.sync()
        assert log.flushes == 1
        log.close()


class TestCorruption:
    def _corrupt(self, path, offset, value=0xFF):
        with open(path, "r+b") as fh:
            fh.seek(offset)
            fh.write(bytes([value]))

    def test_crc_mismatch_detected(self, log_path):
        with PersistentLog(log_path) as log:
            log.append(b"payload-payload")
        # Flip a payload byte (header is 12 bytes).
        self._corrupt(log_path, 14)
        with PersistentLog(log_path) as log:
            with pytest.raises(CorruptRecordError):
                list(log.records())

    def test_recovery_stops_at_corrupt_tail(self, log_path):
        """Scan-end recovery treats a bad tail as the end of the log."""
        with PersistentLog(log_path) as log:
            log.append(b"good")
            second = log.append(b"bad-record")
        self._corrupt(log_path, second + 13)
        log = PersistentLog(log_path)
        # The corrupt record was discarded; appends go after 'good'.
        log.append(b"new")
        payloads = []
        for rec in log._iter_from(0, stop_on_corrupt=True):
            payloads.append(rec.payload)
        assert payloads == [b"good", b"new"]
        log.close()

    def test_bad_magic_raises(self, log_path):
        with PersistentLog(log_path) as log:
            log.append(b"x")
        self._corrupt(log_path, 0, 0x01)
        with PersistentLog(log_path) as log:
            with pytest.raises(CorruptRecordError):
                list(log.records())


class TestGeometry:
    def test_bytes_used(self, log_path):
        with PersistentLog(log_path) as log:
            assert log.bytes_used == 0
            log.append(b"12345")
            assert log.bytes_used == 12 + 5
