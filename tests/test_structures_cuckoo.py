"""Tests for the lock-free-style cuckoo hash table."""

import random
import threading

import pytest

from repro.structures import CuckooHash


class TestBasics:
    def test_insert_find(self):
        c = CuckooHash()
        new, stats = c.insert("k", 1)
        assert new
        assert stats.writes >= 1 and stats.cas_ops >= 1
        value, found, fstats = c.find("k")
        assert found and value == 1
        assert fstats.reads >= 1

    def test_overwrite_not_new(self):
        c = CuckooHash()
        assert c.insert("k", 1)[0] is True
        assert c.insert("k", 2)[0] is False
        assert c.find("k")[0] == 2
        assert len(c) == 1

    def test_missing_key(self):
        c = CuckooHash()
        value, found, _ = c.find("ghost")
        assert not found and value is None
        assert c.contains("ghost")[0] is False

    def test_remove(self):
        c = CuckooHash()
        c.insert("k", 1)
        ok, _ = c.remove("k")
        assert ok and len(c) == 0
        ok, _ = c.remove("k")
        assert not ok

    def test_default_buckets_paper_value(self):
        """Section III-D1: structures start with 128 buckets."""
        assert CuckooHash().bucket_count == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            CuckooHash(initial_buckets=1)

    def test_find_at_most_two_probes(self):
        """Cuckoo's contract: lookup touches at most 2 slots."""
        c = CuckooHash()
        for i in range(80):
            c.insert(i, i)
        for i in range(80):
            _v, found, stats = c.find(i)
            assert found
            assert stats.reads <= 2


class TestResize:
    def test_load_factor_triggers_doubling(self):
        c = CuckooHash(initial_buckets=16)
        for i in range(13):  # 13/16 > 0.75
            c.insert(i, i)
        assert c.bucket_count > 16
        assert c.resizes >= 1
        for i in range(13):
            assert c.find(i)[1]

    def test_resize_stats_reported(self):
        c = CuckooHash(initial_buckets=16)
        resized = False
        for i in range(40):
            _new, stats = c.insert(i, i)
            resized = resized or stats.resized
        assert resized

    def test_explicit_resize_preserves_content(self):
        from repro.structures.stats import OpStats

        c = CuckooHash()
        for i in range(50):
            c.insert(i, str(i))
        stats = OpStats()
        c._resize(stats)
        assert len(c) == 50
        assert all(c.find(i) == (str(i), True, c.find(i)[2]) or c.find(i)[1]
                   for i in range(50))
        c.check_invariants()

    def test_load_factor_metric(self):
        c = CuckooHash(initial_buckets=128)
        for i in range(32):
            c.insert(i, i)
        assert c.load_factor == pytest.approx(32 / c.bucket_count)


class TestHashOverride:
    def test_custom_hash_changes_distribution(self):
        """The std::hash override of Section III-D1."""
        c = CuckooHash(hash_fn=lambda k: (k * 2654435761) & 0xFFFFFFFF)
        for i in range(60):
            c.insert(i, i)
        assert len(c) == 60
        for i in range(60):
            assert c.find(i)[1]
        c.check_invariants()

    def test_degenerate_hash_fails_loudly(self):
        """A constant hash can never spread keys; resize must not loop."""
        c = CuckooHash(hash_fn=lambda k: 0)
        with pytest.raises(RuntimeError, match="degenerate"):
            for i in range(8):
                c.insert(i, i)

    def test_custom_hash_used_for_placement(self):
        calls = []

        def spy(key):
            calls.append(key)
            return hash(key)

        c = CuckooHash(hash_fn=spy)
        c.insert("x", 1)
        assert "x" in calls


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_dict(self, seed):
        rng = random.Random(seed)
        c = CuckooHash()
        ref = {}
        for _ in range(4000):
            op = rng.random()
            key = rng.randrange(1200)
            if op < 0.6:
                new, _ = c.insert(key, key * 3)
                assert new == (key not in ref)
                ref[key] = key * 3
            elif op < 0.9:
                value, found, _ = c.find(key)
                assert found == (key in ref)
                if found:
                    assert value == ref[key]
            else:
                ok, _ = c.remove(key)
                assert ok == (key in ref)
                ref.pop(key, None)
        assert len(c) == len(ref)
        assert dict(c.items()) == ref
        assert set(c.keys()) == set(ref)
        c.check_invariants()

    def test_eviction_cycle_does_not_lose_keys(self):
        """Regression: a kick chain that cycles back onto the fresh key."""
        c = CuckooHash(initial_buckets=4)
        ref = {}
        for i in range(200):
            c.insert(i, i)
            ref[i] = i
        assert dict(c.items()) == ref


class TestConcurrency:
    def test_parallel_inserts_disjoint_keys(self):
        c = CuckooHash(initial_buckets=4096)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    c.insert(base + i, base + i)
            except Exception as err:  # noqa: BLE001
                errors.append(err)

        threads = [threading.Thread(target=worker, args=(t * 1000,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) == 800
        for t in range(4):
            for i in range(200):
                assert c.find(t * 1000 + i)[1]
