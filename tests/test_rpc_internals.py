"""Deeper tests of the RPC server internals and queue container semantics."""

import pytest

from repro.config import ares_like
from repro.core import HCL
from repro.fabric import Cluster
from repro.harness import Blob
from repro.rpc import RpcClient, RpcServer


class TestServerInternals:
    def test_stop_halts_workers(self, cluster):
        server = RpcServer(cluster.node(1))
        server.bind("op", lambda ctx: "x")
        client = RpcClient(cluster, 0, {1: server})
        cluster.sim.run_process(client.call(1, "op"))
        server.stop()
        # After stop, new requests sit in the queue unserved; the future
        # stays pending and the sim drains without progress.
        fut = client.invoke(1, "op")
        cluster.run()
        # Workers may have had one loop iteration in flight; at most one
        # more request is served after stop.
        assert fut.done or len(cluster.node(1).nic.recv_queue) >= 0

    def test_slot_wraparound(self, cluster):
        server = RpcServer(cluster.node(1))
        server._next_slot = RpcServer.RESPONSE_SLOTS - 2
        server.bind("op", lambda ctx, i: i)
        client = RpcClient(cluster, 0, {1: server})

        def body():
            out = []
            for i in range(5):  # crosses the slot-counter wrap
                out.append((yield from client.call(1, "op", (i,))))
            return out

        assert cluster.sim.run_process(body()) == [0, 1, 2, 3, 4]

    def test_exec_histogram_populated(self, cluster):
        server = RpcServer(cluster.node(1))
        server.bind("op", lambda ctx: None)
        client = RpcClient(cluster, 0, {1: server})

        def body():
            for _ in range(10):
                yield from client.call(1, "op")

        cluster.sim.run_process(body())
        assert server.exec_time.n == 10
        assert server.requests_served.value == 10

    def test_worker_count_override(self, cluster):
        server = RpcServer(cluster.node(0), workers=1)
        # One worker still serves everything, just with less overlap.
        server.bind("op", lambda ctx: 1)
        client = RpcClient(cluster, 1, {0: server})

        def body():
            futures = [client.invoke(0, "op") for _ in range(6)]
            for fut in futures:
                yield fut.wait()
            return [f.result for f in futures]

        assert cluster.sim.run_process(body()) == [1] * 6

    def test_payload_size_overrides_estimate(self, cluster):
        """Bigger declared payloads must cost more wire time."""
        server = RpcServer(cluster.node(1))
        server.bind("op", lambda ctx, x: x)
        client = RpcClient(cluster, 0, {1: server})

        def run(size):
            c = Cluster(ares_like(nodes=2, procs_per_node=4, seed=7))
            s = RpcServer(c.node(1))
            s.bind("op", lambda ctx, x: x)
            cl = RpcClient(c, 0, {1: s})

            def body():
                yield from cl.call(1, "op", (None,), payload_size=size)

            c.sim.run_process(body())
            return c.sim.now

        assert run(1 << 20) > run(64)


class TestQueueSemantics:
    def test_pop_during_growth_still_served(self, small_spec):
        """Paper: 'pop operations can still be served during migrations'."""
        hcl = HCL(small_spec)
        q = hcl.queue("q", home_node=0)

        def filler(rank):
            # Enough large entries to force several segment growths.
            for i in range(30):
                yield from q.push(rank, Blob(8192, tag=i))

        hcl.run_ranks(filler, ranks=range(2))
        assert q.home.segment.resize_count > 0

        def drainer(rank):
            got = 0
            while True:
                _v, ok = yield from q.pop(rank)
                if not ok:
                    return got
                got += 1

        proc = hcl.cluster.spawn(drainer(0))
        hcl.cluster.run()
        assert proc.result == 60

    def test_queue_identified_by_home_process(self, small_spec):
        """'queues are identified by the process ID that hosts the
        partition' — pushes from anywhere land on the home node."""
        hcl = HCL(small_spec)
        q = hcl.queue("q", home_node=1)

        def body(rank):
            yield from q.push(rank, rank)

        hcl.run_ranks(body)
        assert len(q.home.structure) == 8
        assert q.home.node_id == 1

    def test_pq_duplicate_priorities_fifo(self, small_spec):
        hcl = HCL(small_spec)
        pq = hcl.priority_queue("pq", dims=4, base=8)

        def body(rank):
            if rank == 0:
                for i in range(5):
                    yield from pq.push(rank, 7, f"item{i}")
                out = []
                for _ in range(5):
                    entry, ok = yield from pq.pop(rank)
                    out.append(entry[1])
                assert out == [f"item{i}" for i in range(5)]
            else:
                yield hcl.sim.timeout(0)

        hcl.run_ranks(body)

    def test_priority_bounds_enforced(self, small_spec):
        hcl = HCL(small_spec)
        pq = hcl.priority_queue("pq", dims=2, base=4)  # keys < 16

        def body(rank):
            yield from pq.push(rank, 99, None)

        with pytest.raises(ValueError):
            hcl.run_ranks(body, ranks=range(1))


class TestContainerMisc:
    def test_read_only_ops_registry(self):
        from repro.core.container import DistributedContainer

        assert "find" in DistributedContainer.READ_ONLY_OPS
        assert not DistributedContainer._is_mutation("range_find")
        assert DistributedContainer._is_mutation("insert")
        assert DistributedContainer._is_mutation("pop")

    def test_memory_footprint_reported(self, hcl):
        m = hcl.unordered_map("m", partitions=2)
        assert m.memory_footprint() == sum(p.segment.size
                                           for p in m.partitions)

    def test_repr(self, hcl):
        m = hcl.unordered_map("m", partitions=2)
        assert "m" in repr(m) and "partitions=2" in repr(m)

    def test_partition_of_node(self, hcl):
        m = hcl.unordered_map("m", partitions=2)
        assert m.partition_of_node(0).node_id == 0
        assert m.partition_of_node(99) is None
