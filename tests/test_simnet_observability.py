"""Tests for RNG streams, tracing, and statistics primitives."""

import math

import pytest

from repro.simnet import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    RngRegistry,
    Sampler,
    TimeSeries,
    UtilizationMeter,
    summarize,
)


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=5).stream("x").integers(0, 1000, 10)
        b = RngRegistry(seed=5).stream("x").integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_different_names_independent(self):
        reg = RngRegistry(seed=5)
        a = reg.stream("a").integers(0, 1000, 10)
        b = reg.stream("b").integers(0, 1000, 10)
        assert list(a) != list(b)

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(seed=9)
        r1.stream("first")
        x1 = r1.stream("target").integers(0, 1 << 30, 5)
        r2 = RngRegistry(seed=9)
        x2 = r2.stream("target").integers(0, 1 << 30, 5)
        assert list(x1) == list(x2)

    def test_stream_cached(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("s") is reg.stream("s")
        assert "s" in reg

    def test_fork_changes_streams(self):
        reg = RngRegistry(seed=3)
        forked = reg.fork(salt=1)
        a = reg.stream("w").integers(0, 1 << 30, 5)
        b = forked.stream("w").integers(0, 1 << 30, 5)
        assert list(a) != list(b)


class TestTimeSeries:
    def test_reductions(self):
        ts = TimeSeries("t")
        for t, v in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            ts.record(t, v)
        assert len(ts) == 3
        assert ts.mean() == pytest.approx(2.0)
        assert ts.max() == 3.0
        assert ts.last() == 2.0
        assert ts.rows() == [(0, 1.0), (1, 3.0), (2, 2.0)]

    def test_rate_series(self):
        ts = TimeSeries("cum")
        for t, v in [(0, 0), (1, 100), (2, 300)]:
            ts.record(t, v)
        rate = ts.rate_series()
        assert rate.values == [100.0, 200.0]

    def test_empty(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0 and ts.max() == 0.0 and ts.last() == 0.0


class TestSampler:
    def test_periodic_sampling(self, sim):
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("clock", lambda: sim.now)
        sampler.start()
        sim.timeout(5.0)
        sim.run(until=5.0)
        sampler.stop()
        assert clock.values[:5] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_interval_validation(self, sim):
        with pytest.raises(ValueError):
            Sampler(sim, interval=0)

    def test_sample_once(self, sim):
        sampler = Sampler(sim, interval=1.0)
        series = sampler.add_probe("x", lambda: 42.0)
        sampler.sample_once()
        assert series.values == [42.0]


class TestEventLog:
    def test_log_and_filter(self, sim):
        log = EventLog(sim)
        log.log("send", {"size": 10})
        log.log("recv", {"size": 10})
        log.log("send", {"size": 20})
        assert log.count("send") == 2
        assert len(log) == 3
        assert [p["size"] for _t, p in log.of_kind("send")] == [10, 20]

    def test_limit_drops(self, sim):
        log = EventLog(sim, limit=2)
        for i in range(5):
            log.log("x", i)
        assert len(log) == 2
        assert log.dropped == 3


class TestCounters:
    def test_counter(self):
        c = Counter("c")
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.add(-1)
        c.reset()
        assert c.value == 0

    def test_gauge_peak(self):
        g = Gauge("g", value=5.0)
        g.add(3.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.peak == 8.0


class TestUtilizationMeter:
    def test_utilization(self):
        m = UtilizationMeter(capacity=2)
        m.begin(0.0)
        m.begin(0.0)
        m.end(5.0)
        m.end(5.0)
        assert m.utilization(10.0) == pytest.approx(0.5)

    def test_end_without_begin(self):
        m = UtilizationMeter()
        with pytest.raises(ValueError):
            m.end(1.0)

    def test_busy_servers(self):
        m = UtilizationMeter(capacity=3)
        m.begin(0.0)
        m.begin(1.0)
        assert m.busy_servers() == 2


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        assert h.n == 4
        assert h.mean() == pytest.approx(3.75)
        assert h.min == 1.0 and h.max == 8.0

    def test_quantile_monotone(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.99)

    def test_zero_values(self):
        h = Histogram()
        h.observe(0.0)
        assert h.quantile(0.5) == 0.0

    def test_negative_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_empty_quantile(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_extreme_quantiles_exact(self):
        h = Histogram()
        for v in (3.0, 5.0, 11.0, 100.0):
            h.observe(v)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 100.0

    def test_single_bucket_clamped(self):
        # 5.0 lands in bucket [4, 8); the raw upper-edge estimate would be
        # 8.0 — the clamp must return a value actually observed.
        h = Histogram()
        h.observe(5.0)
        assert h.quantile(0.5) == 5.0

    def test_single_value_all_quantiles(self):
        h = Histogram()
        h.observe(7.0)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.quantile(q) == 7.0

    def test_percentiles_keys(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        p = h.percentiles()
        assert set(p) == {"p50", "p90", "p99"}
        assert p["p50"] <= p["p90"] <= p["p99"]
        custom = h.percentiles(qs=(0.0, 1.0))
        assert custom == {"p0": 1.0, "p100": 100.0}


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["mean"] == pytest.approx(2.5)
        assert s["median"] == pytest.approx(2.5)
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["stdev"] == pytest.approx(math.sqrt(1.25))

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0

    def test_empty(self):
        assert summarize([])["n"] == 0
