"""Tests for the rendezvous (HRW) first-level hashing."""

from collections import Counter

import pytest

from repro.core.container import Partition
from repro.memory.segment import MemorySegment
from repro.structures.cuckoo import CuckooHash


@pytest.fixture
def container(hcl4):
    return hcl4.unordered_map("m", partitions=4)


def _extra_partition(hcl, container, uid):
    seg = MemorySegment(hcl.cluster.node(0), 65536, name=f"extra{uid}")
    return Partition(len(container.partitions), 0, CuckooHash(), seg, uid=uid)


class TestRendezvousHashing:
    def test_uniform_distribution(self, container):
        counts = Counter(
            container.partition_for(k).index for k in range(20_000)
        )
        assert len(counts) == 4
        for n in counts.values():
            assert 0.8 * 5000 < n < 1.2 * 5000

    def test_deterministic(self, container):
        for k in ("a", 17, (3, "b")):
            assert container.partition_for(k) is container.partition_for(k)

    def test_minimal_disruption_on_growth(self, hcl4, container):
        before = {k: container.partition_for(k).uid for k in range(5000)}
        container.partitions.append(_extra_partition(hcl4, container, uid=4))
        after = {k: container.partition_for(k).uid for k in range(5000)}
        moved = sum(1 for k in before if before[k] != after[k])
        # Expected 1/5 move; modulo hashing would move ~3/4.
        assert 0.12 * 5000 < moved < 0.30 * 5000
        # Every moved key lands on the NEW partition, nowhere else.
        for k in before:
            if before[k] != after[k]:
                assert after[k] == 4

    def test_removal_only_scatters_victims_keys(self, hcl4, container):
        before = {k: container.partition_for(k).uid for k in range(5000)}
        victim_uid = container.partitions[2].uid
        del container.partitions[2]
        after = {k: container.partition_for(k).uid for k in range(5000)}
        for k in before:
            if before[k] == victim_uid:
                assert after[k] != victim_uid
            else:
                assert after[k] == before[k]  # survivors keep their keys

    def test_uid_stability_after_remove(self, hcl4):
        m = hcl4.unordered_map("m", partitions=3)

        def write(rank):
            for i in range(10):
                yield from m.insert(rank, (rank, i), i)

        hcl4.run_ranks(write)

        def shrink(rank):
            yield from m.remove_partition(rank, 1)

        proc = hcl4.cluster.spawn(shrink(0))
        hcl4.cluster.run()
        proc.result
        # Surviving partitions keep their ORIGINAL uids (indices compact).
        assert [p.index for p in m.partitions] == [0, 1]
        assert [p.uid for p in m.partitions] == [0, 2]
        # All data still reachable through the new layout.

        def readback(rank):
            for r in range(hcl4.spec.total_procs):
                for i in range(10):
                    _v, found = yield from m.find(rank, (r, i))
                    assert found

        proc = hcl4.cluster.spawn(readback(0))
        hcl4.cluster.run()
        proc.result

    def test_grow_then_shrink_roundtrip(self, hcl4):
        m = hcl4.unordered_map("m", partitions=2)

        def write(rank):
            for i in range(12):
                yield from m.insert(rank, (rank, i), i * 5)

        hcl4.run_ranks(write)
        entries = m.total_entries()

        def churn(rank):
            yield from m.add_partition(rank, node_id=2)
            yield from m.add_partition(rank, node_id=3)
            yield from m.remove_partition(rank, 2)

        proc = hcl4.cluster.spawn(churn(0))
        hcl4.cluster.run()
        proc.result
        assert m.total_entries() == entries
        assert len(m.partitions) == 3

        def readback(rank):
            for r in range(hcl4.spec.total_procs):
                for i in range(12):
                    value, found = yield from m.find(rank, (r, i))
                    assert found and value == i * 5

        proc = hcl4.cluster.spawn(readback(0))
        hcl4.cluster.run()
        proc.result

    def test_constant_hash_collapses_to_one_partition(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4, hash_fn=lambda k: 7)
        assert len({m.partition_for(k).index for k in range(100)}) == 1

    def test_score_is_64bit_mixed(self):
        from repro.core.hash_container import _HashContainerBase

        scores = {
            _HashContainerBase._hrw_score(h, uid)
            for h in range(100) for uid in range(4)
        }
        assert len(scores) == 400  # no collisions in a tiny sample
