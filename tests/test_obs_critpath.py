"""Tests for the trace critical-path analyzer.

The acceptance invariant: per-trace stage attributions sum exactly to
the measured end-to-end latency (residual 0 on fair-weather traces),
checked both on synthetic span records and on a real traced workload.
"""

import json

import pytest

from repro.config import ares_like
from repro.harness.aggbench import _run_app
from repro.obs import (
    critpath_analyze,
    install_tracer,
    load_spans,
    span_record,
    tracer_of,
    write_span_jsonl,
)
from repro.obs.critpath import STAGE_ORDER


def _rec(span_id, name, start, end, parent=None, trace=1, node=0,
         attrs=None):
    return {
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "node": node,
        "start": start,
        "end": end,
        "dur": end - start,
        "attrs": attrs or {},
    }


def _synthetic_trace(trace=1, base=0.0, dst=1, stream=None, scale=1.0):
    """One fair-weather RPC: marshal 1, send 2, wait 4 (queue 1 +
    execute 2 + transport 1), pull 2, settle 1 — e2e 10 (x ``scale``)."""
    s = scale
    t = base
    root_id = trace * 100
    attrs = {"dst": dst}
    if stream is not None:
        attrs["stream"] = stream
    spans = [_rec(root_id, "rpc.put", t, t + 10 * s, trace=trace,
                  attrs=attrs)]
    stages = [("client.marshal", 1), ("client.send", 2), ("server.wait", 4),
              ("client.pull", 2), ("client.settle", 1)]
    cursor = t
    for i, (name, dur) in enumerate(stages):
        spans.append(_rec(root_id + 1 + i, name, cursor, cursor + dur * s,
                          parent=root_id, trace=trace))
        cursor += dur * s
    wait_start = t + 3 * s
    spans.append(_rec(root_id + 10, "server.queue", wait_start,
                      wait_start + 1 * s, parent=root_id, trace=trace,
                      node=dst))
    spans.append(_rec(root_id + 11, "server.execute", wait_start + 1 * s,
                      wait_start + 3 * s, parent=root_id, trace=trace,
                      node=dst))
    return spans


class TestSyntheticBreakdown:
    def test_stage_attribution_sums_to_e2e(self):
        result = critpath_analyze(_synthetic_trace())
        assert result["traces"] == 1
        assert result["tiling_max_residual"] == 0.0
        overall = result["overall"]
        assert overall["e2e_total"] == pytest.approx(10.0)
        by_stage = {s["stage"]: s["total"] for s in overall["stages"]}
        assert by_stage == pytest.approx({
            "client.marshal": 1.0, "client.send": 2.0, "server.queue": 1.0,
            "server.execute": 2.0, "transport": 1.0, "client.pull": 2.0,
            "client.settle": 1.0,
        })
        assert sum(by_stage.values()) == pytest.approx(10.0)

    def test_shares_sum_to_one(self):
        result = critpath_analyze(_synthetic_trace())
        shares = [s["share"] for s in result["overall"]["stages"]]
        assert sum(shares) == pytest.approx(1.0)

    def test_groups_by_dst_and_stream(self):
        spans = (_synthetic_trace(trace=1, dst=1, stream=0)
                 + _synthetic_trace(trace=2, base=20.0, dst=1, stream=0)
                 + _synthetic_trace(trace=3, base=40.0, dst=2, stream=1,
                                    scale=3.0))
        result = critpath_analyze(spans)
        assert result["traces"] == 3
        groups = result["groups"]
        assert len(groups) == 2
        # Heaviest (dst 2, e2e 30) first.
        assert groups[0]["dst"] == 2 and groups[0]["stream"] == 1
        assert groups[0]["e2e_total"] == pytest.approx(30.0)
        assert groups[1]["n"] == 2
        assert groups[0]["dominant_stage"] in STAGE_ORDER

    def test_slow_tail_table(self):
        spans = []
        for i in range(10):
            scale = 5.0 if i == 9 else 1.0
            spans += _synthetic_trace(trace=i + 1, base=i * 100.0,
                                      scale=scale)
        result = critpath_analyze(spans, slow_quantile=0.9)
        slow = result["slow"]
        assert slow["threshold"] == pytest.approx(50.0)
        assert slow["n"] == 1  # only the x5 trace is in the tail
        assert slow["e2e_total"] == pytest.approx(50.0)

    def test_top_traces_ranked_by_latency(self):
        spans = (_synthetic_trace(trace=1) +
                 _synthetic_trace(trace=2, base=20.0, scale=2.0))
        result = critpath_analyze(spans, top_n=1)
        top = result["top_traces"]
        assert len(top) == 1
        assert top[0]["trace_id"] == 2
        assert top[0]["e2e"] == pytest.approx(20.0)

    def test_nested_server_spans_scaled_when_overreported(self):
        """queue+execute longer than the wait interval get clamped."""
        spans = _synthetic_trace()
        for rec in spans:
            if rec["name"] in ("server.queue", "server.execute"):
                rec["end"] = rec["start"] + 10.0  # absurd: 10 each in wait 4
                rec["dur"] = 10.0
        result = critpath_analyze(spans)
        assert result["clamped"] == 1
        by_stage = {s["stage"]: s["total"]
                    for s in result["overall"]["stages"]}
        assert by_stage["server.queue"] + by_stage["server.execute"] == (
            pytest.approx(4.0))  # scaled into the wait interval
        assert by_stage["transport"] == pytest.approx(0.0)
        # Tiling still exact after clamping.
        assert result["overall"]["e2e_total"] == pytest.approx(10.0)
        assert sum(by_stage.values()) == pytest.approx(10.0)

    def test_empty_source(self):
        result = critpath_analyze([])
        assert result["traces"] == 0
        assert result["groups"] == [] and result["top_traces"] == []

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            critpath_analyze([], slow_quantile=1.0)


class TestRealTraces:
    @pytest.fixture(scope="class")
    def traced(self):
        box = {}

        def instrument(hcl):
            box["sim"] = hcl.sim
            install_tracer(hcl.sim)

        spec = ares_like(nodes=2, procs_per_node=2)
        _ops, _sim_s, verified, _agg = _run_app("kmer", spec, 0.25, 0,
                                                instrument)
        assert verified
        return tracer_of(box["sim"])

    def test_tiling_residual_zero_on_real_run(self, traced):
        result = critpath_analyze(traced)
        assert result["traces"] > 10
        assert result["skipped"] == 0
        assert result["tiling_max_residual"] == pytest.approx(0.0, abs=1e-12)
        # Stage totals reconstruct the summed e2e latency exactly.
        overall = result["overall"]
        assert sum(s["total"] for s in overall["stages"]) == pytest.approx(
            overall["e2e_total"], rel=1e-9)

    def test_jsonl_roundtrip_matches_tracer_analysis(self, traced, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_span_jsonl(traced.spans, path)
        from_file = critpath_analyze(load_spans(path))
        direct = critpath_analyze(traced)
        assert json.dumps(from_file, sort_keys=True) == json.dumps(
            direct, sort_keys=True)

    def test_span_record_source_accepted(self, traced):
        records = [span_record(s) for s in traced.spans]
        result = critpath_analyze(records)
        assert result["traces"] == critpath_analyze(traced)["traces"]
