"""Tests for the Zipfian serving harness and admission-control shedding."""

from __future__ import annotations

import math

import pytest

from repro.config import ares_like
from repro.fabric import Cluster
from repro.harness.serving import (
    ZipfKeyGenerator,
    check_serving,
    emit_serving_json,
    render_serving,
    run_serving,
)
from repro.rpc import RpcClient, RpcServer, ServerOverloaded
from repro.rpc.server import RpcRequest


class TestZipfKeyGenerator:
    def test_seeded_reproducibility(self):
        a = ZipfKeyGenerator(256, 0.99, seed=11, tenant=3)
        b = ZipfKeyGenerator(256, 0.99, seed=11, tenant=3)
        assert [a.sample() for _ in range(500)] == \
               [b.sample() for _ in range(500)]

    def test_seed_and_tenant_change_the_stream(self):
        base = ZipfKeyGenerator(256, 0.99, seed=11, tenant=0)
        other_seed = ZipfKeyGenerator(256, 0.99, seed=12, tenant=0)
        other_tenant = ZipfKeyGenerator(256, 0.99, seed=11, tenant=1)
        ranks = [base.sample_rank() for _ in range(200)]
        assert ranks != [other_seed.sample_rank() for _ in range(200)]
        # Tenant keys live in disjoint namespaces even for equal ranks.
        assert base.key_at(0).startswith("t0:k")
        assert other_tenant.key_at(0).startswith("t1:k")

    def test_rank_id_shuffle_is_a_permutation(self):
        gen = ZipfKeyGenerator(128, 0.5, seed=4, tenant=2)
        ids = {gen.key_at(r) for r in range(128)}
        assert len(ids) == 128

    def test_rank_frequency_slope_tracks_theta(self):
        """log(freq) vs log(rank) must fall with slope ~ -theta."""
        theta = 0.9
        gen = ZipfKeyGenerator(512, theta, seed=7)
        counts = [0] * 512
        for _ in range(60_000):
            counts[gen.sample_rank()] += 1
        xs, ys = [], []
        for rank in range(20):  # top ranks: thousands of hits each
            assert counts[rank] > 0
            xs.append(math.log(rank + 1))
            ys.append(math.log(counts[rank]))
        n = len(xs)
        mx, my = sum(xs) / n, sum(ys) / n
        slope = (sum((x - mx) * (y - my) for x, y in zip(xs, ys))
                 / sum((x - mx) ** 2 for x in xs))
        assert slope == pytest.approx(-theta, abs=0.15)

    def test_theta_zero_is_uniform(self):
        gen = ZipfKeyGenerator(64, 0.0, seed=9)
        counts = [0] * 64
        for _ in range(32_000):
            counts[gen.sample_rank()] += 1
        assert min(counts) > 0
        assert max(counts) / min(counts) < 1.6

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyGenerator(0, 0.99, seed=1)
        with pytest.raises(ValueError):
            ZipfKeyGenerator(8, -0.1, seed=1)


@pytest.fixture
def shed_rig(small_spec):
    """2-node cluster; node 1 serves with ONE worker and queue_bound=2.

    One worker makes the shed boundary exact: the first request is held in
    execution (off the queue), the next ``bound`` wait in the receive
    queue, and the request after that must be shed.
    """
    cluster = Cluster(small_spec)
    servers = {
        0: RpcServer(cluster.node(0)),
        1: RpcServer(cluster.node(1), workers=1, queue_bound=2),
    }
    client = RpcClient(cluster, 0, servers)

    def slow(ctx, duration):
        yield ctx.sim.timeout(duration)
        return "done"

    servers[1].bind("slow", slow)
    return cluster, servers, client


class TestLoadShedding:
    def test_queue_exactly_full_boundary(self, shed_rig):
        """bound+worker in-flight ops are admitted; exactly one more sheds."""
        cluster, servers, client = shed_rig
        futs = [client.invoke(1, "slow", (1e-3,)) for _ in range(4)]
        cluster.run()
        ok = [f for f in futs if f._event.ok]
        failed = [f for f in futs if not f._event.ok]
        assert len(ok) == 3 and len(failed) == 1
        err = failed[0]._event.value
        assert isinstance(err, ServerOverloaded)
        assert err.bound == 2
        assert err.depth == 2  # shed while the queue held exactly `bound`
        assert err.dst_node == 1
        assert servers[1].shed.value == 1
        assert client.shed_seen.value == 1

    def test_shed_is_retriable_not_node_down(self, shed_rig):
        from repro.fabric.node import NodeDownError

        cluster, _servers, client = shed_rig
        futs = [client.invoke(1, "slow", (1e-3,)) for _ in range(4)]
        cluster.run()
        err = next(f._event.value for f in futs if not f._event.ok)
        # ServerOverloaded must NOT trigger container failover paths.
        assert not isinstance(err, NodeDownError)

    def test_shed_then_retry_succeeds(self, shed_rig):
        cluster, servers, client = shed_rig
        futs = [client.invoke(1, "slow", (1e-3,)) for _ in range(4)]
        cluster.run()  # burst settles; queue drains fully
        assert sum(1 for f in futs if not f._event.ok) == 1
        retry = client.invoke(1, "slow", (1e-3,))
        cluster.run()
        assert retry.result == "done"
        assert servers[1].shed.value == 1  # the retry was not shed

    def test_idempotency_token_preserved_across_shed(self, shed_rig):
        """A shed op leaves no dedup residue: the same-token retry executes
        fresh exactly once, and only then is the token replay-protected."""
        cluster, servers, client = shed_rig
        calls = []
        servers[1].bind("record", lambda ctx, x: calls.append(x) or len(calls))
        token = client.next_token()
        fill = [client.invoke(1, "slow", (1e-3,)) for _ in range(3)]
        box = {}

        def late_record():
            # Smaller requests marshal faster; delay so the record op
            # arrives after every fill (but well inside the 1ms handler).
            yield cluster.sim.timeout(5e-5)
            box["fut"] = client.invoke(1, "record", ("a",), token=token)

        cluster.spawn(late_record())
        cluster.run()
        shed_fut = box["fut"]
        assert all(f._event.ok for f in fill)
        assert isinstance(shed_fut._event.value, ServerOverloaded)
        assert token not in servers[1]._dedup  # no residue from the shed
        assert calls == []  # handler never ran

        retry = client.invoke(1, "record", ("a",), token=token)
        cluster.run()
        assert retry.result == 1
        assert calls == ["a"]
        assert token in servers[1]._dedup  # now replay-protected

        dup = client.invoke(1, "record", ("a",), token=token)
        cluster.run()
        assert dup.result == 1  # replayed envelope, not a re-execution
        assert calls == ["a"]
        assert servers[1].duplicates_suppressed.value == 1

    def test_unbounded_server_hook_stamps_but_never_sheds(self, small_spec):
        # The admission hook is always installed now (it stamps arrival
        # times for the queue-wait histogram), but with no queue_bound it
        # must admit everything.
        cluster = Cluster(small_spec)
        server = RpcServer(cluster.node(0))
        assert server.queue_bound is None
        assert cluster.node(0).nic.admission is not None

        class _Msg:
            payload = RpcRequest("op", (), 0, 0)

        assert cluster.node(0).nic.admit(_Msg()) is True
        assert _Msg.payload.arrived_at == cluster.sim.now
        assert server.shed.value == 0

    def test_queue_bound_validation(self, small_spec):
        cluster = Cluster(small_spec)
        with pytest.raises(ValueError):
            RpcServer(cluster.node(1), queue_bound=0)


TINY = dict(nodes=2, procs_per_node=2, clients=40, tenants=2, theta=0.9,
            keys=64, queue_frac=0.5, queue_home="packed", rate=50_000.0,
            ops_per_client=10.0, seed=5, bounds=(None, 2), shed_retries=1,
            retry_backoff=1e-3, rpc_batch_size=1)


@pytest.fixture(scope="module")
def tiny_report():
    return run_serving(**TINY)


class TestServingReport:
    def test_sanity_checks_pass(self, tiny_report):
        assert check_serving(tiny_report) == []

    def test_accounting_and_structure(self, tiny_report):
        assert tiny_report["clients"] == 40
        assert "cliff" in tiny_report
        for cfg in tiny_report["configs"]:
            assert cfg["issued"] == 400  # clients * ops_per_client
            assert (cfg["completed"] + cfg["shed_gaveup"] + cfg["errors"]
                    == cfg["issued"])
            for key in ("p50", "p95", "p99", "p99.9"):
                assert key in cfg["latency"]
            assert 0.0 < cfg["fairness_jain"] <= 1.0
            assert cfg["hot_key_amplification"] >= 1.0

    def test_bounded_config_sheds_and_unbounded_does_not(self, tiny_report):
        unbounded, bounded = tiny_report["configs"]
        assert unbounded["queue_bound"] is None and unbounded["shed"] == 0
        assert bounded["queue_bound"] == 2 and bounded["shed"] > 0
        assert bounded["shed_seen_by_clients"] == bounded["shed"]

    def test_per_tenant_sections(self, tiny_report):
        for cfg in tiny_report["configs"]:
            assert set(cfg["per_tenant"]) == {"t0", "t1"}
            assert all(s["completed"] > 0
                       for s in cfg["per_tenant"].values())

    def test_render_table(self, tiny_report):
        text = render_serving(tiny_report)
        assert "bound" in text and "p99.9us" in text
        assert "off" in text  # the unbounded row

    def test_same_seed_reports_are_byte_identical(self, tmp_path):
        params = dict(TINY, clients=20, ops_per_client=5.0)
        p1 = tmp_path / "a.json"
        p2 = tmp_path / "b.json"
        emit_serving_json(run_serving(**params), str(p1))
        emit_serving_json(run_serving(**params), str(p2))
        assert p1.read_bytes() == p2.read_bytes()

    def test_check_serving_flags_missing_cliff(self, tiny_report):
        failures = check_serving(tiny_report, require_cliff=True,
                                 cliff_factor=1e9)
        assert any("cliff" in f for f in failures)

    def test_validation(self):
        with pytest.raises(ValueError, match="mix"):
            run_serving(clients=4, mix=(0.9, 0.2, 0.1))
        with pytest.raises(ValueError, match="queue_frac"):
            run_serving(clients=4, queue_frac=1.5)
        with pytest.raises(ValueError, match="queue_home"):
            run_serving(clients=4, queue_home="stacked")
        with pytest.raises(ValueError, match="positive"):
            run_serving(clients=4, rate=0.0)


class TestServingRuntimeWiring:
    def test_hcl_queue_bound_reaches_servers(self):
        from repro.core.runtime import HCL

        spec = ares_like(nodes=2, procs_per_node=2, seed=1)
        h = HCL(spec, rpc_queue_bound=7)
        try:
            assert all(s.queue_bound == 7 for s in h._servers.values())
            assert all(h.cluster.node(n).nic.admission is not None
                       for n in range(2))
        finally:
            h.close()


class TestServingMonitors:
    """Monitors-on runs must keep identical simulated results."""

    @pytest.fixture(scope="class")
    def monitored(self):
        sink = []
        report = run_serving(**TINY, monitors=True, monitors_sink=sink)
        return report, sink

    def test_report_identical_with_monitors_on(self, monitored):
        import json

        report, _sink = monitored
        plain = run_serving(**TINY)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            plain, sort_keys=True)

    def test_sink_holds_one_flight_per_bound(self, monitored):
        _report, sink = monitored
        assert [e["queue_bound"] for e in sink] == list(TINY["bounds"])
        for entry in sink:
            flight = entry["flight"]
            assert flight["kind"] == "flight_recorder"
            assert flight["samples"] > 0
            assert flight["series"]
            assert "skew" in flight and "slo" in flight

    def test_skew_section_covers_all_partitions(self, monitored):
        _report, sink = monitored
        skew = sink[0]["flight"]["skew"]
        assert skew["partitions"] > 0
        assert skew["total_ops"] > 0
        assert skew["keys_offered"] > 0
        assert skew["top_keys"], "Zipf workload must surface hot keys"
        assert skew["imbalance"] >= 1.0

    def test_hot_keys_match_workload_ground_truth(self, monitored):
        """The sketch's #1 key share equals the report's exact
        ``top_key_share`` (computed from full per-key counts)."""
        report, sink = monitored
        skew = sink[0]["flight"]["skew"]
        top = skew["top_keys"][0]
        assert top["error"] == 0  # namespace fits: counts are exact
        assert top["count"] / skew["keys_offered"] == pytest.approx(
            report["configs"][0]["top_key_share"])

    def test_monitor_option_overrides(self):
        sink = []
        run_serving(**TINY, monitors={"interval": 1e-3, "maxlen": 7},
                    monitors_sink=sink)
        flight = sink[0]["flight"]
        assert flight["interval"] == 1e-3
        assert flight["maxlen"] == 7
        assert all(len(s["times"]) <= 7
                   for s in flight["series"].values())

    def test_flight_payload_deterministic(self):
        import json

        def one():
            sink = []
            run_serving(**TINY, monitors=True, monitors_sink=sink)
            return json.dumps([e["flight"] for e in sink], sort_keys=True)

        assert one() == one()
