"""Round-trip tests for the span/trace exporters (repro.obs.exporters).

The span JSON-lines log is the CI determinism leg's diffable artifact,
so re-exporting a loaded log must be byte-stable.  The Chrome trace path
must survive attrs containing quotes, backslashes and non-ASCII text,
and both writers must handle the empty-trace edge cleanly.
"""

from __future__ import annotations

import json

from repro.obs import (
    Span,
    Tracer,
    chrome_trace,
    span_record,
    validate_chrome_trace,
    validate_span_log,
    write_chrome_trace,
    write_span_jsonl,
)


def _make_spans():
    """A small finished trace: one root RPC with two child stages."""
    clock_box = [0.0]
    tracer = Tracer(clock=lambda: clock_box[0])
    root = tracer.begin("rpc.put", node=0, attrs={"op": "put", "bytes": 64})
    clock_box[0] = 0.25
    send = tracer.begin("client.send", parent=root, node=0)
    clock_box[0] = 1.0
    tracer.finish(send)
    wait = tracer.begin("server.wait", parent=root, node=1)
    clock_box[0] = 2.5
    tracer.finish(wait)
    tracer.finish(root)
    return tracer.spans


def _rebuild(record):
    """Reconstruct a Span from one JSON-lines record."""
    span = Span(record["trace_id"], record["span_id"], record["parent_id"],
                record["name"], record["node"], record["start"],
                attrs=record.get("attrs"))
    span.end = record["end"]
    return span


class TestSpanJsonlRoundTrip:
    def test_write_load_rewrite_is_byte_stable(self, tmp_path):
        spans = _make_spans()
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        n = write_span_jsonl(spans, str(first))
        assert n == len(spans)
        assert validate_span_log(str(first)) == []
        rebuilt = [_rebuild(json.loads(line))
                   for line in first.read_text().splitlines()]
        write_span_jsonl(rebuilt, str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_records_keep_stable_key_order(self):
        rec = span_record(_make_spans()[0])
        assert list(rec)[:8] == ["trace_id", "span_id", "parent_id", "name",
                                 "node", "start", "end", "dur"]

    def test_attrs_sorted_and_preserved(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "s.jsonl"
        write_span_jsonl(spans, str(path))
        root = json.loads(path.read_text().splitlines()[0])
        assert list(root["attrs"]) == sorted(root["attrs"])
        assert root["attrs"] == {"bytes": 64, "op": "put"}

    def test_unfinished_spans_are_skipped(self, tmp_path):
        tracer = Tracer(clock=lambda: 0.0)
        open_span = tracer.begin("rpc.get", node=0)
        assert not open_span.finished
        path = tmp_path / "open.jsonl"
        assert write_span_jsonl(tracer.spans, str(path)) == 0
        assert path.read_text() == ""

    def test_validator_flags_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = span_record(_make_spans()[1])
        bad_dur = dict(good, span_id=99, dur=good["dur"] + 1.0)
        orphan = dict(good, span_id=98, parent_id=12345)
        path.write_text("\n".join([
            json.dumps(good), json.dumps(bad_dur), json.dumps(orphan),
            "{not json",
        ]) + "\n")
        errors = validate_span_log(str(path))
        assert any("dur" in e for e in errors)
        assert any("parent_id 12345" in e for e in errors)
        assert any("invalid JSON" in e for e in errors)


class TestChromeTraceEscaping:
    def _spicy_spans(self):
        clock_box = [0.0]
        tracer = Tracer(clock=lambda: clock_box[0])
        span = tracer.begin("rpc.put", node=0, attrs={
            "label": 'he said "hi" \\ then left',
            "unicode": "naïve π — ключ",
            "multiline": "line1\nline2\ttabbed",
        })
        clock_box[0] = 1.0
        tracer.finish(span)
        return tracer.spans

    def test_attrs_survive_json_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._spicy_spans(), str(path))
        assert validate_chrome_trace(str(path)) == []
        doc = json.loads(path.read_bytes().decode("utf-8"))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        args = events[0]["args"]
        assert args["label"] == 'he said "hi" \\ then left'
        assert args["unicode"] == "naïve π — ключ"
        assert args["multiline"] == "line1\nline2\ttabbed"

    def test_units_pids_and_metadata(self):
        events = chrome_trace(_make_spans(), pid_base=100)
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"node0", "node1"}
        assert {e["pid"] for e in complete} == {100, 101}
        root = next(e for e in complete if e["name"] == "rpc.put")
        assert root["cat"] == "rpc"
        assert root["ts"] == 0.0 and root["dur"] == 2.5e6  # microseconds

    def test_nodeless_span_gets_fallback_pid(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.begin("host.phase")
        tracer.finish(span)
        events = chrome_trace(tracer.spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["pid"] == 999
        assert meta[0]["args"]["name"] == "node?"


class TestEmptyTraces:
    def test_empty_span_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_span_jsonl([], str(path)) == 0
        assert validate_span_log(str(path)) == []

    def test_empty_chrome_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        assert write_chrome_trace([], str(path)) == 0
        assert validate_chrome_trace(str(path)) == []
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []
