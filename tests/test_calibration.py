"""Calibration tests: the simulated fabric matches the paper's testbed.

Section IV quotes two independent measurements of Ares that anchor the
cost model; these tests pin them (and the derived fabric behaviours) so a
config change that silently breaks calibration fails loudly.
"""

import pytest

from repro.config import ares_like
from repro.harness.microbench import run_microbench


@pytest.fixture(scope="module")
def report():
    return run_microbench(ares_like(nodes=2, procs_per_node=4))


class TestPaperAnchors:
    def test_stream_matches_paper_65gbs(self, report):
        """'Stream benchmark using 40 threads is roughly 65 GB/sec'."""
        assert 55.0 < report.stream_gbs < 70.0

    def test_osu_bandwidth_matches_paper_4_5gbs(self, report):
        """'approximately 4.5 GB/s as measured by the OSU benchmark'
        (wire-protocol overheads land us slightly below the raw rate)."""
        assert 3.2 < report.bandwidth_gbs < 4.7

    def test_roce_latency_order_of_magnitude(self, report):
        """RoCE-class small-message latencies: single-digit to low tens
        of microseconds."""
        assert 1.0 < report.verb_latency_us < 30.0
        assert report.read_latency_us > report.verb_latency_us

    def test_atomic_slower_than_write(self, report):
        assert report.cas_latency_us > report.verb_latency_us

    def test_rpc_null_latency_costs_more_than_a_verb(self, report):
        """An RPC is send + dispatch + execution + pull: strictly more
        than a raw one-sided op, but same order of magnitude."""
        assert report.rpc_null_latency_us > report.read_latency_us
        assert report.rpc_null_latency_us < 8 * report.read_latency_us

    def test_atomic_rate_bounded_by_region_serialization(self, report):
        """Pipelined CAS to one region serialize on its atomic lock: the
        rate is far below the message rate."""
        assert report.atomic_rate_mops < 0.5 * report.message_rate_mops


class TestProviderOrdering:
    def test_tcp_uniformly_worse_than_roce(self, report):
        tcp = run_microbench(ares_like(nodes=2, procs_per_node=4),
                             provider="tcp")
        assert tcp.verb_latency_us > report.verb_latency_us
        assert tcp.bandwidth_gbs < report.bandwidth_gbs
        assert tcp.rpc_null_latency_us > report.rpc_null_latency_us
        # Node memory is transport-independent.
        assert tcp.stream_gbs == pytest.approx(report.stream_gbs)

    def test_verbs_faster_than_roce(self, report):
        ib = run_microbench(ares_like(nodes=2, procs_per_node=4),
                            provider="verbs")
        assert ib.bandwidth_gbs > report.bandwidth_gbs
        assert ib.verb_latency_us < report.verb_latency_us


class TestFig1Consistency:
    def test_remote_stage_cost_reconstructs_fig1(self):
        """The paper's 0.30 s per remote stage (8192 ops) should emerge
        from the measured per-op latencies within a small factor."""
        report = run_microbench(ares_like(nodes=2, procs_per_node=4))
        # 8192 sequential 4KB-class ops at ~tens of us each, 40 clients
        # sharing the fabric: per-client wall time is in the 0.1-1 s band.
        per_client = 8192 * report.verb_latency_us * 1e-6
        assert 0.05 < per_client < 1.0
