"""Tests for the free-list allocator."""

import pytest

from repro.memory import Allocator, AllocationError


class TestBasics:
    def test_alloc_returns_distinct_offsets(self):
        a = Allocator(1024)
        o1 = a.alloc(100)
        o2 = a.alloc(100)
        assert o1 != o2
        a.check_invariants()

    def test_alignment(self):
        a = Allocator(1024, alignment=16)
        o1 = a.alloc(5)
        o2 = a.alloc(5)
        assert o1 % 16 == 0 and o2 % 16 == 0
        assert o2 - o1 == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            Allocator(0)
        with pytest.raises(ValueError):
            Allocator(1024, alignment=3)
        a = Allocator(1024)
        with pytest.raises(ValueError):
            a.alloc(0)

    def test_exhaustion_raises(self):
        a = Allocator(128)
        a.alloc(128)
        with pytest.raises(AllocationError):
            a.alloc(1)
        assert a.failed_allocs == 1

    def test_free_and_reuse(self):
        a = Allocator(128)
        off = a.alloc(128)
        a.free(off)
        assert a.alloc(128) == off

    def test_double_free_raises(self):
        a = Allocator(128)
        off = a.alloc(64)
        a.free(off)
        with pytest.raises(AllocationError):
            a.free(off)

    def test_free_unknown_raises(self):
        with pytest.raises(AllocationError):
            Allocator(128).free(8)

    def test_size_of(self):
        a = Allocator(1024)
        off = a.alloc(100)
        assert a.size_of(off) == 104  # rounded to 8
        with pytest.raises(AllocationError):
            a.size_of(999)


class TestCoalescing:
    def test_adjacent_frees_merge(self):
        a = Allocator(312)
        offs = [a.alloc(100) for _ in range(3)]  # rounds to 104 each
        for off in offs:
            a.free(off)
        a.check_invariants()
        # After full coalescing one whole-capacity alloc must fit again.
        assert a.alloc(312) == 0

    def test_merge_order_independent(self):
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2], [0, 2, 1]):
            a = Allocator(300)
            offs = [a.alloc(96) for _ in range(3)]
            for i in order:
                a.free(offs[i])
            a.check_invariants()
            assert a.fragmentation == pytest.approx(0.0)

    def test_fragmentation_metric(self):
        a = Allocator(400)
        offs = [a.alloc(96) for _ in range(4)]
        a.free(offs[0])
        a.free(offs[2])
        assert a.fragmentation > 0.0
        a.free(offs[1])
        a.free(offs[3])
        assert a.fragmentation == pytest.approx(0.0)


class TestRealloc:
    def test_shrink_in_place(self):
        a = Allocator(1024)
        off = a.alloc(512)
        assert a.realloc(off, 256) == off
        assert a.size_of(off) == 256
        a.check_invariants()

    def test_grow_in_place_when_room(self):
        a = Allocator(1024)
        off = a.alloc(256)
        assert a.realloc(off, 512) == off
        assert a.size_of(off) == 512
        a.check_invariants()

    def test_grow_blocked_by_neighbour(self):
        a = Allocator(1024)
        off = a.alloc(256)
        a.alloc(256)  # immediately after
        assert a.realloc(off, 512) is None

    def test_grow_into_partial_gap_fails(self):
        a = Allocator(1024)
        off = a.alloc(256)
        spacer = a.alloc(64)
        a.alloc(256)
        a.free(spacer)  # 64-byte gap follows off — too small for +256
        assert a.realloc(off, 512) is None
        a.check_invariants()

    def test_realloc_same_size_noop(self):
        a = Allocator(1024)
        off = a.alloc(256)
        assert a.realloc(off, 256) == off

    def test_realloc_unknown_raises(self):
        with pytest.raises(AllocationError):
            Allocator(128).realloc(0, 64)

    def test_grow_consumes_exact_block(self):
        a = Allocator(512)
        off = a.alloc(256)
        assert a.realloc(off, 512) == off
        assert a.free_bytes == 0
        a.check_invariants()


class TestAccounting:
    def test_bytes_allocated_tracks(self):
        a = Allocator(1024)
        o1 = a.alloc(100)
        assert a.bytes_allocated == 104
        o2 = a.alloc(200)
        assert a.bytes_allocated == 304
        a.free(o1)
        assert a.bytes_allocated == 200
        a.free(o2)
        assert a.bytes_allocated == 0
        assert a.free_bytes == 1024

    def test_alloc_count(self):
        a = Allocator(1024)
        for _ in range(5):
            a.alloc(8)
        assert a.alloc_count == 5
