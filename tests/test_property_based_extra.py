"""Additional property-based tests: codecs, DataBox, trees, segments."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialization import DataBox, FlatCodec, FlatView
from repro.serialization.cereal_like import CerealCodec, record
from repro.structures import RedBlackTree

simple_values = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30)
    | st.binary(max_size=30)
)


class TestFlatCodecProperties:
    @given(st.lists(simple_values, min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_field_table_roundtrip(self, values):
        codec = FlatCodec()
        buf = codec.encode(values)
        view = FlatView(buf)
        assert len(view) == len(values)
        for i, expected in enumerate(values):
            assert view[i] == expected

    @given(st.lists(simple_values, min_size=2, max_size=8),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_single_field_access_independent(self, values, index):
        """Reading one field never requires the others to be decodable."""
        index = index % len(values)
        buf = FlatCodec().encode(values)
        assert FlatView(buf)[index] == values[index]

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_raw_bytes_verbatim(self, raw):
        buf = FlatCodec().encode([raw])
        assert FlatView(buf).field_bytes(0) == raw


class TestCerealProperties:
    @given(st.integers(-(2**31), 2**31 - 1),
           st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.text(alphabet=string.printable, max_size=40),
           st.binary(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_record_roundtrip(self, i, f, s, b):
        @record(num="i32", val="f64", label="str", blob="bytes")
        class Rec:
            pass

        codec = CerealCodec(Rec)
        original = Rec(num=i, val=f, label=s, blob=b)
        assert codec.decode(codec.encode(original)) == original

    @given(st.lists(st.integers(0, 255), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_fixed_records_constant_size(self, values):
        @record(a="u8", b="u8", c="u8")
        class Triple:
            pass

        codec = CerealCodec(Triple)
        encoded = codec.encode(Triple(a=values[0], b=values[1], c=values[2]))
        assert len(encoded) == 3  # positional, tag-free


class TestDataBoxProperties:
    @given(simple_values)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, value):
        assert DataBox.decode(DataBox(value).encode()).value == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=60, deadline=None)
    def test_small_ints_are_byte_copyable(self, value):
        box = DataBox(value)
        assert box.byte_copyable
        assert len(box.encode()) == 9  # tag + 8 bytes

    @given(st.lists(simple_values, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_wire_size_positive_and_stable(self, values):
        box = DataBox(values)
        first = box.wire_size
        assert first > 0
        encoded = box.encode()
        assert box.wire_size == len(encoded)


class TestRBTreeRangeProperties:
    @given(st.lists(st.integers(0, 500), max_size=80),
           st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_range_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = RedBlackTree()
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _v in tree.range_items(lo, hi)]
        expected = sorted(k for k in set(keys) if lo <= k < hi)
        assert got == expected

    @given(st.lists(st.integers(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_min_max_consistent(self, keys):
        tree = RedBlackTree()
        for k in keys:
            tree.insert(k, None)
        if keys:
            assert tree.min_key() == min(set(keys))
            assert tree.max_key() == max(set(keys))
        else:
            assert tree.min_key() is None and tree.max_key() is None


class TestSegmentGrowthProperties:
    @given(st.lists(st.integers(16, 512), min_size=1, max_size=20),
           st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_grow_preserves_allocations(self, sizes, factor):
        from repro.config import ares_like
        from repro.fabric import Cluster
        from repro.memory import MemorySegment
        from repro.memory.allocator import AllocationError

        cluster = Cluster(ares_like(nodes=1, procs_per_node=1))
        seg = MemorySegment(cluster.node(0), 8192)
        offsets = []
        for s in sizes:
            try:
                off = seg.alloc(s)
            except AllocationError:
                break
            seg.put(off, ("val", s))
            offsets.append((off, s))
        seg.grow(8192 * factor)
        seg.allocator.check_invariants()
        assert seg.size == 8192 * factor
        for off, s in offsets:
            assert seg.get(off) == ("val", s)
