"""Keyed ``batch()`` edge cases: empty op lists, mixed-partition ordering,
dead primaries under ``write_failover``, and replication + persistence.

The keyed batch is the workhorse under the op-coalescing buffers (every
flush is one ``batch`` invocation), so its corners — result ordering
across partitions, failover of a whole batch, and batched mutations
hitting the replication and persistence pipelines — get explicit
coverage here.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import RetryPolicy, ares_like
from repro.core import HCL
from repro.fabric import Cluster
from repro.fabric.faults import FaultPlan

from tests.conftest import run_rank0


def _retrying_hcl(nodes=2, procs=4, seed=7):
    """HCL over a fault-armed cluster with a small retry budget, so a dead
    primary exhausts retries quickly and exercises failover."""
    spec = ares_like(nodes=nodes, procs_per_node=procs, seed=seed)
    spec = spec.scaled(cost=replace(
        spec.cost,
        retry=RetryPolicy(timeout=20e-6, max_retries=2,
                          backoff_base=5e-6, backoff_max=20e-6),
    ))
    cluster = Cluster(spec)
    cluster.install_faults(FaultPlan())
    return HCL(cluster)


def _keys_on_partition(m, part, n, start=0):
    found = []
    for k in range(start, start + 100_000):
        if m.partition_for(k) is part:
            found.append(k)
            if len(found) == n:
                return found
    raise AssertionError("not enough keys routed to partition")


class TestBatchEdges:
    def test_empty_op_list(self, hcl):
        m = hcl.unordered_map("t", partitions=2)

        def body():
            results = yield from m.batch(0, [])
            assert results == []

        run_rank0(hcl, body())

    def test_mixed_partition_result_ordering(self, hcl):
        """Sub-ops scatter across partitions but results come back in the
        caller's original order, interleaved ops included."""
        m = hcl.unordered_map("t", partitions=2)
        keys0 = _keys_on_partition(m, m.partitions[0], 3)
        keys1 = _keys_on_partition(m, m.partitions[1], 3)
        # Interleave partitions and op kinds in one batch.
        mixed = [keys0[0], keys1[0], keys0[1], keys1[1], keys0[2], keys1[2]]

        def body():
            results = yield from m.batch(
                0, [("insert", k, f"v{k}") for k in mixed]
            )
            assert results == [True] * len(mixed)
            ops = []
            for i, k in enumerate(mixed):
                ops.append(("find", k) if i % 2 == 0 else ("erase", k))
            results = yield from m.batch(0, ops)
            for i, (k, result) in enumerate(zip(mixed, results)):
                if i % 2 == 0:
                    assert result == (f"v{k}", True)
                else:
                    assert result is True  # erase ack

        run_rank0(hcl, body())

    def test_batch_survives_dead_primary_with_failover(self):
        h = _retrying_hcl()
        m = h.unordered_map("t", partitions=2, replication=1,
                            write_failover=True)
        part1 = m.partitions[1]
        keys = _keys_on_partition(m, part1, 4)
        h.cluster.node(part1.node_id).fail()

        def body():
            results = yield from m.batch(
                0, [("insert", k, k * 10) for k in keys]
            )
            assert results == [True] * len(keys)

        run_rank0(h, body())
        assert m.failover_writes.value >= 1
        assert not part1.structure  # primary was down for the whole batch
        h.cluster.node(part1.node_id).recover()
        h.cluster.run()  # drain the replay

        def verify():
            results = yield from m.batch(0, [("find", k) for k in keys])
            assert results == [(k * 10, True) for k in keys]

        run_rank0(h, verify())
        h.close()

    def test_batch_replicates_mutations(self, hcl):
        m = hcl.unordered_map("t", partitions=2, replication=1)
        keys = _keys_on_partition(m, m.partitions[1], 3)

        def body():
            yield from m.batch(0, [("insert", k, k) for k in keys])

        run_rank0(hcl, body())
        hcl.cluster.run()  # let async replication drain
        replica = m.partitions[0]  # replication=1 -> next partition
        for k in keys:
            value, found, _stats = replica.structure.find(k)
            assert found and value == k

    def test_batch_persists_and_recovers(self, tmp_path, small_spec):
        h = HCL(small_spec, persist_dir=str(tmp_path))
        m = h.unordered_map("t", partitions=2, persistence=True,
                            replication=1)
        keys = _keys_on_partition(m, m.partitions[1], 3)

        def body():
            yield from m.batch(
                0,
                [("insert", k, k) for k in keys]
                + [("upsert", keys[0], 1)]
                + [("erase", keys[-1])],
            )

        run_rank0(h, body())
        h.cluster.run()
        m.close()

        h2 = HCL(small_spec, persist_dir=str(tmp_path))
        m2 = h2.unordered_map("t", partitions=2, persistence=True,
                              recover=True)

        def verify():
            value, found = yield from m2.find(0, keys[0])
            assert found and value == keys[0] + 1  # insert + upsert
            value, found = yield from m2.find(0, keys[1])
            assert found and value == keys[1]
            _value, found = yield from m2.find(0, keys[-1])
            assert not found  # the erase was logged and replayed too

        run_rank0(h2, verify())
        h2.close()
