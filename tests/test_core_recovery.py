"""Tests for first-class crash recovery (recover=True)."""

import pytest

from repro.core import HCL


def _fill_and_crash(tmp_path, spec):
    """First life: write, mutate, crash (close)."""
    hcl = HCL(spec, persist_dir=str(tmp_path))
    m = hcl.unordered_map("kv", partitions=2, persistence=True)

    def body(rank):
        yield from m.insert(rank, f"key-{rank}", rank * 10)
        yield from m.upsert(rank, "counter", 1)
        if rank == 0:
            yield from m.insert(rank, "doomed", "x")
            yield from m.erase(rank, "doomed")

    hcl.run_ranks(body)
    m.close()
    return spec.total_procs


class TestRecovery:
    def test_fresh_runtime_recovers_contents(self, tmp_path, small_spec):
        n = _fill_and_crash(tmp_path, small_spec)

        hcl2 = HCL(small_spec, persist_dir=str(tmp_path))
        m2 = hcl2.unordered_map("kv", partitions=2, persistence=True,
                                recover=True)
        results = {}

        def reader(rank):
            value, found = yield from m2.find(rank, f"key-{rank}")
            assert found and value == rank * 10
            counter, found = yield from m2.find(rank, "counter")
            assert found and counter == n
            _v, doomed = yield from m2.find(rank, "doomed")
            assert not doomed  # the erase replayed too
            results[rank] = True

        hcl2.run_ranks(reader)
        assert len(results) == n

    def test_recovered_container_accepts_new_writes(self, tmp_path,
                                                    small_spec):
        _fill_and_crash(tmp_path, small_spec)
        hcl2 = HCL(small_spec, persist_dir=str(tmp_path))
        m2 = hcl2.unordered_map("kv", partitions=2, persistence=True,
                                recover=True)

        def body(rank):
            yield from m2.upsert(rank, "counter", 1)

        hcl2.run_ranks(body)
        part = m2.partition_for("counter")
        value, found, _ = part.structure.find("counter")
        assert found and value == 2 * small_spec.total_procs
        m2.close()

        # Third life: both generations of writes survive.
        hcl3 = HCL(small_spec, persist_dir=str(tmp_path))
        m3 = hcl3.unordered_map("kv", partitions=2, persistence=True,
                                recover=True)
        part = m3.partition_for("counter")
        value, found, _ = part.structure.find("counter")
        assert found and value == 2 * small_spec.total_procs

    def test_recover_requires_persistence(self, small_spec):
        hcl = HCL(small_spec)
        with pytest.raises(ValueError, match="persistence"):
            hcl.unordered_map("kv", recover=True)

    def test_recover_empty_logs_is_noop(self, tmp_path, small_spec):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        m = hcl.unordered_map("kv", partitions=2, persistence=True,
                              recover=True)
        assert m.total_entries() == 0

    def test_queue_recovery(self, tmp_path, small_spec):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        q = hcl.queue("wq", persistence=True)

        def body(rank):
            yield from q.push(rank, rank)

        hcl.run_ranks(body)
        q.close()

        hcl2 = HCL(small_spec, persist_dir=str(tmp_path))
        q2 = hcl2.queue("wq", persistence=True, recover=True)
        assert len(q2.home.structure) == small_spec.total_procs

        def drain(rank):
            got = []
            while True:
                value, ok = yield from q2.pop(rank)
                if not ok:
                    return got
                got.append(value)

        proc = hcl2.cluster.spawn(drain(0))
        hcl2.cluster.run()
        assert sorted(proc.result) == list(range(small_spec.total_procs))

    def test_replayed_count_reported(self, tmp_path, small_spec):
        _fill_and_crash(tmp_path, small_spec)
        hcl2 = HCL(small_spec, persist_dir=str(tmp_path))
        m2 = hcl2.unordered_map("kv2", partitions=2, persistence=True)
        assert m2.recover_from_logs() == 0  # different name, no logs
        m3 = hcl2.unordered_map("kv", partitions=2, persistence=True)
        # 8 inserts + 8 upserts + insert + erase = 18 mutations replayed.
        assert m3.recover_from_logs() == 18
