"""Tests for the Sampler / TimeSeries / EventLog tracing layer.

Satellite coverage for :mod:`repro.simnet.trace`: interval behavior over
long runs, probe-exception isolation, one-shot ``schedule_at`` sampling
(the telemetry harness's mechanism), empty-series reductions, and the
EventLog bound.
"""

import pytest

from repro.simnet import EventLog, Sampler, TimeSeries


class TestSamplerIntervals:
    def test_no_interval_drift(self, sim):
        """100 samples at interval 0.1 land on exact multiples of 0.1.

        The sampler re-arms with a fresh ``timeout(interval)`` each cycle,
        so absolute sample times must not accumulate floating-point drift
        beyond normal summation error.
        """
        sampler = Sampler(sim, interval=0.1)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.start()
        sim.timeout(10.0)
        sim.run(until=10.0)
        sampler.stop()
        assert len(clock) >= 100
        for i, t in enumerate(clock.times[:100]):
            assert t == pytest.approx(i * 0.1, abs=1e-9)

    def test_stop_halts_sampling(self, sim):
        sampler = Sampler(sim, interval=1.0)
        series = sampler.add_probe("x", lambda: 1.0)
        sampler.start()
        sim.timeout(10.0)
        sim.run(until=3.5)
        sampler.stop()
        n = len(series)
        sim.run(until=10.0)
        # One more sample can already be scheduled at stop time, no more.
        assert len(series) <= n + 1

    def test_start_idempotent(self, sim):
        sampler = Sampler(sim, interval=1.0)
        series = sampler.add_probe("x", lambda: 1.0)
        sampler.start()
        sampler.start()  # second start must not spawn a second process
        sim.timeout(3.0)
        sim.run(until=3.0)
        sampler.stop()
        assert series.times == [0.0, 1.0, 2.0, 3.0]


class TestSamplerProbeErrors:
    def test_probe_exception_isolated(self, sim):
        """A raising probe is counted and skipped; others still record."""
        sampler = Sampler(sim, interval=1.0)

        def bad():
            raise RuntimeError("probe hardware fell over")

        broken = sampler.add_probe("bad", bad)
        good = sampler.add_probe("good", lambda: 42.0)
        sampler.sample_once()
        sampler.sample_once()
        assert sampler.probe_errors == 2
        assert broken.values == []
        assert good.values == [42.0, 42.0]

    def test_probe_error_does_not_kill_sampler(self, sim):
        sampler = Sampler(sim, interval=1.0)
        calls = []

        def flaky():
            calls.append(sim.now)
            if len(calls) == 2:
                raise ValueError("transient")
            return float(len(calls))

        series = sampler.add_probe("flaky", flaky)
        sampler.start()
        sim.timeout(4.0)
        sim.run(until=4.0)
        sampler.stop()
        assert sampler.probe_errors == 1
        assert len(series) == len(calls) - 1  # only the raising call skipped


class TestScheduleAt:
    def test_one_shot_samples_at_absolute_times(self, sim):
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.schedule_at([0.5, 1.5, 2.5])
        sim.timeout(5.0)
        sim.run(until=5.0)
        assert clock.times == [0.5, 1.5, 2.5]

    def test_does_not_keep_sim_alive(self, sim):
        """Pre-scheduled one-shot samples drain with the sim — no re-arm."""
        sampler = Sampler(sim, interval=1.0)
        sampler.add_probe("x", lambda: 1.0)
        sampler.schedule_at([0.25, 0.75])
        sim.run()  # must terminate: no process re-arms itself
        assert sim.now == pytest.approx(0.75)

    def test_past_times_fire_immediately(self, sim):
        sim.timeout(2.0)
        sim.run(until=2.0)
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.schedule_at([1.0])  # already in the past -> delay clamped to 0
        sim.run()
        assert clock.times == [2.0]


class TestPump:
    def test_samples_at_exact_armed_times(self, sim):
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.arm([0.5, 1.5, 2.5])
        sim.timeout(5.0)  # real work spanning the sample window
        sampler.pump(until=5.0)
        assert clock.times == [0.5, 1.5, 2.5]
        assert sim.now == 5.0

    def test_never_advances_an_idle_clock(self, sim):
        """Armed samples past the last real event lapse — zero perturbation."""
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.arm([0.25, 0.75, 2.0, 3.0])
        sim.timeout(1.0)  # workload ends at t=1.0
        sampler.pump()
        assert sim.now == 1.0  # NOT 3.0: samples never drive the clock
        assert clock.times == [0.25, 0.75]
        assert list(sampler._armed) == [2.0, 3.0]  # paused, not dropped

    def test_multi_phase_run_unperturbed(self, sim):
        """Samples pause at a phase boundary and resume in the next pump.

        This is the regression the pump exists for: simulator-scheduled
        samples would stretch phase 1 to the last sample time before
        phase 2's events were spawned.
        """
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.arm([0.5, 1.5, 2.5, 3.5])
        # Phase 1: events drain at t=1.0; samples at 1.5+ must wait.
        sim.timeout(1.0)
        assert sampler.pump() == 1.0
        assert clock.times == [0.5]
        # Phase 2 spawns *after* phase 1's run call returned, as a
        # multi-phase app does.  Later samples fire during phase 2.
        sim.timeout(3.0)
        assert sampler.pump() == 4.0
        assert clock.times == [0.5, 1.5, 2.5, 3.5]

    def test_pump_without_armed_samples_is_plain_run(self, sim):
        sampler = Sampler(sim, interval=1.0)
        sim.timeout(2.0)
        assert sampler.pump(until=5.0) == 5.0  # run(until=...) pads the clock

    def test_until_bounds_sampling(self, sim):
        sampler = Sampler(sim, interval=1.0)
        clock = sampler.add_probe("t", lambda: sim.now)
        sampler.arm([0.5, 1.5])
        sim.timeout(3.0)
        sampler.pump(until=1.0)
        assert clock.times == [0.5]  # the 1.5 sample is beyond `until`
        assert sim.now == 1.0


class TestTimeSeriesEdges:
    def test_empty_rate_series(self):
        assert TimeSeries().rate_series().rows() == []

    def test_single_point_rate_series(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        assert ts.rate_series().rows() == []

    def test_zero_dt_skipped(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(1.0, 20.0)  # same timestamp: no rate point
        ts.record(2.0, 40.0)
        rate = ts.rate_series()
        assert rate.rows() == [(2.0, 20.0)]


class TestTimeSeriesRing:
    def test_maxlen_keeps_newest(self):
        ts = TimeSeries("ring", maxlen=3)
        for i in range(5):
            ts.record(float(i), float(i * 10))
        assert ts.rows() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ts.dropped == 2

    def test_unbounded_by_default(self):
        ts = TimeSeries()
        for i in range(100):
            ts.record(float(i), 1.0)
        assert len(ts.rows()) == 100 and ts.dropped == 0

    def test_reductions_see_retained_window_only(self):
        ts = TimeSeries(maxlen=2)
        ts.record(0.0, 100.0)  # evicted
        ts.record(1.0, 1.0)
        ts.record(2.0, 3.0)
        assert ts.mean() == 2.0
        assert ts.max() == 3.0

    def test_rate_series_name_and_maxlen(self):
        ts = TimeSeries("nic/bytes", maxlen=4)
        for i in range(3):
            ts.record(float(i), float(i * 8))
        rate = ts.rate_series()
        assert rate.name == "nic/bytes/rate"
        assert rate.maxlen == 4
        assert rate.rows() == [(1.0, 8.0), (2.0, 8.0)]

    def test_anonymous_rate_series_name(self):
        assert TimeSeries().rate_series().name == "rate"

    def test_rate_over_ring_window(self):
        """Rates derive from the retained samples, not the full history."""
        ts = TimeSeries(maxlen=2)
        for i in range(6):
            ts.record(float(i), float(i * i))
        # Retained: (4, 16), (5, 25) -> one rate point.
        assert ts.rate_series().rows() == [(5.0, 9.0)]


class TestEventLogBound:
    def test_unbounded_by_default(self, sim):
        log = EventLog(sim)
        for i in range(100):
            log.log("e", i)
        assert len(log) == 100 and log.dropped == 0

    def test_limit_keeps_oldest(self, sim):
        log = EventLog(sim, limit=3)
        for i in range(10):
            log.log("e", i)
        assert [p for _t, p in log.of_kind("e")] == [0, 1, 2]
        assert log.dropped == 7
