"""Containers with non-default DataBox codecs (flat / persistence interplay)."""

import pytest

from repro.core import HCL
from repro.memory import PersistentLog
from repro.serialization import DataBox


class TestContainerCodecs:
    def test_flat_codec_container_roundtrip(self, hcl):
        m = hcl.unordered_map("m", codec="flat")

        def body(rank):
            yield from m.insert(rank, f"k{rank}", [rank, "payload"])
            value, found = yield from m.find(rank, f"k{rank}")
            assert found and value == [rank, "payload"]

        hcl.run_ranks(body)

    def test_flat_codec_persistence_replays(self, small_spec, tmp_path):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        m = hcl.unordered_map("m", partitions=2, codec="flat",
                              persistence=True)

        def body(rank):
            yield from m.insert(rank, f"k{rank}", rank)

        hcl.run_ranks(body)
        m.close()

        hcl2 = HCL(small_spec, persist_dir=str(tmp_path))
        m2 = hcl2.unordered_map("m", partitions=2, codec="flat",
                                persistence=True, recover=True)
        assert m2.total_entries() == small_spec.total_procs

    def test_persistence_records_decode_with_container_codec(
            self, small_spec, tmp_path):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        m = hcl.unordered_map("m", partitions=1, codec="flat",
                              persistence=True)

        def body(rank):
            yield from m.insert(rank, f"key{rank}", rank)

        hcl.run_ranks(body, ranks=range(2))
        m.close()
        with PersistentLog(str(tmp_path / "m.part0.hcl")) as log:
            for record in log.records():
                op, args = DataBox.decode(record.payload, "flat").value
                assert op == "insert"
                assert args[0].startswith("key")

    def test_unknown_codec_fails_at_persist(self, small_spec, tmp_path):
        hcl = HCL(small_spec, persist_dir=str(tmp_path))
        m = hcl.unordered_map("m", partitions=1, codec="bogus",
                              persistence=True)

        def body(rank):
            yield from m.insert(rank, "k", 1)

        # The codec is only exercised when a DataBox must be encoded.
        with pytest.raises(Exception, match="bogus"):
            hcl.run_ranks(body, ranks=range(1))
