"""Tests for the BCL baseline: protocol fidelity, memory rules, queues."""

import pytest

from repro.bcl import BCL, BCLOutOfMemory
from repro.fabric import Cluster


@pytest.fixture
def bcl(small_spec):
    return BCL(small_spec)


class TestHashMapProtocol:
    def test_insert_find_roundtrip(self, bcl):
        m = bcl.hashmap("m", capacity_per_partition=1024, entry_size=256)

        def body(rank):
            yield from m.insert(rank, f"k{rank}", rank * 2)
            value, found = yield from m.find(rank, f"k{rank}")
            assert found and value == rank * 2

        bcl.cluster.spawn_ranks(body)
        bcl.cluster.run()
        assert m.inserts.value == 8 and m.finds.value == 8

    def test_find_missing(self, bcl, drive):
        m = bcl.hashmap("m", capacity_per_partition=64, entry_size=64)

        def body():
            return (yield from m.find(0, "ghost"))

        assert drive(bcl.cluster, body()) == (None, False)

    def test_insert_costs_three_remote_verbs(self, bcl):
        """The Fig 1 protocol: CAS + WRITE + CAS per collision-free insert."""
        m = bcl.hashmap("m", capacity_per_partition=1024, entry_size=64,
                        partitions=1)
        m._partition_nodes = [1]  # force remote from node 0
        target_nic = bcl.cluster.node(1).nic

        def body():
            yield m.ready
            before = target_nic.verbs_processed.value
            yield from m.insert(0, "key", "value")
            return target_nic.verbs_processed.value - before

        proc = bcl.cluster.spawn(body())
        bcl.cluster.run()
        # 2 atomics + 1 write processed at the target NIC.
        assert proc.result == 3

    def test_collision_probing_costs_extra_cas(self, bcl):
        m = bcl.hashmap("m", capacity_per_partition=8, entry_size=64,
                        partitions=1)
        keys = [0, 8, 16, 24]  # hash(k) % 8 == 0 for all: guaranteed clash

        def body(rank):
            yield from m.insert(rank, keys[rank], keys[rank])

        bcl.cluster.spawn_ranks(body, ranks=range(4))
        bcl.cluster.run()
        # Linear probing on a shared home bucket costs extra CAS attempts.
        assert m.cas_retries.value > 0
        stored = dict(m.stored_items())
        assert stored == {k: k for k in keys}

    def test_probe_exhaustion_raises(self, bcl):
        m = bcl.hashmap("m", capacity_per_partition=4, entry_size=64,
                        partitions=1)

        def body():
            for i in range(10):  # 10 keys into 4 static buckets
                yield from m.insert(0, i, i)

        proc = bcl.cluster.spawn(body())
        bcl.cluster.run()
        with pytest.raises(RuntimeError, match="static partition too small"):
            proc.result

    def test_overwrite_same_key(self, bcl, drive):
        m = bcl.hashmap("m", capacity_per_partition=64, entry_size=64)

        def body():
            yield from m.insert(0, "k", 1)
            yield from m.insert(0, "k", 2)
            return (yield from m.find(0, "k"))

        assert drive(bcl.cluster, body()) == (2, True)

    def test_atomic_update_no_lost_updates(self, bcl):
        """Concurrent increments through the CAS-locked RMW protocol."""
        m = bcl.hashmap("m", capacity_per_partition=64, entry_size=64)

        def body(rank):
            for _ in range(10):
                yield from m.atomic_update(rank, "ctr", lambda v: v + 1, 0)

        bcl.cluster.spawn_ranks(body)
        bcl.cluster.run()
        stored = dict(m.stored_items())
        assert stored["ctr"] == 80

    def test_static_init_is_upfront(self, bcl):
        """BCL allocates the whole partition at init (Fig 4b ramp)."""
        m = bcl.hashmap("m", capacity_per_partition=4096, entry_size=4096)
        bcl.cluster.run()
        total = sum(bcl.bcl_bytes(n) for n in range(2))
        # Full static footprint despite zero inserts.
        assert total >= 2 * 4096 * 4096


class TestMemoryRules:
    def test_oom_above_budget(self, small_spec):
        bcl = BCL(small_spec)
        node = bcl.cluster.node(0)
        budget = int(BCL.MEMORY_FRACTION * node.memory_capacity)
        bcl.allocate(node, budget - 100, what="bulk")
        with pytest.raises(BCLOutOfMemory):
            bcl.allocate(node, 200, what="straw")

    def test_sixty_percent_rule_below_node_capacity(self, small_spec):
        """BCL refuses allocations the node itself could still serve."""
        bcl = BCL(small_spec)
        node = bcl.cluster.node(0)
        size = int(0.7 * node.memory_capacity)
        with pytest.raises(BCLOutOfMemory):
            bcl.allocate(node, size)
        node.allocate(size)  # the node itself has room — HCL could use it

    def test_large_entry_size_oom_at_init(self, small_spec):
        """The >1MB failures of Fig 5: exclusive buffers + static layout."""
        bcl = BCL(small_spec)
        m = bcl.hashmap(
            "m",
            capacity_per_partition=1 << 16,
            entry_size=2 << 20,  # 2 MB entries => 128 GB static > budget
            partitions=1,
        )
        bcl.cluster.run()
        assert not m.ready.triggered or not m.ready.ok

    def test_client_buffers_charged_once_per_target(self, bcl):
        m = bcl.hashmap("m", capacity_per_partition=64, entry_size=1024,
                        partitions=1, inflight_slots=16)

        def body():
            yield from m.insert(0, "a", 1)
            yield from m.insert(0, "b", 2)

        before_regions = dict(bcl._bcl_bytes)
        proc = bcl.cluster.spawn(body())
        bcl.cluster.run()
        proc.result
        assert len(m._client_buffers) == 1


class TestCircularQueue:
    def test_push_pop_order(self, bcl, drive):
        q = bcl.queue("q", capacity=64, entry_size=64)

        def body():
            for i in range(5):
                yield from q.push(0, i)
            out = []
            for _ in range(5):
                value, ok = yield from q.pop(0)
                assert ok
                out.append(value)
            return out

        assert drive(bcl.cluster, body()) == [0, 1, 2, 3, 4]

    def test_pop_empty(self, bcl, drive):
        q = bcl.queue("q", capacity=8, entry_size=64)

        def body():
            return (yield from q.pop(0))

        assert drive(bcl.cluster, body()) == (None, False)

    def test_overflow_raises(self, bcl, drive):
        q = bcl.queue("q", capacity=4, entry_size=64)

        def body():
            for i in range(5):
                yield from q.push(0, i)

        with pytest.raises(RuntimeError, match="overflow"):
            drive(bcl.cluster, body())

    def test_ring_wraparound(self, bcl, drive):
        q = bcl.queue("q", capacity=4, entry_size=64)

        def body():
            out = []
            for round_ in range(3):
                for i in range(4):
                    yield from q.push(0, (round_, i))
                for _ in range(4):
                    value, ok = yield from q.pop(0)
                    out.append(value)
            return out

        out = drive(bcl.cluster, body())
        assert out == [(r, i) for r in range(3) for i in range(4)]

    def test_concurrent_producers_consumers(self, bcl):
        q = bcl.queue("q", capacity=256, entry_size=64, home_node=1)
        popped = []

        def producer(rank):
            for i in range(8):
                yield from q.push(rank, (rank, i))

        def consumer(rank):
            got = 0
            while got < 8:
                value, ok = yield from q.pop(rank)
                if ok:
                    popped.append(tuple(value))
                    got += 1
                else:
                    yield bcl.sim.timeout(1e-6)

        for rank in range(4):
            bcl.cluster.spawn(producer(rank))
        for rank in range(4, 8):
            bcl.cluster.spawn(consumer(rank))
        bcl.cluster.run()
        assert len(popped) == 32
        for rank in range(4):
            mine = [i for r, i in popped if r == rank]
            assert mine == sorted(mine)

    def test_queue_ops_use_multiple_atomics(self, bcl):
        """Fig 6c: every push/pop issues client-side atomics."""
        q = bcl.queue("q", capacity=64, entry_size=64, home_node=1)
        region_name = q.region_name

        def body():
            yield q.ready
            region = bcl.cluster.node(1).nic.region(region_name)
            before = region.cas_attempts.value
            yield from q.push(0, "x")
            yield from q.pop(0)
            return region.cas_attempts.value - before

        proc = bcl.cluster.spawn(body())
        bcl.cluster.run()
        assert proc.result >= 2  # publish CAS + free CAS at minimum


class TestEnvironment:
    def test_duplicate_container_rejected(self, bcl):
        bcl.hashmap("m", capacity_per_partition=8, entry_size=8)
        with pytest.raises(KeyError):
            bcl.hashmap("m", capacity_per_partition=8, entry_size=8)

    def test_barrier_parties_match_cluster(self, bcl):
        barrier = bcl.barrier()
        assert barrier.parties == bcl.cluster.total_procs
        assert bcl.barrier() is barrier

    def test_shared_cluster_with_hcl(self, small_spec):
        """BCL can run on an existing cluster object (comparison harness)."""
        cluster = Cluster(small_spec)
        bcl = BCL(cluster)
        assert bcl.cluster is cluster

    def test_bcl_requires_rdma_atomics(self, small_spec):
        """'Without CAS support, BCL structures cannot be implemented' —
        the tcp provider has no RDMA atomics, so BCL refuses it while HCL
        runs fine on the same fabric (Section II-B vs III)."""
        from repro.core import HCL

        with pytest.raises(RuntimeError, match="atomics"):
            BCL(small_spec, provider="tcp")
        hcl = HCL(small_spec, provider="tcp")  # HCL is fabric-agnostic
        m = hcl.unordered_map("m")

        def body(rank):
            yield from m.insert(rank, rank, rank)

        hcl.run_ranks(body)
        assert m.total_entries() == 8
