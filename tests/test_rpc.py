"""Tests for the RPC-over-RDMA framework."""

import pytest

from repro.config import ares_like
from repro.fabric import Cluster
from repro.rpc import RemoteError, RpcClient, RpcServer
from repro.rpc.future import RPCFuture


@pytest.fixture
def rig(small_spec):
    """Cluster + servers on both nodes + a client on node 0."""
    cluster = Cluster(small_spec)
    servers = {i: RpcServer(cluster.node(i)) for i in range(cluster.num_nodes)}
    client = RpcClient(cluster, 0, servers)
    return cluster, servers, client


class TestBindInvoke:
    def test_sync_call(self, rig):
        cluster, servers, client = rig
        servers[1].bind("echo", lambda ctx, x: x * 2)

        def body():
            return (yield from client.call(1, "echo", (21,)))

        assert cluster.sim.run_process(body()) == 42

    def test_duplicate_bind_rejected(self, rig):
        _c, servers, _cl = rig
        servers[0].bind("op", lambda ctx: 1)
        with pytest.raises(KeyError):
            servers[0].bind("op", lambda ctx: 2)
        servers[0].rebind("op", lambda ctx: 3)  # explicit override allowed

    def test_unknown_op_raises_remote_error(self, rig):
        cluster, _s, client = rig

        def body():
            yield from client.call(1, "ghost")

        proc = cluster.spawn(body())
        cluster.run()
        with pytest.raises(RemoteError, match="no such op"):
            proc.result

    def test_unknown_node_rejected(self, rig):
        _c, _s, client = rig
        with pytest.raises(KeyError):
            client.invoke(99, "x")

    def test_handler_exception_propagates(self, rig):
        cluster, servers, client = rig

        def bad(ctx):
            raise ValueError("server exploded")

        servers[1].bind("bad", bad)

        def body():
            yield from client.call(1, "bad")

        proc = cluster.spawn(body())
        cluster.run()
        with pytest.raises(RemoteError, match="server exploded"):
            proc.result

    def test_generator_handler_charges_time(self, rig):
        cluster, servers, client = rig

        def slow(ctx, duration):
            yield ctx.sim.timeout(duration)
            return "done"

        servers[1].bind("slow", slow)

        def body():
            return (yield from client.call(1, "slow", (0.5,)))

        assert cluster.sim.run_process(body()) == "done"
        assert cluster.sim.now >= 0.5

    def test_handler_receives_caller_identity(self, rig):
        cluster, servers, client = rig
        seen = {}

        def who(ctx):
            seen["src"] = ctx.src_node
            seen["op"] = ctx.op
            return None

        servers[1].bind("who", who)
        cluster.sim.run_process(client.call(1, "who"))
        assert seen == {"src": 0, "op": "who"}

    def test_self_invocation_via_loopback(self, rig):
        cluster, servers, client = rig
        servers[0].bind("local", lambda ctx: "here")

        def body():
            return (yield from client.call(0, "local"))

        assert cluster.sim.run_process(body()) == "here"


class TestAsync:
    def test_invoke_returns_future_immediately(self, rig):
        cluster, servers, client = rig
        servers[1].bind("f", lambda ctx: "v")
        fut = client.invoke(1, "f")
        assert isinstance(fut, RPCFuture)
        assert not fut.done
        cluster.run()
        assert fut.done and fut.result == "v"

    def test_result_before_done_raises(self, rig):
        _c, servers, client = rig
        servers[1].bind("f", lambda ctx: "v")
        fut = client.invoke(1, "f")
        with pytest.raises(RuntimeError):
            _ = fut.result

    def test_overlapping_invocations_faster_than_serial(self, small_spec):
        def run(overlap: bool) -> float:
            cluster = Cluster(small_spec)
            servers = {i: RpcServer(cluster.node(i)) for i in range(2)}
            client = RpcClient(cluster, 0, servers)

            def handler(ctx):
                yield ctx.sim.timeout(0.001)

            servers[1].bind("work", handler)

            def body():
                if overlap:
                    futures = [client.invoke(1, "work") for _ in range(8)]
                    for fut in futures:
                        yield fut.wait()
                else:
                    for _ in range(8):
                        yield from client.call(1, "work")

            cluster.sim.run_process(body())
            return cluster.sim.now

        assert run(overlap=True) < run(overlap=False)

    def test_future_then_chaining(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 10)
        fut = client.invoke(1, "n").then(lambda v: v + 1).then(lambda v: v * 2)
        cluster.run()
        assert fut.result == 22

    def test_then_propagates_error(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 10)
        fut = client.invoke(1, "n").then(lambda v: 1 / 0)
        cluster.run()
        with pytest.raises(ZeroDivisionError):
            _ = fut.result

    def test_latency_recorded(self, rig):
        cluster, servers, client = rig
        servers[1].bind("f", lambda ctx: None)
        fut = client.invoke(1, "f")
        cluster.run()
        assert fut.latency > 0


class TestCallbacks:
    def test_callback_chain_executes_in_order(self, rig):
        cluster, servers, client = rig
        log = []
        servers[1].bind("main", lambda ctx: log.append("main") or "m")
        servers[1].bind("cb1", lambda ctx, tag: log.append(tag) or tag)
        servers[1].bind("cb2", lambda ctx: log.append("cb2") or "c2")

        def body():
            return (yield from client.call(
                1, "main", callbacks=[("cb1", ("one",)), ("cb2", ())]
            ))

        value, cb_results = cluster.sim.run_process(body())
        assert value == "m"
        assert cb_results == ["one", "c2"]
        assert log == ["main", "one", "cb2"]

    def test_callback_failure_propagates(self, rig):
        cluster, servers, client = rig
        servers[1].bind("main", lambda ctx: "ok")

        def body():
            yield from client.call(1, "main", callbacks=[("missing", ())])

        proc = cluster.spawn(body())
        cluster.run()
        with pytest.raises(RemoteError, match="callback"):
            proc.result

    def test_callbacks_cost_one_invocation(self, rig):
        """Chained ops pay one network round trip, not three."""
        cluster, servers, client = rig
        for name in ("a", "b", "c"):
            servers[1].bind(name, lambda ctx: None)

        def chained():
            yield from client.call(1, "a", callbacks=[("b", ()), ("c", ())])

        cluster.sim.run_process(chained())
        t_chained = cluster.sim.now

        cluster2 = Cluster(ares_like(nodes=2, procs_per_node=4, seed=7))
        servers2 = {i: RpcServer(cluster2.node(i)) for i in range(2)}
        client2 = RpcClient(cluster2, 0, servers2)
        for name in ("a", "b", "c"):
            servers2[1].bind(name, lambda ctx: None)

        def separate():
            for name in ("a", "b", "c"):
                yield from client2.call(1, name)

        cluster2.sim.run_process(separate())
        assert t_chained < cluster2.sim.now


class TestAggregation:
    def _run_burst(self, batch_size: int) -> tuple:
        cluster = Cluster(ares_like(nodes=2, procs_per_node=8, seed=3))
        servers = {
            i: RpcServer(cluster.node(i), batch_size=batch_size)
            for i in range(2)
        }
        client = RpcClient(cluster, 0, servers)
        servers[1].bind("op", lambda ctx: None)

        def rank_body(rank):
            # Flood asynchronously so requests accumulate in the work queue.
            futures = [client.invoke(1, "op") for _ in range(16)]
            for fut in futures:
                yield fut.wait()

        cluster.spawn_ranks(rank_body, ranks=range(8))
        cluster.run()
        return cluster.sim.now, servers[1]

    def test_batching_reduces_dispatches(self):
        _t1, unbatched = self._run_burst(1)
        _t8, batched = self._run_burst(8)
        assert unbatched.requests_served.value == batched.requests_served.value
        assert batched.batches.value < unbatched.batches.value

    def test_batch_size_validation(self, cluster):
        with pytest.raises(ValueError):
            RpcServer(cluster.node(0), batch_size=0)


class TestFanOut:
    def test_invoke_all(self, rig):
        cluster, servers, client = rig
        servers[0].bind("node_id", lambda ctx: ctx.node.node_id)
        servers[1].bind("node_id", lambda ctx: ctx.node.node_id)
        futures = client.invoke_all([0, 1], "node_id", lambda n: ())
        cluster.run()
        assert [f.result for f in futures] == [0, 1]
