"""Kernel fast paths: event pooling, the near-future timeout lane,
``schedule_callback``, AnyOf/AllOf detach semantics, tombstone interrupts,
and the ``Resource.use`` no-contention path.

These are the invariants the perf work in this PR relies on: recycling
must never leak a stale value or callback across reuses, the two-lane
scheduler must retire events in exactly the order a pure binary heap
would, and pooling must be a wall-clock-only knob (``pooling=False``
yields bit-identical simulated results).
"""

from __future__ import annotations

import random

import pytest

from repro.simnet.core import Event, Interrupt, Simulator
from repro.simnet.resources import Resource

# ---------------------------------------------------------------------------
# Event / timeout pooling
# ---------------------------------------------------------------------------


class TestEventPooling:
    def test_timeouts_are_recycled(self):
        sim = Simulator(pooling=True)

        def proc():
            for _ in range(50):
                yield sim.timeout(0.001)

        sim.run_process(proc())
        stats = sim.kernel_stats()
        assert stats["events_recycled"] > 0
        assert stats["timeout_pool"] > 0

    def test_recycled_timeout_carries_no_stale_state(self):
        sim = Simulator(pooling=True)
        seen = []

        def proc():
            first = sim.timeout(0.5, value="stale-payload")
            got = yield first
            seen.append(got)
            # With pooling the very same object comes back from the pool;
            # it must behave as a brand-new (born-triggered) timeout.
            second = sim.timeout(0.5)
            assert second.value is None  # no stale payload
            assert not second.processed
            assert not second.callbacks  # no leftover waiters
            got = yield second
            seen.append(got)

        sim.run_process(proc())
        assert seen == ["stale-payload", None]
        assert sim.kernel_stats()["events_recycled"] >= 1

    def test_externally_held_timeout_is_not_recycled(self):
        sim = Simulator(pooling=True)
        held = []

        def proc():
            t = sim.timeout(0.1, value=42)
            held.append(t)  # external reference outlives _process
            yield t

        sim.run_process(proc())
        # The held object must keep its identity and value forever.
        assert held[0].value == 42
        assert held[0].processed
        fresh = sim.timeout(0.1)
        assert fresh is not held[0]

    def test_request_subclass_never_enters_timeout_pool(self, sim):
        # Pools recycle exact classes only; Resource Requests (an Event
        # subclass) must never be handed back by sim.event().
        res = Resource(sim, capacity=1)

        def proc():
            yield from res.use(0.1)
            ev = sim.event()
            assert type(ev) is Event
            yield sim.timeout(0.0)

        sim.run_process(proc())

    def test_pooling_off_recycles_nothing(self):
        sim = Simulator(pooling=False)

        def proc():
            for _ in range(20):
                yield sim.timeout(0.001)

        sim.run_process(proc())
        stats = sim.kernel_stats()
        assert stats["events_recycled"] == 0
        assert stats["timeout_pool"] == 0
        assert stats["event_pool"] == 0

    def test_pooling_toggle_is_wall_clock_only(self):
        def workload(sim):
            res = Resource(sim, capacity=2)
            done = []

            def worker(i):
                for j in range(5):
                    yield sim.timeout(0.001 * ((i + j) % 3 + 1))
                    yield from res.use(0.002)
                done.append((i, sim.now))
                return i

            for i in range(8):
                sim.process(worker(i))
            sim.run()
            return sim.now, sim.events_processed, done

        on = workload(Simulator(pooling=True))
        off = workload(Simulator(pooling=False))
        assert on == off


# ---------------------------------------------------------------------------
# Near-future lane vs binary heap: ordering equivalence
# ---------------------------------------------------------------------------


class TestLaneHeapOrdering:
    def test_monotone_and_regressive_delays_fire_in_heap_order(self):
        # Schedule a mix that exercises both the lane (monotone appends)
        # and the heap (out-of-order inserts), then check the firing order
        # equals a stable sort by (time, insertion seq).
        sim = Simulator()
        fired = []
        rng = random.Random(7)
        delays = [rng.choice([0.0, 0.001, 0.002, 0.005, 0.01])
                  for _ in range(200)]

        def charge(i, d):
            def cb():
                fired.append(i)
            sim.schedule_callback(cb, d)

        def driver():
            # First half scheduled up front (mixed order -> heap + lane).
            for i, d in enumerate(delays[:100]):
                charge(i, d)
            yield sim.timeout(0.003)
            # Second half scheduled mid-run, relative to a later now.
            for i, d in enumerate(delays[100:], start=100):
                charge(i, d)

        sim.run_process(driver())
        base = 0.003
        expected = sorted(
            range(200),
            key=lambda i: (delays[i] if i < 100 else base + delays[i], i),
        )
        assert fired == expected

    def test_equal_time_entries_keep_fifo_order_across_lanes(self):
        sim = Simulator()
        fired = []

        def cb(tag):
            return lambda: fired.append(tag)

        # Force heap traffic: a far event first, then near ones (which go
        # to the lane), then more at the exact same time as the far one.
        sim.schedule_callback(cb("far-1"), 1.0)
        sim.schedule_callback(cb("near"), 0.5)
        sim.schedule_callback(cb("far-2"), 1.0)
        sim.schedule_callback(cb("far-3"), 1.0)
        sim.run()
        assert fired == ["near", "far-1", "far-2", "far-3"]

    def test_zero_delay_chain_does_not_starve_later_events(self):
        sim = Simulator()
        fired = []
        counter = [0]

        def reschedule():
            fired.append("tick")
            counter[0] += 1
            if counter[0] < 3:
                sim.schedule_callback(reschedule, 0.0)

        sim.schedule_callback(reschedule, 0.0)
        sim.schedule_callback(lambda: fired.append("later"), 0.0)
        sim.run()
        # The first reschedule lands *after* the already-queued same-time
        # callback: seq order is preserved exactly as a heap would.
        assert fired == ["tick", "later", "tick", "tick"]

    def test_peek_merges_lane_and_heap(self):
        sim = Simulator()
        sim.schedule_callback(lambda: None, 2.0)  # lane
        sim.schedule_callback(lambda: None, 0.25)  # heap (regressive)
        assert sim.peek() == 0.25
        sim.run(until=0.25)
        assert sim.peek() == 2.0


# ---------------------------------------------------------------------------
# schedule_callback
# ---------------------------------------------------------------------------


class TestScheduleCallback:
    def test_fires_at_the_right_time(self):
        sim = Simulator()
        at = []
        sim.schedule_callback(lambda: at.append(sim.now), 0.75)
        sim.run()
        assert at == [0.75]

    def test_counts_as_one_processed_event(self):
        sim = Simulator()
        before = sim.events_processed
        for _ in range(10):
            sim.schedule_callback(lambda: None, 0.1)
        sim.run()
        assert sim.events_processed == before + 10

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(Exception):
            sim.schedule_callback(lambda: None, -0.1)

    def test_wrappers_are_recycled_without_leaking_fn(self):
        sim = Simulator(pooling=True)
        ran = []
        sim.schedule_callback(lambda: ran.append(1), 0.1)
        sim.run()
        assert ran == [1]
        stats = sim.kernel_stats()
        assert stats["callback_pool"] == 1
        # The pooled wrapper must not pin the old closure alive.
        assert sim._cb_pool[0].fn is None

    def test_interleaves_with_timeouts_in_seq_order(self):
        sim = Simulator()
        order = []

        def proc():
            sim.schedule_callback(lambda: order.append("cb"), 0.5)
            yield sim.timeout(0.5)
            order.append("proc")

        sim.run_process(proc())
        assert order == ["cb", "proc"]


# ---------------------------------------------------------------------------
# AnyOf / AllOf detach semantics
# ---------------------------------------------------------------------------


class TestConditionDetach:
    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_all_of_empty_succeeds_immediately(self, sim):
        combined = sim.all_of([])
        assert combined.triggered
        assert combined.value == []

    def test_any_of_detaches_losers(self, sim):
        fast = sim.timeout(0.1, value="fast")
        slow = sim.timeout(9.0, value="slow")
        combined = sim.any_of([fast, slow])
        results = []

        def proc():
            results.append((yield combined))

        sim.process(proc())
        sim.run(until=0.2)
        assert results == [(0, "fast")]
        # The loser must carry no leftover callback from the AnyOf.
        assert slow.callbacks == []

    def test_all_of_failure_first_detaches_survivors(self, sim):
        bad = sim.event()
        pending = sim.timeout(9.0)
        combined = sim.all_of([bad, pending])
        bad.fail(RuntimeError("boom"))
        failures = []

        def proc():
            try:
                yield combined
            except RuntimeError as err:
                failures.append(str(err))

        sim.process(proc())
        sim.run(until=1.0)
        assert failures == ["boom"]
        assert pending.callbacks == []

    def test_any_of_with_already_processed_child(self, sim):
        done = sim.event()
        done.succeed("early")

        def proc():
            yield sim.timeout(0.1)  # let `done` retire fully
            other = sim.timeout(9.0)
            got = yield sim.any_of([done, other])
            assert got == (0, "early")
            assert other.callbacks == []

        sim.run_process(proc())


# ---------------------------------------------------------------------------
# Tombstone interrupt
# ---------------------------------------------------------------------------


class TestTombstoneInterrupt:
    def test_interrupt_while_waiting_detaches_logically(self, sim):
        watched = sim.timeout(5.0, value="late")
        log = []

        def proc():
            try:
                got = yield watched
                log.append(("value", got))
            except Interrupt as intr:
                log.append(("interrupt", intr.cause))
                got = yield sim.timeout(0.1)
                log.append(("after", sim.now))

        p = sim.process(proc())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt("now")

        sim.process(interrupter())
        sim.run()
        # The tombstoned wakeup from `watched` at t=5 must be dropped: the
        # process sees only the interrupt and its own follow-up timeout.
        assert log == [("interrupt", "now"), ("after", 1.1)]
        assert p.done

    def test_interrupt_is_o1_with_many_waiters(self, sim):
        # One hot event with many waiters: interrupting one process must
        # not disturb the others (the callback list is left untouched).
        gate = sim.event()
        results = []

        def waiter(i):
            try:
                yield gate
                results.append(("woke", i))
            except Interrupt:
                results.append(("intr", i))

        procs = [sim.process(waiter(i)) for i in range(20)]

        def driver():
            yield sim.timeout(1.0)
            procs[7].interrupt()
            yield sim.timeout(1.0)
            gate.succeed()

        sim.process(driver())
        sim.run()
        assert ("intr", 7) in results
        woke = sorted(i for tag, i in results if tag == "woke")
        assert woke == [i for i in range(20) if i != 7]

    def test_interrupted_process_can_rewait_same_event(self, sim):
        gate = sim.event()
        log = []

        def proc():
            try:
                yield gate
            except Interrupt:
                log.append("intr")
            got = yield gate  # re-register on the same event
            log.append(got)

        p = sim.process(proc())

        def driver():
            yield sim.timeout(1.0)
            p.interrupt()
            yield sim.timeout(1.0)
            gate.succeed("open")

        sim.process(driver())
        sim.run()
        assert log == ["intr", "open"]


# ---------------------------------------------------------------------------
# Resource.use fast path
# ---------------------------------------------------------------------------


class TestResourceUseFastPath:
    def test_uncontended_use_timing_matches_request_release(self, sim):
        res = Resource(sim, capacity=1)
        times = []

        def via_use():
            yield from res.use(0.5)
            times.append(sim.now)

        sim.run_process(via_use())
        assert times == [0.5]
        assert res.in_use == 0

    def test_contended_use_is_fifo(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(i):
            yield from res.use(1.0)
            order.append((i, sim.now))

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        assert order == [(0, 1.0), (1, 2.0), (2, 3.0)]
        assert res.in_use == 0 and res.queue_length == 0

    def test_fast_path_release_wakes_queued_requester(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def fast():
            yield from res.use(1.0)  # takes the no-contention path
            log.append(("fast", sim.now))

        def queued():
            yield sim.timeout(0.1)
            req = res.request()  # classic request while fast() holds
            yield req
            log.append(("queued", sim.now))
            res.release(req)

        sim.process(fast())
        sim.process(queued())
        sim.run()
        assert log == [("fast", 1.0), ("queued", 1.0)]

    def test_interrupt_during_fast_path_hold_releases_slot(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            try:
                yield from res.use(10.0)
            except Interrupt:
                pass

        p = sim.process(holder())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt()

        sim.process(interrupter())
        sim.run()
        assert res.in_use == 0

    def test_busy_accounting_identical_on_both_paths(self, sim):
        res = Resource(sim, capacity=2)

        def worker():
            yield from res.use(1.0)

        sim.process(worker())
        sim.process(worker())
        sim.process(worker())  # third one queues behind capacity 2
        sim.run()
        assert res.busy_time() == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# timeout_at: absolute-deadline scheduling
# ---------------------------------------------------------------------------


class TestTimeoutAt:
    def test_fires_at_absolute_time(self, sim):
        at = []

        def waiter():
            yield sim.timeout(1.0)
            ev = sim.timeout_at(3.5, value="deadline")
            got = yield ev
            at.append((sim.now, got))

        sim.process(waiter())
        sim.run()
        assert at == [(3.5, "deadline")]

    def test_past_deadline_rejected(self, sim):
        def waiter():
            yield sim.timeout(2.0)
            with pytest.raises(ValueError):
                sim.timeout_at(1.0)
            yield sim.timeout(0.0)

        sim.process(waiter())
        sim.run()

    def test_interleaves_with_relative_timeouts(self, sim):
        order = []

        def a():
            yield sim.timeout_at(2.0)
            order.append("abs")

        def b():
            yield sim.timeout(1.0)
            order.append("rel-1")
            yield sim.timeout(1.5)
            order.append("rel-2.5")

        sim.process(a())
        sim.process(b())
        sim.run()
        assert order == ["rel-1", "abs", "rel-2.5"]
