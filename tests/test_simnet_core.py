"""Tests for the discrete-event kernel: events, timeouts, processes."""

import pytest

from repro.simnet import Interrupt, Process, SimulationError


class TestEvent:
    def test_pending_value_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.processed and ev.ok and ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for d in (3.0, 1.0, 2.0):
            sim.timeout(d).add_callback(lambda e, d=d: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_time_fifo(self, sim):
        order = []
        for i in range(5):
            sim.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return "done"

        assert sim.run_process(body()) == "done"
        assert sim.now == 1.0

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)

    def test_yield_from_composition(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        assert sim.run_process(outer()) == 20
        assert sim.now == 2.0

    def test_exception_propagates(self, sim):
        def body():
            yield sim.timeout(0.5)
            raise ValueError("boom")

        proc = sim.process(body())
        sim.run()
        assert proc.done and not proc.ok
        with pytest.raises(ValueError, match="boom"):
            _ = proc.result

    def test_result_before_done_raises(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        with pytest.raises(SimulationError):
            _ = proc.result

    def test_failed_event_throws_into_process(self, sim):
        ev = sim.event()

        def body():
            try:
                yield ev
            except RuntimeError as err:
                return f"caught {err}"

        proc = sim.process(body())
        ev.fail(RuntimeError("remote"))
        sim.run()
        assert proc.result == "caught remote"

    def test_yield_non_event_raises(self, sim):
        def body():
            yield 42

        proc = sim.process(body())
        sim.run()
        assert not proc.ok
        with pytest.raises(SimulationError):
            _ = proc.result

    def test_wait_on_other_process(self, sim):
        def worker():
            yield sim.timeout(3.0)
            return "worker-result"

        def boss():
            w = sim.process(worker())
            value = yield w
            return value

        assert sim.run_process(boss()) == "worker-result"

    def test_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as intr:
                return f"interrupted:{intr.cause}"

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt("wakeup")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run(until=2.0)  # the abandoned timeout stays scheduled (no
        # cancellation in this kernel), so bound the drain instead
        assert target.done
        assert target.result == "interrupted:wakeup"

    def test_interrupt_finished_process_rejected(self, sim):
        def body():
            yield sim.timeout(0.1)

        proc = sim.process(body())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_run_process_detects_deadlock(self, sim):
        ev = sim.event()  # never triggered

        def body():
            yield ev

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(body())

    def test_yield_already_fired_event(self, sim):
        ev = sim.event()
        ev.succeed(99)
        sim.run()

        def body():
            value = yield ev
            return value

        assert sim.run_process(body()) == 99

    def test_hot_loop_does_not_recurse(self, sim):
        """10k immediate resumptions must not blow the stack."""

        def body():
            ev = sim.event()
            ev.succeed(None)
            sim.run(until=sim.now)
            for _ in range(10_000):
                yield sim.timeout(0.0)
            return True

        assert sim.run_process(body()) is True


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        events = [sim.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        combined = sim.all_of(events)
        sim.run()
        assert combined.value == [1.0, 3.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty(self, sim):
        combined = sim.all_of([])
        sim.run()
        assert combined.value == []

    def test_all_of_fails_fast(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])
        bad.fail(ValueError("x"), delay=1.0)
        sim.run()
        assert not combined.ok

    def test_any_of_first_wins(self, sim):
        events = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        combined = sim.any_of(events)

        def body():
            result = yield combined
            return result

        assert sim.run_process(body()) == (1, "fast")

    def test_any_of_requires_events(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])


class TestSimulator:
    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_run_until(self, sim):
        hits = []
        for d in (1.0, 2.0, 3.0):
            sim.timeout(d).add_callback(lambda e, d=d: hits.append(d))
        sim.run(until=2.0)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_processed == 7
