"""Fault injection, RPC retry/backoff, idempotency, and replica failover.

These tests exercise the chaos stack end to end at small scale:
``FaultPlan`` → ``FaultInjector`` (drops / duplicates / crashes /
partitions) → hardened ``RpcClient`` (timeout, backoff, retry budget,
idempotency tokens) → container write failover and post-restart replay.
"""

from __future__ import annotations

import pytest

from repro.config import RetryPolicy, ares_like
from repro.core import HCL
from repro.fabric import Cluster
from repro.fabric.faults import (
    FaultPlan,
    LinkFaults,
    PLAN_NAMES,
    make_plan,
)
from repro.rpc.future import TargetUnavailable

from tests.conftest import run_rank0


def _chaos_hcl(nodes=2, procs=4, seed=7, plan=None, retry=None):
    spec = ares_like(nodes=nodes, procs_per_node=procs, seed=seed)
    if retry is not None:
        from dataclasses import replace

        spec = spec.scaled(cost=replace(spec.cost, retry=retry))
    cluster = Cluster(spec)
    injector = cluster.install_faults(plan or FaultPlan())
    return HCL(cluster), injector


class TestPlans:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            LinkFaults(drop=1.5)
        with pytest.raises(ValueError):
            LinkFaults(drop=0.6, dup=0.3, delay=0.2)

    def test_make_plan_names(self):
        for name in PLAN_NAMES:
            plan = make_plan(name, nodes=4)
            assert plan.name == name

    def test_make_plan_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_plan("hurricane", nodes=4)

    def test_double_install_rejected(self):
        cluster = Cluster(ares_like(nodes=2, procs_per_node=2))
        cluster.install_faults(FaultPlan())
        with pytest.raises(RuntimeError):
            cluster.install_faults(FaultPlan())


class TestDropRetry:
    def test_lossy_link_operations_still_complete(self):
        """A 20%-lossy fabric: every op lands thanks to retransmission."""
        plan = FaultPlan(default=LinkFaults(drop=0.2))
        h, injector = _chaos_hcl(plan=plan)
        m = h.unordered_map("m")

        def body():
            for i in range(40):
                ok = yield from m.insert(1 * h.spec.procs_per_node, (1, i), i)
                assert ok
            found = 0
            for i in range(40):
                value, hit = yield from m.find(h.spec.procs_per_node, (1, i))
                found += bool(hit and value == i)
            return found

        # rank on node 1, keys spread over both nodes => remote traffic
        assert run_rank0(h, body()) == 40
        assert injector.drops.value > 0
        client = h.client(1)
        assert client.retries.value > 0

    def test_fair_weather_runs_deterministic(self):
        """With no plan installed the classic protocol runs (and repeats)
        without any retry machinery on the timeline."""
        def run_once():
            spec = ares_like(nodes=2, procs_per_node=2, seed=3)
            h = HCL(Cluster(spec))
            m = h.unordered_map("m")

            def body(rank):
                for i in range(10):
                    yield from m.insert(rank, (rank, i), i)

            h.run_ranks(body)
            assert h.client(0).retries.value == 0
            assert h.client(1).retries.value == 0
            return h.now

        assert run_once() == run_once()


class TestIdempotency:
    def test_duplicated_upserts_apply_once(self):
        """A duplicating fabric must not double-count upserts."""
        plan = FaultPlan(default=LinkFaults(dup=0.5))
        h, injector = _chaos_hcl(plan=plan)
        m = h.unordered_map("m")
        # caller on the node that does NOT own the key => remote traffic
        home = m.partition_for("hot-key").node_id
        remote_rank = (1 - home) * h.spec.procs_per_node

        def body():
            for _ in range(30):
                yield from m.upsert(remote_rank, "hot-key", 1)
            value, found = yield from m.find(remote_rank, "hot-key")
            return value, found

        value, found = run_rank0(h, body())
        assert found and value == 30
        assert injector.dups.value > 0
        suppressed = sum(
            s.duplicates_suppressed.value for s in h._servers.values()
        )
        assert suppressed > 0

    def test_retry_after_lost_completion_applies_once(self):
        """Response-path loss forces retransmits of already-executed
        requests; the server must serve the recorded envelope instead of
        re-running the mutation."""
        plan = FaultPlan(default=LinkFaults(drop=0.25))
        h, _injector = _chaos_hcl(plan=plan, seed=11)
        m = h.unordered_map("m")
        home = m.partition_for("counter").node_id
        remote_rank = (1 - home) * h.spec.procs_per_node

        def body():
            for _ in range(25):
                yield from m.upsert(remote_rank, "counter", 1)
            value, found = yield from m.find(remote_rank, "counter")
            return value, found

        value, found = run_rank0(h, body())
        assert found and value == 25


class TestExhaustion:
    def test_target_unavailable_after_budget(self):
        """Unreplicated container + dead node => TargetUnavailable, which
        is still a ConnectionError for existing handlers."""
        h, _injector = _chaos_hcl(
            retry=RetryPolicy(timeout=20e-6, max_retries=2,
                              backoff_base=5e-6, backoff_max=20e-6)
        )
        m = h.unordered_map("m", partitions=2)
        h.cluster.node(1).fail()
        part1 = m.partitions[1]
        key = next(
            k for k in range(1000) if m.partition_for(k) is part1
        )

        def body():
            yield from m.insert(0, key, 1)

        with pytest.raises(TargetUnavailable) as excinfo:
            run_rank0(h, body())
        assert isinstance(excinfo.value, ConnectionError)
        assert excinfo.value.attempts == 3
        assert h.client(0).exhausted.value > 0


class TestCrashFailover:
    def _failover_map(self, h):
        return h.unordered_map(
            "m", partitions=2, replication=1, write_failover=True
        )

    def test_write_failover_and_replay_on_restart(self):
        """Writes during a crash land on the replica, get acked, and are
        replayed onto the primary after its restart."""
        h, injector = _chaos_hcl(
            retry=RetryPolicy(timeout=20e-6, max_retries=2,
                              backoff_base=5e-6, backoff_max=20e-6)
        )
        m = self._failover_map(h)
        part1 = m.partitions[1]
        keys = [k for k in range(1000) if m.partition_for(k) is part1][:5]
        h.cluster.node(1).fail()

        def storm():
            for k in keys:
                ok = yield from m.insert(0, k, k * 10)
                assert ok

        run_rank0(h, storm())
        assert m.failover_writes.value == len(keys)
        assert not m.partitions[1].structure  # primary missed them
        # restart fires the replay hook; drain the replay processes
        h.cluster.node(1).recover()
        h.cluster.run()
        assert m.replayed_writes.value == len(keys)

        def verify():
            results = []
            for k in keys:
                value, found = yield from m.find(0, k)
                results.append((value, found))
            return results

        assert run_rank0(h, verify()) == [(k * 10, True) for k in keys]

    def test_replica_serves_reads_while_primary_down(self):
        h, injector = _chaos_hcl(
            retry=RetryPolicy(timeout=20e-6, max_retries=1,
                              backoff_base=5e-6, backoff_max=10e-6)
        )
        m = self._failover_map(h)
        part1 = m.partitions[1]
        key = next(k for k in range(1000) if m.partition_for(k) is part1)

        def seed_phase():
            yield from m.insert(0, key, 42)

        run_rank0(h, seed_phase())
        h.cluster.node(1).fail()

        def read_phase():
            value, found = yield from m.find(0, key)
            return value, found

        assert run_rank0(h, read_phase()) == (42, True)
        assert m.failover_reads.value == 1

    def test_scheduled_crash_and_restart(self):
        """A FaultPlan crash window takes the node down on the timeline and
        the injector restarts it, firing recovery hooks."""
        plan = FaultPlan(crashes=[(1, 100e-6, 400e-6)])
        h, injector = _chaos_hcl(plan=plan)
        node1 = h.cluster.node(1)
        seen = []

        def watcher():
            yield h.sim.timeout(200e-6)
            seen.append(("mid", node1.alive))
            yield h.sim.timeout(300e-6)
            seen.append(("after", node1.alive))

        run_rank0(h, watcher())
        assert seen == [("mid", False), ("after", True)]
        assert injector.crashes.value == 1
        assert injector.restarts.value == 1


class TestPartition:
    def test_partition_drops_cross_group_traffic(self):
        plan = FaultPlan(partitions=[(0.0, 1.0, [[0], [1]])])
        h, injector = _chaos_hcl(
            plan=plan,
            retry=RetryPolicy(timeout=20e-6, max_retries=1,
                              backoff_base=5e-6, backoff_max=10e-6),
        )
        m = h.unordered_map("m", partitions=2)
        part1 = m.partitions[1]
        key = next(k for k in range(1000) if m.partition_for(k) is part1)

        def body():
            yield from m.insert(0, key, 1)

        with pytest.raises(ConnectionError):
            run_rank0(h, body())
        assert injector.partition_drops.value > 0

    def test_heal_restores_service(self):
        plan = FaultPlan(crashes=[(1, 0.0, None)])  # down until heal
        h, injector = _chaos_hcl(
            plan=plan,
            retry=RetryPolicy(timeout=20e-6, max_retries=1,
                              backoff_base=5e-6, backoff_max=10e-6),
        )
        m = h.unordered_map("m", partitions=2)
        part1 = m.partitions[1]
        key = next(k for k in range(1000) if m.partition_for(k) is part1)

        def body():
            yield from m.insert(0, key, 1)

        with pytest.raises(ConnectionError):
            run_rank0(h, body())
        injector.heal()
        assert h.cluster.node(1).alive

        def retry_body():
            ok = yield from m.insert(0, key, 1)
            return ok

        assert run_rank0(h, retry_body()) is True


class TestSoakDeterminism:
    def test_same_seed_same_report(self):
        from repro.harness.chaos import run_chaos_soak

        kwargs = dict(plan="mixed", seed=5, nodes=2, procs_per_node=2,
                      keys_per_rank=8, kmers_per_rank=6)
        a = run_chaos_soak(**kwargs)
        b = run_chaos_soak(**kwargs)
        assert a == b
        assert a["ok"]
        assert a["injected_total"] > 0

    def test_soak_reports_zero_lost_acked_writes(self):
        from repro.harness.chaos import run_chaos_soak

        for plan in ("drop-heavy", "crash-heavy", "partition"):
            report = run_chaos_soak(plan=plan, seed=0, nodes=3,
                                    procs_per_node=2, keys_per_rank=10,
                                    kmers_per_rank=8)
            assert report["lost_acked_writes"] == 0, report
            assert report["duplicate_mutations"] == 0, report
            assert report["injected_total"] > 0
