"""Tests for the distributed scan API and collectives on rank subsets."""

import pytest

from repro.core import Collectives


class TestScan:
    def test_scan_single_batch(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])

        def body():
            for i in range(5):
                yield from m.insert(0, i, str(i))
            items, cursor = yield from m.scan(0, 0, cursor=0, count=100)
            return items, cursor

        items, cursor = drive(hcl, body())
        assert dict(items) == {i: str(i) for i in range(5)}
        assert cursor == -1  # exhausted in one batch

    def test_scan_resumes_from_cursor(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=1, nodes=[0],
                              initial_buckets=64)

        def body():
            for i in range(20):
                yield from m.insert(0, i, i)
            all_items = []
            cursor = 0
            batches = 0
            while cursor != -1:
                items, cursor = yield from m.scan(0, 0, cursor, count=6)
                all_items.extend(items)
                batches += 1
            return all_items, batches

        items, batches = drive(hcl, body())
        assert dict(items) == {i: i for i in range(20)}
        assert batches > 1  # genuinely paginated

    def test_collect_all_across_partitions(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4)

        def write(rank):
            yield from m.insert(rank, rank, rank * 3)

        hcl4.run_ranks(write)

        def read(rank):
            return (yield from m.collect_all(rank))

        proc = hcl4.cluster.spawn(read(0))
        hcl4.cluster.run()
        assert dict(proc.result) == {r: r * 3 for r in range(16)}

    def test_scan_empty_partition(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])

        def body():
            return (yield from m.scan(0, 0))

        items, cursor = drive(hcl, body())
        assert items == [] and cursor == -1

    def test_scan_is_read_only(self, hcl4):
        """Scans must not trigger replication fan-out."""
        m = hcl4.unordered_map("m", partitions=4, replication=1)

        def body(rank):
            yield from m.collect_all(rank)

        hcl4.run_ranks(body, ranks=range(1))
        hcl4.cluster.run()
        assert m.total_entries() == 0


class TestCollectivesSubsets:
    def test_subset_communicator(self, hcl):
        """A Collectives instance over half the ranks works independently."""
        team = Collectives(hcl, name="team", ranks=range(0, 4))
        results = {}

        def member(rank):
            results[rank] = yield from team.all_reduce(rank, rank)

        def outsider(rank):
            yield hcl.sim.timeout(0)

        procs = hcl.cluster.spawn_ranks(member, ranks=range(0, 4))
        procs += hcl.cluster.spawn_ranks(outsider, ranks=range(4, 8))
        hcl.cluster.run()
        for p in procs:
            p.result
        assert results == {r: 6 for r in range(4)}

    def test_two_disjoint_communicators(self, hcl):
        a = Collectives(hcl, name="a", ranks=range(0, 4))
        b = Collectives(hcl, name="b", ranks=range(4, 8))
        results = {}

        def member_a(rank):
            results[rank] = yield from a.all_reduce(rank, 1)

        def member_b(rank):
            results[rank] = yield from b.all_reduce(rank, 10)

        hcl.cluster.spawn_ranks(member_a, ranks=range(0, 4))
        hcl.cluster.spawn_ranks(member_b, ranks=range(4, 8))
        hcl.cluster.run()
        assert all(results[r] == 4 for r in range(4))
        assert all(results[r] == 40 for r in range(4, 8))

    def test_broadcast_nontrivial_root(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.broadcast(
                rank, value="from-5" if rank == 5 else None, root=5
            )

        hcl.run_ranks(body)
        assert all(v == "from-5" for v in got.values())

    def test_reduce_with_floats(self, hcl):
        coll = Collectives(hcl)
        got = {}

        def body(rank):
            got[rank] = yield from coll.reduce(rank, 0.5, root=0)

        hcl.run_ranks(body)
        assert got[0] == pytest.approx(4.0)
