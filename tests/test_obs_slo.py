"""Tests for multi-window burn-rate SLO monitoring."""

import pytest

from repro.obs import (
    MetricsRegistry, SLOMonitor, SLORule, counter_sli, latency_sli,
)
from repro.simnet import EventLog
from repro.simnet.stats import Histogram


class TestSLIProbes:
    def test_counter_sli_adds_bad_back_into_total(self):
        reg = MetricsRegistry()
        reg.counter("s/errors").add(2)
        reg.counter("s/gaveup").add(3)
        reg.counter("s/completed").add(95)
        probe = counter_sli(reg, bad=("s/errors", "s/gaveup"),
                            total=("s/completed",))
        assert probe() == (5.0, 100.0)

    def test_counter_sli_tolerates_missing_counters(self):
        probe = counter_sli(MetricsRegistry(), bad=("nope",), total=("nada",))
        assert probe() == (0.0, 0.0)

    def test_latency_sli_counts_over_threshold(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.5, 1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        probe = latency_sli(reg, "lat", 2.0)
        assert probe() == (3.0, 5.0)  # 2.0, 4.0, 8.0

    def test_latency_sli_missing_histogram(self):
        probe = latency_sli(MetricsRegistry(), "lat", 1.0)
        assert probe() == (0.0, 0.0)


class TestHistogramCountAbove:
    def test_bucket_boundary_exact(self):
        h = Histogram("h")
        for v in (0.5, 1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        assert h.count_above(2.0) == 3
        assert h.count_above(0.0) == 5
        assert h.count_above(100.0) == 0

    def test_zeros_excluded(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(4.0)
        assert h.count_above(1.0) == 1

    def test_empty_and_validation(self):
        h = Histogram("h")
        assert h.count_above(1.0) == 0
        with pytest.raises(ValueError):
            h.count_above(-1.0)


def _scripted_rule(fractions, threshold=10.0, target=0.999,
                   short=2.0, long=4.0):
    """A rule fed a scripted cumulative (bad, total) trajectory."""
    state = {"bad": 0.0, "total": 0.0, "i": 0}

    def sli():
        return state["bad"], state["total"]

    rule = SLORule("r", sli, target=target, short_window=short,
                   long_window=long, threshold=threshold)

    def advance(bad, total):
        state["bad"] += bad
        state["total"] += total

    return rule, advance


class TestSLORule:
    def test_validation(self):
        sli = lambda: (0.0, 0.0)
        with pytest.raises(ValueError):
            SLORule("r", sli, target=1.0, short_window=1, long_window=2)
        with pytest.raises(ValueError):
            SLORule("r", sli, target=0.9, short_window=0, long_window=2)
        with pytest.raises(ValueError):
            SLORule("r", sli, target=0.9, short_window=4, long_window=2)
        with pytest.raises(ValueError):
            SLORule("r", sli, target=0.9, short_window=1, long_window=2,
                    threshold=0)

    def test_burn_math(self):
        """2% bad on a 0.1% budget = burn 20 in both windows."""
        rule, advance = _scripted_rule(None)
        rule.observe(0.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            advance(bad=2.0, total=100.0)
            state = rule.observe(t)
        assert state["short_burn"] == pytest.approx(0.02 / 0.001)
        assert state["long_burn"] == pytest.approx(0.02 / 0.001)
        assert state["breach"]

    def test_short_blip_does_not_breach_long_window(self):
        """A single bad tick after a long clean stretch: short window
        burns hot but the long window holds the alert back."""
        rule, advance = _scripted_rule(None, threshold=10.0,
                                       short=1.0, long=8.0)
        rule.observe(0.0)
        for t in range(1, 9):
            advance(bad=0.0, total=100.0)
            rule.observe(float(t))
        advance(bad=3.0, total=100.0)  # one 3%-bad tick
        state = rule.observe(9.0)
        assert state["short_burn"] >= 10.0
        assert state["long_burn"] < 10.0
        assert not state["breach"]

    def test_no_traffic_means_no_burn(self):
        rule, _advance = _scripted_rule(None)
        for t in (0.0, 1.0, 2.0):
            state = rule.observe(t)
        assert state["short_burn"] == 0.0 and not state["breach"]

    def test_history_trimmed_to_long_window(self):
        rule, advance = _scripted_rule(None, short=1.0, long=3.0)
        for t in range(50):
            advance(bad=0.0, total=10.0)
            rule.observe(float(t))
        # One sample older than the cutoff is kept as the delta base.
        assert len(rule._history) <= 6


class TestSLOMonitor:
    def test_alerts_edge_triggered_with_clear(self, sim):
        rule, advance = _scripted_rule(None, threshold=5.0,
                                       short=1.0, long=2.0)
        log = EventLog(sim)
        mon = SLOMonitor([rule], event_log=log)
        mon.tick(0.0)
        # Two hot ticks (2% bad, burn 20): alert once.
        for t in (1.0, 2.0):
            advance(bad=2.0, total=100.0)
            mon.tick(t)
        # Recovery: clean ticks push both windows under threshold.
        for t in (3.0, 4.0, 5.0):
            advance(bad=0.0, total=100.0)
            mon.tick(t)
        kinds = [kind for _t, kind, _p in log.entries]
        assert kinds == ["slo.alert", "slo.clear"]
        assert len(mon.alerts) == 1
        assert mon.alerts[0]["rule"] == "r"
        summary = mon.summary()
        assert summary["alerts"] == 1
        assert summary["rules"][0]["alerts"] == 1
        assert summary["rules"][0]["firing"] is False

    def test_deterministic_alert_stream(self, sim):
        def run():
            rule, advance = _scripted_rule(None, threshold=5.0,
                                           short=1.0, long=2.0)
            log = EventLog(sim)
            mon = SLOMonitor([rule], event_log=log)
            script = [(0.0, 0.0), (2.0, 100.0), (2.0, 100.0),
                      (0.0, 100.0), (5.0, 100.0), (0.0, 100.0)]
            for t, (bad, total) in enumerate(script):
                advance(bad, total)
                mon.tick(float(t))
            return [(t, kind, p) for t, kind, p in log.entries]

        assert run() == run()
