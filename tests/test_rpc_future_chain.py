"""Promise-style future chaining (``then``/``catch``) and its composition
with the kernel's AnyOf/AllOf combinators.

The regression this file pins down: chaining onto an *already-completed*
future (e.g. after the simulation has drained) used to strand the chained
future on a kernel event that would never be processed, silently
swallowing any exception the continuation raised.  Chains now settle
inline, so the error must surface at ``.result``.
"""

from __future__ import annotations

import pytest

from repro.fabric import Cluster
from repro.rpc import RpcClient, RpcServer
from repro.rpc.future import RemoteError, RPCFuture
from repro.simnet import Simulator


@pytest.fixture
def rig(small_spec):
    cluster = Cluster(small_spec)
    servers = {i: RpcServer(cluster.node(i)) for i in range(cluster.num_nodes)}
    client = RpcClient(cluster, 0, servers)
    return cluster, servers, client


class TestPostRunChaining:
    """Chains built AFTER the producing run completed."""

    def test_raising_then_chain_surfaces_at_result(self, rig):
        """Satellite regression: an exception raised inside a continuation
        attached to a completed future must surface at ``.result``."""
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 10)
        fut = client.invoke(1, "n")
        cluster.run()
        assert fut.done
        chained = fut.then(lambda v: v + 1).then(lambda v: 1 // 0)
        assert chained.done
        with pytest.raises(ZeroDivisionError):
            _ = chained.result

    def test_error_skips_later_thens(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 10)
        fut = client.invoke(1, "n")
        cluster.run()
        ran = []
        chained = (fut.then(lambda v: 1 // 0)
                      .then(lambda v: ran.append(v) or v))
        assert ran == []
        with pytest.raises(ZeroDivisionError):
            _ = chained.result

    def test_post_run_then_returns_value(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 10)
        fut = client.invoke(1, "n")
        cluster.run()
        assert fut.then(lambda v: v * 3).result == 30

    def test_waiting_on_post_run_chain_resumes(self, rig):
        """A wait() on a chain built post-settle must still resume —
        the lazy event materializes as a completed event."""
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 7)
        fut = client.invoke(1, "n")
        cluster.run()
        chained = fut.then(lambda v: v + 1)

        def body():
            value = yield chained.wait()
            return value

        assert cluster.sim.run_process(body()) == 8


class TestCatch:
    def test_catch_recovers_remote_error(self, rig):
        cluster, servers, client = rig

        def bad(ctx):
            raise ValueError("boom")

        servers[1].bind("bad", bad)
        fut = client.invoke(1, "bad").catch(lambda err: "recovered")
        cluster.run()
        assert fut.result == "recovered"

    def test_catch_passes_success_through(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx: 5)
        fut = client.invoke(1, "n").catch(lambda err: -1)
        cluster.run()
        assert fut.result == 5

    def test_catch_receives_the_exception(self, rig):
        cluster, servers, client = rig

        def bad(ctx):
            raise ValueError("boom")

        servers[1].bind("bad", bad)
        seen = []
        fut = client.invoke(1, "bad").catch(lambda err: seen.append(err))
        cluster.run()
        _ = fut.result
        assert len(seen) == 1 and isinstance(seen[0], RemoteError)

    def test_raising_catch_fails_the_chain(self, rig):
        cluster, servers, client = rig

        def bad(ctx):
            raise ValueError("boom")

        servers[1].bind("bad", bad)
        fut = client.invoke(1, "bad").catch(lambda err: 1 // 0)
        cluster.run()
        with pytest.raises(ZeroDivisionError):
            _ = fut.result

    def test_then_after_catch_continues(self, rig):
        cluster, servers, client = rig

        def bad(ctx):
            raise ValueError("boom")

        servers[1].bind("bad", bad)
        fut = (client.invoke(1, "bad")
               .catch(lambda err: 100)
               .then(lambda v: v + 1))
        cluster.run()
        assert fut.result == 101


class TestCombinatorComposition:
    def test_all_of_over_chained_futures(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx, i: i)
        futs = [client.invoke(1, "n", (i,)).then(lambda v: v * 10)
                for i in range(4)]

        def body():
            values = yield cluster.sim.all_of([f.wait() for f in futs])
            return values

        assert cluster.sim.run_process(body()) == [0, 10, 20, 30]

    def test_any_of_returns_first_chained_result(self, rig):
        cluster, servers, client = rig

        def slow(ctx, d):
            yield ctx.sim.timeout(d)
            return d

        servers[1].bind("slow", slow)
        fast = client.invoke(1, "slow", (1e-6,)).then(lambda v: "fast")
        lag = client.invoke(1, "slow", (1e-2,)).then(lambda v: "lag")

        def body():
            index, value = yield cluster.sim.any_of(
                [fast.wait(), lag.wait()]
            )
            return index, value

        assert cluster.sim.run_process(body()) == (0, "fast")

    def test_all_of_fails_on_chained_error(self, rig):
        cluster, servers, client = rig
        servers[1].bind("n", lambda ctx, i: i)
        good = client.invoke(1, "n", (1,))
        bad = client.invoke(1, "n", (2,)).then(lambda v: 1 // 0)

        def body():
            yield cluster.sim.all_of([good.wait(), bad.wait()])

        with pytest.raises(ZeroDivisionError):
            cluster.sim.run_process(body())


class TestSettleDiscipline:
    def test_double_settle_rejected(self):
        fut = RPCFuture(Simulator(), "x")
        fut._complete(1)
        with pytest.raises(RuntimeError, match="already settled"):
            fut._complete(2)

    def test_result_before_settle_raises(self):
        fut = RPCFuture(Simulator(), "x")
        with pytest.raises(RuntimeError, match="not complete"):
            _ = fut.result

    def test_then_on_pending_future_runs_at_settle(self):
        sim = Simulator()
        fut = RPCFuture(sim, "x")
        chained = fut.then(lambda v: v + 1)
        assert not chained.done
        fut._complete(41)
        assert chained.done and chained.result == 42
