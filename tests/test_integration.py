"""End-to-end integration tests: the paper's claims at test scale."""


from repro.bcl import BCL
from repro.config import ares_like
from repro.core import HCL
from repro.harness import Blob


class TestHeadlineClaim:
    """'HCL programs are 2x to 12x faster compared to BCL' (abstract)."""

    def test_remote_insert_speedup_in_paper_band(self):
        """Fig 1 shape: procedural RPC beats client-side CAS by ~2-5x."""
        ops, nclients, size = 256, 16, 4096
        spec = ares_like(nodes=2, procs_per_node=nclients)

        bcl = BCL(spec)
        bm = bcl.hashmap("kv", capacity_per_partition=8 * ops * nclients,
                         entry_size=size, partitions=1)
        bm._partition_nodes = [1]

        def bcl_body(rank):
            for i in range(ops):
                yield from bm.insert(rank, (rank, i), Blob(size))

        bcl.cluster.spawn_ranks(bcl_body, ranks=range(nclients))
        bcl.cluster.run()
        t_bcl = bcl.sim.now

        hcl = HCL(spec)
        hm = hcl.unordered_map("kv", partitions=1, nodes=[1],
                               initial_buckets=8 * ops * nclients)

        def hcl_body(rank):
            for i in range(ops):
                yield from hm.insert(rank, (rank, i), Blob(size))

        hcl.run_ranks(hcl_body, ranks=range(nclients))
        t_hcl = hcl.now

        speedup = t_bcl / t_hcl
        assert 1.5 < speedup < 12.0, f"speedup {speedup:.2f} out of paper band"

    def test_intra_node_bypass_dominates(self):
        """Fig 5a: co-located HCL ops use shared memory and crush BCL."""
        ops, nclients, size = 128, 8, 64 * 1024
        spec = ares_like(nodes=1, procs_per_node=nclients)

        hcl = HCL(spec)
        hm = hcl.unordered_map("kv", partitions=1, nodes=[0],
                               initial_buckets=8 * ops * nclients)

        def hcl_body(rank):
            for i in range(ops):
                yield from hm.insert(rank, (rank, i), Blob(size))

        hcl.run_ranks(hcl_body)
        t_hcl = hcl.now

        bcl = BCL(spec)
        bm = bcl.hashmap("kv", capacity_per_partition=8 * ops * nclients,
                         entry_size=size, partitions=1)

        def bcl_body(rank):
            for i in range(ops):
                yield from bm.insert(rank, (rank, i), Blob(size))

        bcl.cluster.spawn_ranks(bcl_body)
        bcl.cluster.run()
        t_bcl = bcl.sim.now

        assert t_bcl / t_hcl > 2.0  # paper: 2x-20x for intra-node inserts


class TestMixedWorkload:
    def test_many_containers_coexist(self, hcl4):
        m = hcl4.unordered_map("m")
        om = hcl4.map("om")
        s = hcl4.unordered_set("s")
        q = hcl4.queue("q", home_node=1)
        pq = hcl4.priority_queue("pq", home_node=2, dims=4, base=16)

        def body(rank):
            yield from m.insert(rank, rank, rank * 2)
            yield from om.insert(rank, f"{rank:04d}", rank)
            yield from s.insert(rank, rank % 4)
            yield from q.push(rank, rank)
            yield from pq.push(rank, 100 - rank, rank)
            value, found = yield from m.find(rank, rank)
            assert found and value == rank * 2

        hcl4.run_ranks(body)
        assert m.total_entries() == 16
        assert om.total_entries() == 16
        assert s.total_entries() == 4
        assert q.total_entries() == 16
        assert pq.total_entries() == 16

        def drain(rank):
            entry, ok = yield from pq.pop(rank)
            assert ok and entry[0] == 85  # min priority = 100 - 15
            value, ok = yield from q.pop(rank)
            assert ok

        hcl4.run_ranks(drain, ranks=range(1))

    def test_find_heavy_workload(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4)

        def seed_body(rank):
            for i in range(10):
                yield from m.insert(rank, (rank, i), i)

        hcl4.run_ranks(seed_body)
        hits = []

        def reader(rank):
            ok = 0
            for other in range(hcl4.spec.total_procs):
                for i in range(10):
                    _v, found = yield from m.find(rank, (other, i))
                    ok += found
            hits.append(ok)

        hcl4.run_ranks(reader, ranks=range(4))
        assert all(h == 160 for h in hits)

    def test_deterministic_sim_time(self, small_spec):
        """Identical seeds produce bit-identical simulated time."""

        def run():
            hcl = HCL(small_spec)
            m = hcl.unordered_map("m", partitions=2)

            def body(rank):
                for i in range(20):
                    yield from m.insert(rank, (rank, i), Blob(1024))

            hcl.run_ranks(body)
            return hcl.now

        assert run() == run()


class TestScalingTrend:
    def test_more_partitions_more_throughput(self):
        """Fig 6a: multi-partition DDS scale with partition count."""

        def run(nodes):
            spec = ares_like(nodes=nodes, procs_per_node=8)
            hcl = HCL(spec)
            m = hcl.unordered_map("m", partitions=nodes,
                                  initial_buckets=1 << 14)

            def body(rank):
                for i in range(24):
                    yield from m.insert(rank, (rank, i), Blob(4096))

            hcl.run_ranks(body)
            total_ops = spec.total_procs * 24
            return total_ops / hcl.now

        t2, t8 = run(2), run(8)
        assert t8 > t2 * 1.5  # clear scaling, not flat

    def test_queue_throughput_saturates(self):
        """Fig 6c: a single-partition queue plateaus as clients grow."""

        def run(procs):
            spec = ares_like(nodes=2, procs_per_node=procs)
            hcl = HCL(spec)
            q = hcl.queue("q", home_node=0)

            def body(rank):
                for i in range(16):
                    yield from q.push(rank, Blob(4096))

            hcl.run_ranks(body)
            return (spec.total_procs * 16) / hcl.now

        small, big = run(4), run(32)
        # Throughput grows sub-linearly: 8x clients must NOT give 8x ops/s.
        assert big < small * 8
