"""Tests for the scheduler app, batched container ops, and k-mer filtering."""

import pytest

from repro.apps import make_task_graph, run_scheduler, synthesize_genome
from repro.apps.kmer import run_kmer_counting
from repro.apps.scheduler import Task
from repro.config import ares_like


@pytest.fixture(scope="module")
def sched_spec():
    return ares_like(nodes=2, procs_per_node=3, seed=1)


class TestTaskGraph:
    def test_dag_edges_point_backward(self):
        tasks = make_task_graph(count=50, seed=3)
        for t in tasks:
            assert all(d < t.task_id for d in t.deps)

    def test_priorities_dependency_consistent(self):
        tasks = make_task_graph(count=50, seed=3)
        by_id = {t.task_id: t for t in tasks}
        for t in tasks:
            assert all(by_id[d].priority < t.priority for d in t.deps)

    def test_deterministic(self):
        assert make_task_graph(seed=5) == make_task_graph(seed=5)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task(task_id=0, priority=1, duration=-1.0)
        with pytest.raises(ValueError):
            Task(task_id=0, priority=-1, duration=1.0)


class TestScheduler:
    def test_priority_policy_runs_all_tasks_once(self, sched_spec):
        tasks = make_task_graph(count=30, seed=4)
        result = run_scheduler(sched_spec, tasks, policy="priority")
        assert result.verified
        assert set(result.executions) == {t.task_id for t in tasks}

    def test_fifo_policy_correct(self, sched_spec):
        tasks = make_task_graph(count=30, seed=4)
        result = run_scheduler(sched_spec, tasks, policy="fifo")
        assert result.verified

    def test_dependencies_never_violated(self, sched_spec):
        tasks = make_task_graph(count=40, seed=9, max_deps=4)
        result = run_scheduler(sched_spec, tasks, policy="priority")
        assert result.verified
        by_id = {t.task_id: t for t in tasks}
        for task_id, (start, _end) in result.executions.items():
            for dep in by_id[task_id].deps:
                assert result.executions[dep][1] <= start + 1e-12

    def test_priority_beats_fifo_on_makespan(self, sched_spec):
        wins = 0
        for seed in (2, 7, 11):
            tasks = make_task_graph(count=40, seed=seed)
            rp = run_scheduler(sched_spec, tasks, policy="priority")
            rf = run_scheduler(sched_spec, tasks, policy="fifo")
            assert rp.verified and rf.verified
            wins += rp.makespan < rf.makespan
        assert wins >= 2  # priority scheduling wins consistently

    def test_unknown_policy_rejected(self, sched_spec):
        with pytest.raises(ValueError):
            run_scheduler(sched_spec, make_task_graph(5), policy="random")

    def test_independent_tasks_parallelize(self):
        spec = ares_like(nodes=2, procs_per_node=4, seed=1)
        tasks = [Task(task_id=i, priority=i + 1, duration=100e-6)
                 for i in range(8)]
        result = run_scheduler(spec, tasks, policy="priority")
        assert result.verified
        # 8 independent 100us tasks on 8 workers: far below 800us serial.
        assert result.makespan < 500e-6


class TestBatchOps:
    def test_batch_mixed_ops(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=2)

        def body():
            out = yield from m.batch(0, [
                ("insert", "a", 1),
                ("insert", "b", 2),
                ("upsert", "ctr", 10),
                ("find", "a"),
                ("erase", "b"),
                ("find", "b"),
            ])
            return out

        out = drive(hcl, body())
        assert out[0] is True and out[1] is True
        assert out[2] == 10
        assert tuple(out[3]) == (1, True)
        assert out[4] is True
        assert tuple(out[5]) == (None, False)

    def test_batch_preserves_order_across_partitions(self, hcl4):
        m = hcl4.unordered_map("m", partitions=4)

        def body(rank):
            keys = [f"key-{i}" for i in range(20)]
            yield from m.batch(rank, [("insert", k, i)
                                      for i, k in enumerate(keys)])
            finds = yield from m.batch(rank, [("find", k) for k in keys])
            assert [tuple(f) for f in finds] == [(i, True)
                                                 for i in range(20)]

        hcl4.run_ranks(body, ranks=range(1))

    def test_batch_fewer_invocations_than_ops(self, hcl):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])
        client = hcl.client(0)

        def body():
            yield from m.batch(0, [("insert", f"k{i}", i)
                                   for i in range(16)])

        proc = hcl.cluster.spawn(body())
        hcl.cluster.run()
        proc.result
        assert client.invocations.value == 1  # 16 ops, one invocation

    def test_nested_batch_rejected(self, hcl):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])

        def body():
            yield from m.batch(0, [("batch", "k", [])])

        proc = hcl.cluster.spawn(body())
        hcl.cluster.run()
        with pytest.raises(Exception, match="nested"):
            proc.result

    def test_unknown_subop_rejected(self, hcl):
        m = hcl.unordered_map("m", partitions=1, nodes=[1])

        def body():
            yield from m.batch(0, [("explode", "k")])

        proc = hcl.cluster.spawn(body())
        hcl.cluster.run()
        with pytest.raises(Exception, match="explode"):
            proc.result

    def test_batch_faster_than_sequential(self, small_spec):
        from repro.core import HCL

        def run(batched):
            hcl = HCL(small_spec)
            m = hcl.unordered_map("m", partitions=1, nodes=[1])

            def body(rank):
                ops = [("insert", (rank, i), i) for i in range(24)]
                if batched:
                    yield from m.batch(rank, ops)
                else:
                    for _op, key, value in ops:
                        yield from m.insert(rank, key, value)

            hcl.run_ranks(body, ranks=range(4))
            return hcl.now

        assert run(batched=True) < run(batched=False)


class TestKmerFiltering:
    def test_min_count_drops_error_kmers(self):
        spec = ares_like(nodes=2, procs_per_node=2)
        noisy = synthesize_genome(genome_length=400, num_reads=40,
                                  read_length=50, k=13, error_rate=0.03,
                                  seed=4)
        result = run_kmer_counting("hcl", spec, noisy, min_count=2)
        assert result.verified
        assert result.filtered_kmers > 0

    def test_min_count_one_keeps_everything(self):
        spec = ares_like(nodes=2, procs_per_node=2)
        clean = synthesize_genome(genome_length=300, num_reads=20,
                                  read_length=40, k=11, seed=5)
        result = run_kmer_counting("hcl", spec, clean, min_count=1)
        assert result.verified
        assert result.filtered_kmers == 0

    def test_bcl_filter_matches(self):
        spec = ares_like(nodes=2, procs_per_node=2)
        noisy = synthesize_genome(genome_length=300, num_reads=25,
                                  read_length=40, k=11, error_rate=0.02,
                                  seed=6)
        h = run_kmer_counting("hcl", spec, noisy, min_count=2)
        b = run_kmer_counting("bcl", spec, noisy, min_count=2)
        assert h.verified and b.verified
        assert h.distinct_kmers == b.distinct_kmers
