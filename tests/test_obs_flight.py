"""Tests for the flight recorder (continuous registry sampling).

Covers the selector grammar, the pump's zero-perturbation contract
(cadence, drain-mode lapse, multi-phase monotonicity), ring-buffer
bounds, histogram quantile series, per-tick listeners, and payload
determinism.
"""

import pytest

from repro.obs import FlightRecorder, registry_of, select_matches


class TestSelectMatches:
    def test_no_selectors_matches_everything(self):
        assert select_matches("anything/at/all", None)
        assert select_matches("x", [])

    def test_slash_prefix(self):
        assert select_matches("serving/latency", ["serving/"])
        assert not select_matches("served/latency", ["serving/"])

    def test_dot_prefix(self):
        assert select_matches("serving-map.0/ops", ["serving-map."])
        assert not select_matches("serving-map0/ops", ["serving-map."])

    def test_star_prefix_for_instance_families(self):
        assert select_matches("rpcc0/retries", ["rpcc*"])
        assert select_matches("rpcc12/latency", ["rpcc*"])
        assert not select_matches("rpc/retries", ["rpcc*"])

    def test_leading_slash_suffix(self):
        assert select_matches("serving-map.3/ops", ["/ops"])
        assert not select_matches("serving-map.3/drops", ["/ops"])

    def test_exact_otherwise(self):
        assert select_matches("rpc/window_stalls", ["rpc/window_stalls"])
        assert not select_matches("rpc/window_stalls2", ["rpc/window_stalls"])

    def test_any_selector_suffices(self):
        sels = ["faults/", "/ops"]
        assert select_matches("faults/injected", sels)
        assert select_matches("m.0/ops", sels)
        assert not select_matches("rpc/retries", sels)


class TestRecorderValidation:
    def test_bad_interval_and_maxlen(self, sim):
        with pytest.raises(ValueError):
            FlightRecorder(sim, interval=0.0)
        with pytest.raises(ValueError):
            FlightRecorder(sim, interval=1.0, maxlen=0)


class TestPumpDiscipline:
    def test_samples_at_cadence(self, sim):
        reg = registry_of(sim)
        c = reg.counter("work/ops")
        c.add(3)
        rec = FlightRecorder(sim, interval=1.0)
        sim.timeout(5.0)
        assert rec.pump(until=5.0) == 5.0
        ts = rec.series["work/ops"]
        assert ts.rows() == [(t, 3.0) for t in (1.0, 2.0, 3.0, 4.0, 5.0)]
        assert rec.samples == 5

    def test_drain_mode_never_advances_idle_clock(self, sim):
        registry_of(sim).counter("work/ops")
        rec = FlightRecorder(sim, interval=0.4)
        sim.timeout(1.0)  # workload ends at t=1.0
        assert rec.pump() == 1.0  # NOT pushed to the next nominal tick
        ts = rec.series["work/ops"]
        assert list(ts.times) == [0.4, 0.8]  # the 1.2 sample lapsed

    def test_multi_phase_times_strictly_increase(self, sim):
        registry_of(sim).counter("work/ops")
        rec = FlightRecorder(sim, interval=1.0)
        sim.timeout(0.5)
        rec.pump()  # phase 1 drains before the first nominal tick
        sim.timeout(4.0)  # phase 2 spawns after phase 1 returned
        rec.pump()
        times = list(rec.series["work/ops"].times)
        assert times == sorted(times)
        assert len(times) == len(set(times))  # re-anchor: no duplicate ticks

    def test_mid_run_metrics_start_recording_at_next_tick(self, sim):
        reg = registry_of(sim)
        reg.counter("early")
        rec = FlightRecorder(sim, interval=1.0)

        def spawn_late():
            yield sim.timeout(2.5)
            reg.counter("late").add(1)
            yield sim.timeout(2.5)

        sim.process(spawn_late())
        rec.pump(until=5.0)
        assert rec.series["early"].times[0] == 1.0
        assert rec.series["late"].times[0] == 3.0

    def test_install_routes_cluster_run(self, cluster):
        registry_of(cluster.sim).counter("x")
        rec = FlightRecorder(cluster.sim, interval=1e-6).install(cluster)
        assert cluster.run == rec.pump


class TestRecorderContents:
    def test_ring_bound_and_dropped_in_payload(self, sim):
        registry_of(sim).counter("c")
        rec = FlightRecorder(sim, interval=1.0, maxlen=3)
        sim.timeout(10.0)
        rec.pump(until=10.0)
        assert rec.samples == 10
        entry = rec.payload()["series"]["c"]
        assert entry["times"] == [8.0, 9.0, 10.0]
        assert entry["dropped"] == 7

    def test_histogram_expands_to_quantile_series(self, sim):
        h = registry_of(sim).histogram("lat")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        rec = FlightRecorder(sim, interval=1.0, quantiles=(0.5,))
        sim.timeout(1.0)
        rec.pump(until=1.0)
        assert set(rec.series) == {"lat/n", "lat/p50"}
        assert list(rec.series["lat/n"].values) == [3.0]

    def test_select_limits_recorded_series(self, sim):
        reg = registry_of(sim)
        reg.counter("keep/ops")
        reg.counter("skip/ops2")
        rec = FlightRecorder(sim, interval=1.0, select=["keep/"])
        sim.timeout(1.0)
        rec.pump(until=1.0)
        assert list(rec.series) == ["keep/ops"]

    def test_listeners_called_per_tick_with_now(self, sim):
        registry_of(sim).counter("c")
        rec = FlightRecorder(sim, interval=1.0)
        seen = []
        rec.add_listener(seen.append)
        sim.timeout(3.0)
        rec.pump(until=3.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_rate_view(self, sim):
        c = registry_of(sim).counter("c")

        def work():
            for _ in range(4):
                c.add(10)
                yield sim.timeout(1.0)

        sim.process(work())
        rec = FlightRecorder(sim, interval=1.0)
        rec.pump()
        rate = rec.rate("c")
        assert rate.name == "c/rate"
        assert rate.rows() == [(2.0, 10.0), (3.0, 10.0), (4.0, 0.0)]
        assert rec.rate("missing").rows() == []

    def test_payload_deterministic_across_identical_runs(self):
        from repro.simnet import Simulator

        def one_run():
            sim = Simulator()
            c = registry_of(sim).counter("c")

            def work():
                for _ in range(5):
                    c.add(2)
                    yield sim.timeout(0.3)

            sim.process(work())
            rec = FlightRecorder(sim, interval=0.25, maxlen=4)
            rec.pump()
            rec.events.log("marker", {"i": 1})
            return rec.payload()

        assert one_run() == one_run()
