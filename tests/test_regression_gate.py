"""The bench-regression gate must pass on the committed BENCH files and
flag synthetic regressions."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from benchmarks.check_regression import (
    compare_agg,
    compare_async,
    compare_kernel,
    compare_serving,
    evaluate_serving,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(name: str):
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not committed")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class TestCommittedBaselinesAreGreen:
    """Committed vs itself must be a clean pass — the gate's CI invariant."""

    def test_kernel(self):
        rep = _load("BENCH_kernel.json")
        assert compare_kernel(rep, rep) == []

    def test_agg(self):
        rep = _load("BENCH_agg.json")
        assert compare_agg(rep, rep) == []

    def test_serving(self):
        rep = _load("BENCH_serving.json")
        assert compare_serving(rep, rep) == []

    def test_async(self):
        rep = _load("BENCH_async.json")
        assert compare_async(rep, rep) == []

    def test_cli_green_on_committed(self, tmp_path):
        src = REPO_ROOT / "BENCH_serving.json"
        if not src.exists():
            pytest.skip("BENCH_serving.json not committed")
        assert main(["--kind", "serving", "--fresh", str(src),
                     "--baseline", str(src)]) == 0


class TestRegressionsAreFlagged:
    def test_kernel_throughput_drop(self):
        base = _load("BENCH_kernel.json")
        slow = copy.deepcopy(base)
        slow["events_per_sec"] *= 0.5
        failures = compare_kernel(slow, base)
        assert any("events_per_sec" in f for f in failures)
        # Within tolerance: a 10% dip is noise, not a regression.
        mild = copy.deepcopy(base)
        mild["events_per_sec"] *= 0.9
        assert compare_kernel(mild, base) == []

    def test_agg_speedup_drop_and_scale_mismatch(self):
        base = _load("BENCH_agg.json")
        worse = copy.deepcopy(base)
        app = sorted(base["speedups"])[0]
        worse["speedups"][app]["sim_speedup"] *= 0.5
        assert any(app in f for f in compare_agg(worse, base))
        rescaled = copy.deepcopy(base)
        rescaled["scale"] = base["scale"] * 2
        assert any("not comparable" in f
                   for f in compare_agg(rescaled, base))

    def test_serving_throughput_p99_and_cliff(self):
        base = _load("BENCH_serving.json")
        worse = copy.deepcopy(base)
        worse["configs"][0]["ops_per_sim_sec"] *= 0.5
        assert any("ops_per_sim_sec" in f
                   for f in compare_serving(worse, base))
        slower = copy.deepcopy(base)
        slower["configs"][0]["latency"]["p99"] *= 2.0
        assert any("p99" in f for f in compare_serving(slower, base))
        flat = copy.deepcopy(base)
        if "cliff" in base:
            flat["cliff"]["p99_ratio"] *= 0.5
            assert any("p99_ratio" in f
                       for f in compare_serving(flat, base))

    def test_serving_config_mismatch_refuses_comparison(self):
        base = _load("BENCH_serving.json")
        other = copy.deepcopy(base)
        other["clients"] = base["clients"] * 10
        failures = compare_serving(other, base)
        assert failures and all("not comparable" in f for f in failures)

    def test_async_speedup_drop_and_queue_wait_rise(self):
        base = _load("BENCH_async.json")
        metric = "sim" if base["sim_only"] else "wall"
        worse = copy.deepcopy(base)
        worse["summary"][f"async_{metric}_speedup"] *= 0.5
        assert any("speedup" in f for f in compare_async(worse, base))
        slower = copy.deepcopy(base)
        slower["summary"]["queue_wait_p99_async"] *= 2.0
        assert any("queue_wait_p99" in f
                   for f in compare_async(slower, base))
        detuned = copy.deepcopy(base)
        detuned["summary"]["auto_vs_best_static"] *= 2.0
        assert any("auto_vs_best_static" in f
                   for f in compare_async(detuned, base))

    def test_async_digest_divergence_and_topology_mismatch(self):
        base = _load("BENCH_async.json")
        forked = copy.deepcopy(base)
        forked["rows"][0]["digest"] = "deadbeef"
        assert any("diverged" in f for f in compare_async(forked, base))
        unverified = copy.deepcopy(base)
        unverified["rows"][0]["verified"] = False
        assert any("verification" in f
                   for f in compare_async(unverified, base))
        moved = copy.deepcopy(base)
        moved["nodes"] = base["nodes"] * 2
        failures = compare_async(moved, base)
        assert failures and all("not comparable" in f for f in failures)


class TestMachineReadableVerdict:
    """--json writes per-check records; failures ship a forensics report."""

    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_evaluate_emits_passing_records_too(self):
        base = _load("BENCH_serving.json")
        checks = evaluate_serving(base, base)
        assert checks and all(c["ok"] for c in checks)
        metric_checks = [c for c in checks if c["kind"] == "metric"]
        assert metric_checks
        for check in metric_checks:
            assert {"metric", "fresh", "base", "tolerance",
                    "higher_is_better"} <= set(check)

    def test_json_verdict_on_pass(self, tmp_path):
        base = _load("BENCH_serving.json")
        src = self._write(tmp_path, "base.json", base)
        out = tmp_path / "verdict.json"
        rc = main(["--kind", "serving", "--fresh", str(src),
                   "--baseline", str(src), "--json", str(out)])
        assert rc == 0
        verdict = json.loads(out.read_text())
        assert verdict["ok"] is True
        assert verdict["kind"] == "serving"
        assert verdict["failures"] == []
        assert verdict["checks"] and all(c["ok"] for c in verdict["checks"])

    def test_json_verdict_and_forensics_on_failure(self, tmp_path, capsys):
        base = _load("BENCH_serving.json")
        worse = copy.deepcopy(base)
        worse["configs"][0]["ops_per_sim_sec"] *= 0.5
        base_path = self._write(tmp_path, "base.json", base)
        fresh_path = self._write(tmp_path, "fresh.json", worse)
        out = tmp_path / "verdict.json"
        prefix = tmp_path / "forensics"
        rc = main(["--kind", "serving", "--fresh", str(fresh_path),
                   "--baseline", str(base_path), "--json", str(out),
                   "--forensics-out", str(prefix)])
        assert rc == 1
        verdict = json.loads(out.read_text())
        assert verdict["ok"] is False
        assert verdict["failures"]
        assert any(not c["ok"] for c in verdict["checks"])
        # forensics artifacts land next to the prefix and name a cause
        report = (tmp_path / "forensics.md").read_text()
        assert "fingerprint" in report
        diff = json.loads((tmp_path / "forensics.json").read_text())
        assert diff["kind"] == "run_diff"
        assert diff["significant"]
        captured = capsys.readouterr()
        assert "Run forensics" in captured.out
        assert "REGRESSION" in captured.err

    def test_no_forensics_flag_suppresses_the_report(self, tmp_path, capsys):
        base = _load("BENCH_serving.json")
        worse = copy.deepcopy(base)
        worse["configs"][0]["ops_per_sim_sec"] *= 0.5
        base_path = self._write(tmp_path, "base.json", base)
        fresh_path = self._write(tmp_path, "fresh.json", worse)
        rc = main(["--kind", "serving", "--fresh", str(fresh_path),
                   "--baseline", str(base_path), "--no-forensics"])
        assert rc == 1
        assert "Run forensics" not in capsys.readouterr().out
