"""Tests for HCL::queue and HCL::priority_queue."""


from repro.harness import Blob


class TestQueue:
    def test_fifo_roundtrip(self, hcl, drive):
        q = hcl.queue("q")

        def body():
            for i in range(5):
                yield from q.push(0, i)
            out = []
            for _ in range(5):
                value, ok = yield from q.pop(0)
                assert ok
                out.append(value)
            return out

        assert drive(hcl, body()) == [0, 1, 2, 3, 4]

    def test_pop_empty(self, hcl, drive):
        q = hcl.queue("q")

        def body():
            return (yield from q.pop(0))

        assert drive(hcl, body()) == (None, False)

    def test_vector_push_pop(self, hcl, drive):
        q = hcl.queue("q")

        def body():
            yield from q.push_many(0, list(range(10)))
            first = yield from q.pop_many(0, 4)
            rest = yield from q.pop_many(0, 100)
            n = yield from q.size(0)
            return first, rest, n

        first, rest, n = drive(hcl, body())
        assert first == [0, 1, 2, 3]
        assert rest == [4, 5, 6, 7, 8, 9]
        assert n == 0

    def test_vector_push_cheaper_than_scalar(self, small_spec):
        """Table I: F + L + E·W beats E x (F + L + W) — one invocation."""
        from repro.core import HCL

        def run(vector: bool) -> float:
            hcl = HCL(small_spec)
            q = hcl.queue("q", home_node=1)

            def body(rank):
                items = list(range(32))
                if vector:
                    yield from q.push_many(rank, items)
                else:
                    for item in items:
                        yield from q.push(rank, item)

            hcl.run_ranks(body, ranks=range(4))
            return hcl.now

        assert run(vector=True) < run(vector=False)

    def test_mwmr_from_all_ranks(self, hcl):
        q = hcl.queue("q", home_node=1)

        def producer(rank):
            for i in range(8):
                yield from q.push(rank, (rank, i))

        hcl.run_ranks(producer)
        popped = []

        def consumer(rank):
            while True:
                value, ok = yield from q.pop(rank)
                if not ok:
                    break
                popped.append(tuple(value))

        hcl.run_ranks(consumer, ranks=range(1))
        assert len(popped) == 64
        # Per-producer order is preserved in a FIFO.
        for rank in range(8):
            mine = [i for r, i in popped if r == rank]
            assert mine == sorted(mine)

    def test_single_partition_enforced(self, hcl):
        q = hcl.queue("q", home_node=1)
        assert len(q.partitions) == 1
        assert q.home.node_id == 1

    def test_growth_under_load(self, hcl):
        q = hcl.queue("q")
        before = q.home.segment.size

        def body(rank):
            for i in range(40):
                yield from q.push(rank, Blob(4096))

        hcl.run_ranks(body, ranks=range(4))
        assert q.home.segment.size > before

    def test_async_push(self, hcl, drive):
        q = hcl.queue("q", home_node=1)

        def body():
            futures = [q.push_async(0, i) for i in range(6)]
            for fut in futures:
                yield fut.wait()
            values = yield from q.pop_many(0, 6)
            return values

        assert sorted(drive(hcl, body())) == list(range(6))


class TestPriorityQueue:
    def test_min_first(self, hcl, drive):
        pq = hcl.priority_queue("pq", dims=4, base=8)

        def body():
            for prio, val in ((30, "c"), (10, "a"), (20, "b")):
                yield from pq.push(0, prio, val)
            out = []
            for _ in range(3):
                entry, ok = yield from pq.pop(0)
                out.append(entry)
            return out

        assert drive(hcl, body()) == [(10, "a"), (20, "b"), (30, "c")]

    def test_pop_empty(self, hcl, drive):
        pq = hcl.priority_queue("pq", dims=4, base=8)

        def body():
            return (yield from pq.pop(0))

        assert drive(hcl, body()) == (None, False)

    def test_peek(self, hcl, drive):
        pq = hcl.priority_queue("pq", dims=4, base=8)

        def body():
            yield from pq.push(0, 5, "x")
            peeked, ok = yield from pq.peek(0)
            n = yield from pq.size(0)
            return peeked, ok, n

        assert drive(hcl, body()) == ((5, "x"), True, 1)

    def test_vector_ops(self, hcl, drive):
        pq = hcl.priority_queue("pq", dims=4, base=8)

        def body():
            yield from pq.push_many(0, [(9, "i"), (1, "a"), (5, "e")])
            return (yield from pq.pop_many(0, 3))

        assert drive(hcl, body()) == [(1, "a"), (5, "e"), (9, "i")]

    def test_sorted_across_ranks(self, hcl):
        """Concurrent pushes from all ranks still pop in priority order."""
        pq = hcl.priority_queue("pq", home_node=1, dims=4, base=16)

        def producer(rank):
            for i in range(8):
                yield from pq.push(rank, rank * 8 + i, f"{rank}:{i}")

        hcl.run_ranks(producer)
        out = []

        def consumer(rank):
            while True:
                entry, ok = yield from pq.pop(rank)
                if not ok:
                    break
                out.append(entry[0])

        hcl.run_ranks(consumer, ranks=range(1))
        assert out == sorted(out) and len(out) == 64

    def test_priority_queue_slower_than_fifo(self, small_spec):
        """Fig 6c: priority queue ~30% slower due to O(log n) pushes."""
        from repro.core import HCL

        def run(kind):
            hcl = HCL(small_spec)
            if kind == "pq":
                q = hcl.priority_queue("q", home_node=1, dims=8, base=16)

                def body(rank):
                    for i in range(32):
                        yield from q.push(rank, rank * 100 + i, None)
            else:
                q = hcl.queue("q", home_node=1)

                def body(rank):
                    for i in range(32):
                        yield from q.push(rank, rank * 100 + i)

            hcl.run_ranks(body, ranks=range(4))
            return hcl.now

        assert run("pq") > run("fifo")
