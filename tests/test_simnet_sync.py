"""Tests for SimLock, Semaphore, Barrier, and Signal."""

import pytest

from repro.simnet import Barrier, Semaphore, Signal, SimLock
from repro.simnet.core import SimulationError


class TestSimLock:
    def test_mutual_exclusion(self, sim):
        lock = SimLock(sim)
        inside = []

        def worker(i):
            yield lock.acquire()
            inside.append(("enter", i, sim.now))
            yield sim.timeout(1.0)
            inside.append(("exit", i, sim.now))
            lock.release()

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        # Critical sections must not overlap.
        intervals = [(e[2], x[2]) for e, x in zip(inside[::2], inside[1::2])]
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_release_unlocked_raises(self, sim):
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_contention_counters(self, sim):
        lock = SimLock(sim)

        def worker():
            yield from lock.holding(1.0)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert lock.total_acquires == 4
        assert lock.contended_acquires == 3
        assert not lock.locked

    def test_fifo_fairness(self, sim):
        lock = SimLock(sim)
        order = []

        def worker(i):
            yield lock.acquire()
            order.append(i)
            yield sim.timeout(0.5)
            lock.release()

        for i in range(5):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestSemaphore:
    def test_counting(self, sim):
        sem = Semaphore(sim, value=2)
        active = []
        peak = []

        def worker():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            sem.release()

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(peak) == 2
        assert sem.value == 2

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)

    def test_release_wakes_waiter(self, sim):
        sem = Semaphore(sim, value=0)
        woke = []

        def waiter():
            yield sem.acquire()
            woke.append(sim.now)

        def releaser():
            yield sim.timeout(2.0)
            sem.release()

        sim.process(waiter())
        sim.process(releaser())
        sim.run()
        assert woke == [2.0]


class TestBarrier:
    def test_all_parties_released_together(self, sim):
        barrier = Barrier(sim, parties=3)
        released = []

        def worker(i):
            yield sim.timeout(float(i))
            gen = yield barrier.wait()
            released.append((i, sim.now, gen))

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        assert all(t == 2.0 for _i, t, _g in released)
        assert all(g == 1 for _i, _t, g in released)

    def test_reusable_generations(self, sim):
        barrier = Barrier(sim, parties=2)
        gens = []

        def worker():
            for _ in range(3):
                g = yield barrier.wait()
                gens.append(g)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert sorted(gens) == [1, 1, 2, 2, 3, 3]

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Barrier(sim, parties=0)


class TestSignal:
    def test_broadcast(self, sim):
        signal = Signal(sim)
        got = []

        def waiter(i):
            value = yield signal.wait()
            got.append((i, value))

        for i in range(3):
            sim.process(waiter(i))

        def firer():
            yield sim.timeout(1.0)
            n = signal.fire("go")
            assert n == 3

        sim.process(firer())
        sim.run()
        assert sorted(got) == [(0, "go"), (1, "go"), (2, "go")]

    def test_fire_with_no_waiters(self, sim):
        signal = Signal(sim)
        assert signal.fire() == 0
        assert signal.fire_count == 1

    def test_new_waiters_need_new_fire(self, sim):
        signal = Signal(sim)
        got = []

        def round1():
            v = yield signal.wait()
            got.append(("r1", v))
            v = yield signal.wait()
            got.append(("r2", v))

        def firer():
            yield sim.timeout(1.0)
            signal.fire(1)
            yield sim.timeout(1.0)
            signal.fire(2)

        sim.process(round1())
        sim.process(firer())
        sim.run()
        assert got == [("r1", 1), ("r2", 2)]
