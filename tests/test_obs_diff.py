"""Tests for the differential run-forensics engine (repro.obs.diff).

Covers artifact-kind detection, the determinism pin (a same-seed
self-diff reports nothing significant), the empty-vs-nonempty histogram
"new signal" path (never a divide-by-zero), skew top-k churn, and the
fingerprint classifier — including the end-to-end case the regression
gate relies on: an aggregation A/B (512 vs 1) fingerprints as a
coalescer-efficiency drop, not as a workload change.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.aggbench import emit_agg_json, run_agg_bench
from repro.obs import (
    FINGERPRINT_CODES,
    detect_kind,
    diff_paths,
    diff_runs,
    load_artifact,
    render_diff,
    write_diff_json,
)

# -- tiny synthetic artifacts -------------------------------------------------


def _metrics_doc(lat_n, lat_scale=1.0, ops=5000.0):
    """A registry-snapshot-shaped dict with one latency histogram."""
    if lat_n:
        lat = {"n": lat_n, "mean": 2.0 * lat_scale, "p50": 1.5 * lat_scale,
               "p90": 3.0 * lat_scale, "p99": 6.0 * lat_scale,
               "min": 0.5, "max": 9.0 * lat_scale}
    else:
        lat = {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
               "min": 0.0, "max": 0.0}
    return {"rpc/ops": ops, "rpc/latency": lat}


def _critpath_doc(queue_share):
    rest = 1.0 - queue_share
    return {
        "kind": "critpath",
        "traces": 100,
        "skipped": 0,
        "overall": {"stages": [
            {"stage": "server.queue", "share": queue_share},
            {"stage": "server.execute", "share": rest * 0.5},
            {"stage": "client.send", "share": rest * 0.5},
        ]},
        "slow": {"stages": []},
    }


def _profile_doc(marshal_share):
    rest = 1.0 - marshal_share
    return {
        "kind": "wall_profile",
        "wall_seconds": 2.0,
        "profiled_seconds": 1.8,
        "subsystems": [
            {"subsystem": "marshal", "share": marshal_share,
             "self_seconds": marshal_share, "calls": 10},
            {"subsystem": "kernel", "share": rest,
             "self_seconds": rest, "calls": 10},
        ],
        "functions": [],
        "scopes": [],
        "folded": [],
    }


def _skew_doc(partitions, keys, imbalance):
    return {
        "benchmark": "serving_zipf",
        "skew": {
            "imbalance": imbalance,
            "top_partitions": [{"partition": p, "ops": 100 - i}
                               for i, p in enumerate(partitions)],
            "top_keys": [{"key": k, "count": 50 - i}
                         for i, k in enumerate(keys)],
        },
    }


class TestDetectKind:
    def test_bench_discriminators(self):
        assert detect_kind({"benchmark": "kernel_events_per_sec"}) == \
            "bench_kernel"
        assert detect_kind({"benchmark": "aggregation_sweep"}) == "bench_agg"
        assert detect_kind({"benchmark": "serving_zipf"}) == "bench_serving"
        assert detect_kind({"benchmark": "async_pipeline"}) == "bench_async"

    def test_kind_field_artifacts(self):
        assert detect_kind({"kind": "flight_recorder"}) == "flight"
        assert detect_kind({"kind": "critpath"}) == "critpath"
        assert detect_kind({"kind": "wall_profile"}) == "wall_profile"
        assert detect_kind({"kind": "run_diff"}) == "run_diff"

    def test_spans_list_and_wrapped(self):
        recs = [{"span_id": 1, "name": "client.send", "dur": 0.5}]
        assert detect_kind(recs) == "spans"
        assert detect_kind({"records": recs}) == "spans"

    def test_metrics_snapshot(self):
        assert detect_kind(_metrics_doc(10)) == "metrics"

    def test_unknown_never_raises(self):
        assert detect_kind(None) == "unknown"
        assert detect_kind([1, 2, 3]) == "unknown"
        assert detect_kind({"stuff": object}) == "unknown"


class TestSelfDiffIsQuiet:
    """Determinism pin: identical artifacts -> nothing significant."""

    def test_synthetic_metrics_self_diff(self):
        diff = diff_runs(_metrics_doc(100), _metrics_doc(100))
        assert diff["comparable"]
        assert not diff["significant"]
        assert diff["fingerprint"]["code"] == "no-significant-change"

    @pytest.mark.parametrize("name", ["BENCH_serving.json", "BENCH_agg.json",
                                      "BENCH_async.json"])
    def test_committed_bench_self_diff(self, name):
        import pathlib
        path = pathlib.Path(__file__).resolve().parent.parent / name
        if not path.exists():
            pytest.skip(f"{name} not committed")
        diff = diff_paths(str(path), str(path))
        assert not diff["significant"], \
            [r for r in diff["counters"]["rows"] if r["significant"]]
        assert diff["fingerprint"]["code"] == "no-significant-change"


class TestEmptyHistogramPaths:
    """Satellite pin: empty-vs-nonempty is a *new signal*, never a /0."""

    def test_empty_to_populated_is_new_signal(self):
        diff = diff_runs(_metrics_doc(0), _metrics_doc(100))
        rows = {r["key"]: r for r in diff["quantiles"]["rows"]}
        row = rows["rpc/latency"]
        assert row["status"] == "new_signal"
        assert row["significant"]
        assert diff["significant"]
        # the tail rule treats an appearing latency histogram as tail growth
        assert diff["fingerprint"]["code"] == "latency-tail-grew"

    def test_populated_to_empty_is_gone(self):
        diff = diff_runs(_metrics_doc(100), _metrics_doc(0))
        row = {r["key"]: r for r in diff["quantiles"]["rows"]}["rpc/latency"]
        assert row["status"] == "gone"
        assert row["significant"]

    def test_both_empty_is_silent(self):
        diff = diff_runs(_metrics_doc(0), _metrics_doc(0))
        assert diff["quantiles"]["rows"] == []
        assert not diff["significant"]

    def test_zero_quantile_within_populated_group_is_new_signal(self):
        a, b = _metrics_doc(100), _metrics_doc(100)
        a["rpc/latency"]["p99"] = 0.0
        b["rpc/latency"]["p99"] = 4.0
        diff = diff_runs(a, b)
        shift = diff["quantiles"]["rows"][0]["shifts"]["p99"]
        assert shift["status"] == "new_signal"
        assert shift["rel"] is None
        assert shift["significant"]


class TestFingerprints:
    def test_queue_wait_growth_from_critpath(self):
        diff = diff_runs(_critpath_doc(0.10), _critpath_doc(0.45))
        assert diff["critpath"]["significant"]
        assert diff["fingerprint"]["code"] == "server-queue-wait-grew"
        assert "server.queue" in diff["fingerprint"]["evidence"]

    def test_marshal_growth_from_wall_profile(self):
        diff = diff_runs(_profile_doc(0.15), _profile_doc(0.45))
        assert diff["profile"]["significant"]
        assert diff["fingerprint"]["code"] == "marshal-overhead-grew"

    def test_hot_set_churn(self):
        a = _skew_doc(["p0", "p1", "p2"], ["k0", "k1"], 1.2)
        b = _skew_doc(["p7", "p8", "p9"], ["k7", "k8"], 1.3)
        diff = diff_runs(a, b)
        assert diff["skew"]["significant"]
        assert diff["skew"]["partitions"]["jaccard"] == 0.0
        assert diff["fingerprint"]["code"] == "hot-set-churned"

    def test_workload_shape_trumps_everything(self):
        a = {"benchmark": "serving_zipf", "nodes": 4, "ops_per_sim_sec": 100.0}
        b = {"benchmark": "serving_zipf", "nodes": 8, "ops_per_sim_sec": 50.0}
        diff = diff_runs(a, b)
        assert diff["fingerprint"]["code"] == "workload-shape-changed"
        assert "nodes" in diff["fingerprint"]["evidence"]

    def test_knob_change_does_not_read_as_workload_change(self):
        a = {"benchmark": "serving_zipf", "rpc_batch_size": 8,
             "ops_per_sim_sec": 100.0}
        b = {"benchmark": "serving_zipf", "rpc_batch_size": 1,
             "ops_per_sim_sec": 60.0}
        diff = diff_runs(a, b)
        knobs = {c["key"]: c for c in diff["config_changes"]}
        assert knobs["rpc_batch_size"]["knob"]
        assert diff["fingerprint"]["code"] != "workload-shape-changed"

    def test_all_codes_have_labels(self):
        assert "no-significant-change" in FINGERPRINT_CODES
        assert all(isinstance(v, str) and v for v in
                   FINGERPRINT_CODES.values())


class TestAggRegressionEndToEnd:
    """The gate's scenario: aggregation 512 vs 1 names the coalescer."""

    @pytest.fixture(scope="class")
    def agg_diff(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("aggdiff")
        base = run_agg_bench(scale=0.25, sweep=[0, 512], apps=["kmer"],
                             repeats=1, sim_only=True)
        worse = run_agg_bench(scale=0.25, sweep=[0, 1], apps=["kmer"],
                              repeats=1, sim_only=True)
        a, b = tmp / "A.json", tmp / "B.json"
        emit_agg_json(base, str(a))
        emit_agg_json(worse, str(b))
        return diff_paths(str(a), str(b))

    def test_fingerprints_coalesce_efficiency(self, agg_diff):
        assert agg_diff["significant"]
        assert agg_diff["fingerprint"]["code"] == "coalesce-efficiency-dropped"

    def test_sweep_listed_as_knob_not_workload(self, agg_diff):
        changes = {c["key"]: c for c in agg_diff["config_changes"]}
        sweep_changes = [c for k, c in changes.items() if "sweep" in k]
        assert sweep_changes and all(c["knob"] for c in sweep_changes)
        assert all(c["knob"] for c in agg_diff["config_changes"])

    def test_render_carries_the_fingerprint(self, agg_diff):
        text = render_diff(agg_diff)
        assert "coalescer flush efficiency dropped" in text
        assert "### Counter deltas" in text


class TestPlumbing:
    def test_cross_kind_diff_is_not_comparable(self):
        diff = diff_runs(_critpath_doc(0.2), _profile_doc(0.2))
        assert not diff["comparable"]
        assert diff["critpath"] is None and diff["profile"] is None

    def test_load_artifact_jsonl_parses_as_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        recs = [{"trace_id": 1, "span_id": i, "parent_id": None,
                 "name": "client.send", "node": 0, "start": 0.0,
                 "end": 0.5, "dur": 0.5} for i in (1, 2)]
        path.write_text("\n".join(json.dumps(r) for r in recs) + "\n")
        kind, doc = load_artifact(str(path))
        assert kind == "spans"
        assert len(doc["records"]) == 2
        # span-log self-diff is quiet too
        diff = diff_runs(doc, doc)
        assert not diff["significant"]

    def test_write_diff_json_round_trips(self, tmp_path):
        diff = diff_runs(_metrics_doc(0), _metrics_doc(100))
        out = tmp_path / "d.json"
        write_diff_json(diff, str(out))
        loaded = json.loads(out.read_text())
        assert detect_kind(loaded) == "run_diff"
        assert loaded["fingerprint"]["code"] == diff["fingerprint"]["code"]

    def test_noisy_wall_metrics_need_a_wider_move(self):
        a = {"benchmark": "kernel_events_per_sec", "wall_seconds": 1.0}
        b = {"benchmark": "kernel_events_per_sec", "wall_seconds": 1.3}
        diff = diff_runs(a, b)
        rows = {r["key"]: r for r in diff["counters"]["rows"]}
        assert rows["wall_seconds"]["noisy"]
        assert not rows["wall_seconds"]["significant"]
        b["wall_seconds"] = 2.0  # +100% clears the noisy threshold
        diff = diff_runs(a, b)
        rows = {r["key"]: r for r in diff["counters"]["rows"]}
        assert rows["wall_seconds"]["significant"]
