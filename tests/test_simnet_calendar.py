"""Calendar-queue far-lane edge cases and heap-equivalence.

The calendar queue replaces the binary heap for far-future events behind
``Simulator(scheduler=...)``.  Its one contract: retire events in exactly
the order the heap would — same timestamps, same priority handling, same
FIFO tiebreak on the creation sequence — so every simulated result is
bit-identical across schedulers.  These tests pin the edges where a
bucketed structure could drift from a heap: same-timestamp bursts,
tombstoned (interrupted) entries inside buckets, AnyOf/AllOf settle
order, bucket-width resizes under skewed spacing, and a seeded randomized
full-trace equivalence that is independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random

import pytest

from repro.simnet.core import Interrupt, Simulator

SCHEDULERS = ("heap", "calendar")


def _far(sim, delay, value=None):
    """Schedule a timeout that lands in the FAR lane (not the near deque).

    The near lane only takes monotone appends; scheduling a later anchor
    first forces the earlier timeout into the far structure under test.
    """
    anchor = sim.timeout(delay + 1000.0)
    to = sim.timeout(delay, value=value)
    assert anchor is not to
    return to


class TestSameTimestampStability:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_equal_far_timestamps_fire_in_creation_order(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def waiter(i, to):
            yield to
            fired.append(i)

        # A far anchor first, then 50 identical-time timeouts that all
        # land in one calendar bucket (or one heap run of equal keys).
        sim.timeout(2000.0)
        for i in range(50):
            sim.process(waiter(i, sim.timeout(7.25)))
        sim.run(until=100.0)
        assert fired == list(range(50))

    def test_equal_timestamps_match_across_schedulers(self):
        traces = {}
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            trace = []

            def waiter(i, to, trace=trace):
                got = yield to
                trace.append((sim.now, i, got))

            sim.timeout(5000.0)
            for i in range(30):
                # Three distinct times, ten waiters each, interleaved.
                sim.process(waiter(i, sim.timeout(1.0 + (i % 3), value=i)))
            sim.run(until=100.0)
            traces[scheduler] = trace
        assert traces["heap"] == traces["calendar"]


class TestTombstonedEntries:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_interrupt_tombstones_far_lane_entry(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        log = []

        def proc():
            try:
                yield _far(sim, 50.0, value="late")
                log.append("value")
            except Interrupt as intr:
                log.append(("intr", intr.cause))
                yield sim.timeout(0.5)
                log.append(("after", sim.now))

        p = sim.process(proc())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt("go")

        sim.process(interrupter())
        sim.run(until=2000.0)
        # The tombstoned t=50 wakeup inside the far structure must be
        # skipped silently when its bucket drains.
        assert log == [("intr", "go"), ("after", 1.5)]
        assert p.done

    def test_bucket_of_tombstones_drains_cleanly(self):
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            survivors = []

            def waiter(i, to):
                try:
                    yield to
                    survivors.append((sim.now, i))
                except Interrupt:
                    pass

            sim.timeout(5000.0)
            procs = [sim.process(waiter(i, sim.timeout(10.0)))
                     for i in range(20)]

            def killer():
                yield sim.timeout(1.0)
                for i in range(0, 20, 2):
                    procs[i].interrupt()

            sim.process(killer())
            sim.run(until=100.0)
            assert survivors == [(10.0, i) for i in range(1, 20, 2)]


class TestCombinatorSettleOrder:
    def test_any_of_far_children_settle_identically(self):
        results = {}
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            got = []

            def proc():
                fast = _far(sim, 3.0, value="fast")
                slow = _far(sim, 30.0, value="slow")
                got.append((yield sim.any_of([fast, slow])))
                got.append(sim.now)

            sim.run_process(proc())
            results[scheduler] = got
        assert results["heap"] == results["calendar"]
        assert results["heap"][0] == (0, "fast")

    def test_all_of_collects_in_listed_order_across_buckets(self):
        results = {}
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            got = []

            def proc():
                # Reverse-chronological listing, spread far apart so the
                # children occupy different calendar buckets.
                late = _far(sim, 40.0, value="late")
                mid = _far(sim, 2.0, value="mid")
                early = _far(sim, 0.5, value="early")
                got.append((yield sim.all_of([late, mid, early])))
                got.append(sim.now)

            sim.run_process(proc())
            results[scheduler] = got
        assert results["heap"] == results["calendar"]
        # AllOf value order follows the listed order, not firing order.
        assert results["heap"][0] == ["late", "mid", "early"]


class TestAdaptiveWidth:
    def test_skewed_spacing_forces_resizes_and_stays_ordered(self):
        sim = Simulator(scheduler="calendar")
        fired = []

        def waiter(i, to):
            yield to
            fired.append((sim.now, i))

        # Anchor far out so everything below routes through the calendar.
        # Then both skew extremes: a sub-bucket-width clump of 600 events
        # (refill sees > _REFILL_HI -> width halves) and a sparse tail of
        # one event per bucket across 16 buckets (refills see <= _REFILL_LO
        # with many buckets pending -> width doubles).
        sim.timeout(1e6)
        delays = [1000.0 + j * 1e-7 for j in range(600)]
        delays.extend(2000.0 + k * 10.0 for k in range(16))
        for i, d in enumerate(delays):
            sim.process(waiter(i, sim.timeout(d)))
        sim.run(until=1e5)
        assert [i for _t, i in fired] == sorted(
            range(len(delays)), key=lambda i: (delays[i], i)
        )
        cal = sim.kernel_stats()["calendar"]
        assert cal["resizes"] >= 1, "adaptive width never engaged"
        assert cal["refills"] >= 1

    def test_kernel_stats_expose_scheduler(self):
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            stats = sim.kernel_stats()
            assert stats["scheduler"] == scheduler
            assert ("calendar" in stats) == (scheduler == "calendar")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Simulator(scheduler="fibheap")


class TestRandomizedEquivalence:
    """Seeded random workloads must produce identical full traces.

    Everything observable is keyed on deterministic ints/floats and list
    order — no set/dict iteration — so the assertion holds under any
    ``PYTHONHASHSEED``.
    """

    @staticmethod
    def _run_workload(scheduler: str, seed: int):
        rng = random.Random(seed)
        sim = Simulator(scheduler=scheduler)
        trace = []

        nprocs = 20
        plans = [
            [
                (rng.choice(("short", "far", "cb", "at")),
                 rng.uniform(1e-7, 1.0) * 10 ** rng.randint(0, 4))
                for _ in range(rng.randint(5, 25))
            ]
            for _ in range(nprocs)
        ]

        def body(pid, plan):
            for step, (kind, delay) in enumerate(plan):
                if kind == "cb":
                    sim.schedule_callback(
                        lambda pid=pid, step=step:
                            trace.append((sim.now, "cb", pid, step)),
                        delay,
                    )
                elif kind == "at":
                    yield sim.timeout_at(sim.now + delay)
                    trace.append((sim.now, "at", pid, step))
                else:
                    yield sim.timeout(delay)
                    trace.append((sim.now, kind, pid, step))
            trace.append((sim.now, "done", pid, -1))

        for pid, plan in enumerate(plans):
            sim.process(body(pid, plan))
        sim.run()
        stats = sim.kernel_stats()
        return trace, stats["events_processed"], sim.now

    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_full_trace_identical_heap_vs_calendar(self, seed):
        heap_trace, heap_events, heap_now = self._run_workload("heap", seed)
        cal_trace, cal_events, cal_now = self._run_workload("calendar", seed)
        assert heap_trace == cal_trace
        assert heap_events == cal_events
        assert heap_now == cal_now
        assert len(heap_trace) > 100  # the workload actually ran
