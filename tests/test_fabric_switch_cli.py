"""Tests for the oversubscribed switch model and the CLI."""

import pytest

from repro.config import ares_like
from repro.fabric import Cluster, Switch


class TestSwitch:
    def test_validation(self, sim):
        from repro.config import CostModel

        with pytest.raises(ValueError):
            Switch(sim, CostModel(), nodes=4, oversubscription=0.5)

    def test_channel_count(self, sim):
        from repro.config import CostModel

        sw = Switch(sim, CostModel(), nodes=8, oversubscription=4.0)
        assert sw.channels.capacity == 2
        assert not sw.is_full_bisection
        sw1 = Switch(sim, CostModel(), nodes=8)
        assert sw1.is_full_bisection

    def _all_to_all_time(self, oversub: float) -> float:
        cluster = Cluster(ares_like(nodes=4, procs_per_node=2),
                          oversubscription=oversub)
        for i in range(4):
            cluster.node(i).register_region("d", 1 << 22)

        def body(rank):
            qp = cluster.qp(cluster.node_of_rank(rank))
            me = cluster.node_of_rank(rank)
            for i in range(6):
                dst = (me + 1 + i % 3) % 4
                yield from qp.rdma_write(dst, "d", 0, None, 1 << 20)

        cluster.spawn_ranks(body)
        cluster.run()
        return cluster.sim.now

    def test_oversubscription_slows_all_to_all(self):
        t_full = self._all_to_all_time(1.0)
        t_over = self._all_to_all_time(4.0)
        assert t_over > 2.0 * t_full

    def test_full_bisection_is_free(self):
        """At 1:1 the switch adds no serialization beyond the links."""
        t_full = self._all_to_all_time(1.0)
        t_mild = self._all_to_all_time(1.0 + 1e-9)
        assert t_full == pytest.approx(t_mild, rel=0.01) or t_full <= t_mild

    def test_transits_counted(self):
        cluster = Cluster(ares_like(nodes=2, procs_per_node=1))
        cluster.node(1).register_region("d", 4096)

        def body():
            yield from cluster.qp(0).rdma_write(1, "d", 0, None, 64)

        cluster.sim.run_process(body())
        assert cluster.switch.transits.value >= 1

    def test_loopback_skips_switch(self):
        cluster = Cluster(ares_like(nodes=1, procs_per_node=1),
                          oversubscription=8.0)
        cluster.node(0).register_region("d", 4096)

        def body():
            yield from cluster.qp(0).rdma_write(0, "d", 0, None, 64)

        cluster.sim.run_process(body())
        assert cluster.switch.transits.value == 0


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "sweep" in out

    def test_sweep_runs(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--nodes", "2", "--ops", "8",
                     "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "op/s" in out and "MB/s" in out

    def test_sweep_provider_choice_enforced(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--provider", "carrier-pigeon"])

    def test_fig7_single_app(self, capsys):
        from repro.cli import main

        assert main(["fig7", "--apps", "isx", "--nodes", "2",
                     "--procs", "2", "--ops", "16"]) == 0
        out = capsys.readouterr().out
        assert "isx weak scaling" in out and "speedup" in out

    def test_requires_command(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([])


class TestCliFigures:
    def test_fig5_custom_sizes(self, capsys):
        from repro.cli import main

        assert main(["fig5", "--sizes", "4096", "65536"]) == 0
        out = capsys.readouterr().out
        assert "intra-node" in out and "inter-node" in out
        assert "4KB" in out and "64KB" in out

    def test_fig6_custom_partitions(self, capsys):
        from repro.cli import main

        assert main(["fig6", "--partitions", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "insert throughput" in out

    def test_microbench_command(self, capsys):
        from repro.cli import main

        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "GB/s" in out
