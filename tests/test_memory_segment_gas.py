"""Tests for MemorySegment and the global address space."""

import pytest

from repro.memory import GlobalAddressSpace, GlobalPointer, MemorySegment


class TestMemorySegment:
    def test_registers_region_and_charges_memory(self, cluster):
        node = cluster.node(0)
        before = node.memory_used.value
        seg = MemorySegment(node, 4096, name="s")
        assert node.memory_used.value == before + 4096
        assert node.nic.region("s") is seg.region

    def test_alloc_free(self, cluster):
        seg = MemorySegment(cluster.node(0), 4096)
        off = seg.alloc(128)
        seg.put(off, "value")
        assert seg.get(off) == "value"
        seg.free(off)

    def test_grow_in_place(self, cluster):
        seg = MemorySegment(cluster.node(0), 4096)
        seg.alloc(4096)  # fully packed -> realloc succeeds
        assert seg.grow(8192) is True
        assert seg.size == 8192
        assert seg.resize_count == 1
        assert seg.rehash_count == 0
        seg.allocator.check_invariants()

    def test_grow_fragmented_forces_rehash(self, cluster):
        seg = MemorySegment(cluster.node(0), 4096)
        offs = [seg.alloc(256) for _ in range(8)]
        for off in offs[::2]:
            seg.free(off)  # fragment the slab
        grew_in_place = seg.grow(8192)
        assert seg.size == 8192
        if not grew_in_place:
            assert seg.rehash_count == 1
        seg.allocator.check_invariants()

    def test_grow_requires_larger(self, cluster):
        seg = MemorySegment(cluster.node(0), 4096)
        with pytest.raises(ValueError):
            seg.grow(4096)

    def test_persistence_wiring(self, cluster, tmp_path):
        path = str(tmp_path / "seg.hcl")
        seg = MemorySegment(cluster.node(0), 4096, backing_path=path)
        seg.persist(b"record")
        seg.close()
        from repro.memory import PersistentLog

        with PersistentLog(path) as log:
            assert [r.payload for r in log.records()] == [b"record"]

    def test_close_frees_node_memory(self, cluster):
        node = cluster.node(0)
        before = node.memory_used.value
        seg = MemorySegment(node, 4096)
        seg.close()
        assert node.memory_used.value == before


class TestGlobalPointer:
    def test_arithmetic(self):
        p = GlobalPointer(1, "seg", 100)
        q = p + 28
        assert q.offset == 128 and q.node == 1
        assert q - p == 28

    def test_cross_segment_difference_rejected(self):
        p = GlobalPointer(1, "a", 0)
        q = GlobalPointer(1, "b", 0)
        with pytest.raises(ValueError):
            _ = q - p

    def test_locality(self):
        p = GlobalPointer(2, "seg", 0)
        assert p.is_local_to(2)
        assert not p.is_local_to(0)

    def test_ordering_and_hash(self):
        a = GlobalPointer(0, "s", 0)
        b = GlobalPointer(0, "s", 8)
        assert a < b
        assert len({a, b, GlobalPointer(0, "s", 0)}) == 2


class TestGlobalAddressSpace:
    def test_register_resolve(self, cluster):
        gas = GlobalAddressSpace()
        seg = MemorySegment(cluster.node(1), 4096, name="part0")
        ptr = gas.register(seg)
        assert ptr == GlobalPointer(1, "part0", 0)
        assert gas.resolve(ptr) is seg
        assert gas.segment(1, "part0") is seg
        assert len(gas) == 1

    def test_duplicate_rejected(self, cluster):
        gas = GlobalAddressSpace()
        seg = MemorySegment(cluster.node(0), 4096, name="dup")
        gas.register(seg)
        with pytest.raises(KeyError):
            gas.register(seg)

    def test_resolve_missing(self):
        gas = GlobalAddressSpace()
        with pytest.raises(KeyError):
            gas.resolve(GlobalPointer(0, "ghost", 0))
        assert gas.segment(0, "ghost") is None

    def test_segments_on_node(self, cluster):
        gas = GlobalAddressSpace()
        s0 = MemorySegment(cluster.node(0), 1024, name="a")
        s1 = MemorySegment(cluster.node(1), 1024, name="b")
        s2 = MemorySegment(cluster.node(0), 1024, name="c")
        for s in (s0, s1, s2):
            gas.register(s)
        assert {s.name for s in gas.segments_on(0)} == {"a", "c"}
        gas.deregister(s0)
        assert {s.name for s in gas.segments_on(0)} == {"c"}
