"""Soak test: a long mixed workload across every container kind.

One deterministic run that interleaves all six containers, collectives,
p2p messaging, persistence, and replication — then validates global
consistency.  This is the "does everything compose" test; individual
behaviours are covered by the per-module suites.
"""

import pytest

from repro.config import ares_like
from repro.core import HCL, Collectives, Comm
from repro.harness import key_stream


@pytest.fixture(scope="module")
def soak_result(tmp_path_factory):
    persist_dir = str(tmp_path_factory.mktemp("soak"))
    spec = ares_like(nodes=4, procs_per_node=4, seed=99)
    hcl = HCL(spec, persist_dir=persist_dir)

    umap = hcl.unordered_map("umap", partitions=4, replication=1)
    uset = hcl.unordered_set("uset", partitions=4)
    omap = hcl.map("omap", partitions=4,
                   partitioner=lambda k, n: min(n - 1, k * n // (1 << 30)))
    queue = hcl.queue("queue", home_node=1)
    pq = hcl.priority_queue("pq", home_node=2, dims=8, base=8)
    plog = hcl.unordered_map("plog", partitions=2, persistence=True)
    comm = Comm(hcl)
    coll = Collectives(hcl)

    OPS = 60
    stats = {"popped": [], "pq_popped": [], "sums": {}}

    def body(rank):
        keys = list(key_stream(rank, OPS, seed=9))
        # Phase 1: writes everywhere.
        for i, key in enumerate(keys):
            yield from umap.insert(rank, key, (rank, i))
            yield from uset.insert(rank, key % 997)
            yield from omap.insert(rank, key, i)
            if i % 4 == 0:
                yield from queue.push(rank, (rank, i))
            if i % 4 == 1:
                yield from pq.push(rank, key % (8 ** 8), (rank, i))
            if i % 8 == 0:
                yield from plog.insert(rank, (rank, i), i)
            yield from umap.upsert(rank, "global-counter", 1)
        yield from coll.barrier(rank)
        # Phase 2: every rank verifies every other rank's data (sampled).
        other = (rank + 7) % spec.total_procs
        other_keys = list(key_stream(other, OPS, seed=9))
        for i in range(0, OPS, 6):
            value, found = yield from umap.find(rank, other_keys[i])
            assert found and tuple(value) == (other, i)
        # Phase 3: p2p ring handshake.
        nxt = (rank + 1) % spec.total_procs
        prev = (rank - 1) % spec.total_procs
        handle = comm.isend(rank, dest=nxt, tag=1, rank=rank)
        token = yield from comm.recv(source=prev, tag=1, rank=rank)
        yield handle
        assert token == prev
        # Phase 4: reduce a checksum.
        local_sum = sum(keys)
        total = yield from coll.all_reduce(rank, local_sum)
        stats["sums"][rank] = total
        return local_sum

    procs = hcl.run_ranks(body)
    local_sums = [p.result for p in procs]
    hcl.cluster.run()  # drain replication

    # Drain the queues from one rank.
    def drain(rank):
        while True:
            value, ok = yield from queue.pop(rank)
            if not ok:
                break
            stats["popped"].append(tuple(value))
        while True:
            entry, ok = yield from pq.pop(rank)
            if not ok:
                break
            stats["pq_popped"].append(entry)

    proc = hcl.cluster.spawn(drain(0))
    hcl.cluster.run()
    proc.result
    return {
        "hcl": hcl, "spec": spec, "umap": umap, "uset": uset, "omap": omap,
        "plog": plog, "persist_dir": persist_dir, "stats": stats,
        "local_sums": local_sums, "OPS": OPS,
    }


class TestSoak:
    def test_unordered_map_counter_exact(self, soak_result):
        umap = soak_result["umap"]
        expected = soak_result["spec"].total_procs * soak_result["OPS"]
        part = umap.partition_for("global-counter")
        value, found, _ = part.structure.find("global-counter")
        assert found and value == expected

    def test_replication_complete(self, soak_result):
        umap = soak_result["umap"]
        checked = 0
        for part in umap.partitions:
            replica = umap.partitions[(part.index + 1) % 4]
            for key, _value in part.structure.items():
                if umap.partition_for(key) is not part:
                    continue  # this copy IS a replica; skip
                assert replica.structure.find(key)[1], key
                checked += 1
        assert checked > 100  # plenty of primaries actually verified

    def test_every_entry_has_exactly_two_copies(self, soak_result):
        umap = soak_result["umap"]
        from collections import Counter

        copies = Counter()
        for part in umap.partitions:
            for key, _value in part.structure.items():
                copies[key] += 1
        assert set(copies.values()) == {2}  # primary + one replica

    def test_ordered_map_globally_sorted(self, soak_result):
        omap = soak_result["omap"]
        keys = [k for k, _v in omap._all_items_sorted()]
        assert keys == sorted(keys)

    def test_queue_fifo_per_producer(self, soak_result):
        popped = soak_result["stats"]["popped"]
        assert len(popped) == soak_result["spec"].total_procs * 15
        for rank in range(soak_result["spec"].total_procs):
            mine = [i for r, i in popped if r == rank]
            assert mine == sorted(mine)

    def test_priority_queue_sorted(self, soak_result):
        pq_popped = soak_result["stats"]["pq_popped"]
        prios = [p for p, _v in pq_popped]
        assert prios == sorted(prios)
        assert len(pq_popped) == soak_result["spec"].total_procs * 15

    def test_all_reduce_consistent(self, soak_result):
        sums = soak_result["stats"]["sums"]
        expected = sum(soak_result["local_sums"])
        assert all(v == expected for v in sums.values())

    def test_persistence_log_replayable(self, soak_result):
        import os

        from repro.memory import PersistentLog
        from repro.serialization import DataBox

        soak_result["plog"].close()
        recovered = {}
        for index in range(2):
            path = os.path.join(soak_result["persist_dir"],
                                f"plog.part{index}.hcl")
            with PersistentLog(path) as log:
                for record in log.records():
                    op, args = DataBox.decode(record.payload).value
                    assert op == "insert"
                    recovered[tuple(args[0])] = args[1]
        expected_keys = {
            (r, i)
            for r in range(soak_result["spec"].total_procs)
            for i in range(0, soak_result["OPS"], 8)
        }
        assert set(recovered) == expected_keys

    def test_deterministic_end_time(self, soak_result):
        # Pin the simulated end time: any cost-model change shows up here.
        assert soak_result["hcl"].now > 0
