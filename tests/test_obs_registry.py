"""Tests for the per-simulation MetricsRegistry."""

import pytest

from repro.obs import MetricsRegistry, registry_of
from repro.simnet.core import Simulator
from repro.simnet.stats import Counter, Gauge, Histogram


class TestFactories:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("a/ops")
        assert isinstance(c, Counter)
        assert c.name == "a/ops"
        assert reg.counter("a/ops") is c  # identity on repeat lookup

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        g = reg.gauge("a/mem")
        h = reg.histogram("a/lat")
        assert isinstance(g, Gauge) and isinstance(h, Histogram)
        assert reg.gauge("a/mem") is g
        assert reg.histogram("a/lat") is h

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_shared_identity_across_layers(self):
        """Two layers asking for the same name observe the same metric."""
        reg = MetricsRegistry()
        reg.counter("link/bytes").add(10)
        reg.counter("link/bytes").add(5)
        assert reg.counter("link/bytes").value == 15.0


class TestLookup:
    def test_names_sorted_and_filtered(self):
        reg = MetricsRegistry()
        for name in ("b/x", "a/y", "a/x"):
            reg.counter(name)
        assert reg.names() == ["a/x", "a/y", "b/x"]
        assert reg.names("a/") == ["a/x", "a/y"]

    def test_get_len_contains(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        c = reg.counter("c")
        assert reg.get("c") is c
        assert len(reg) == 1
        assert "c" in reg and "d" not in reg


class TestSumMatching:
    def test_fleet_rollup(self):
        reg = MetricsRegistry()
        reg.counter("rpcc0/retries").add(2)
        reg.counter("rpcc1/retries").add(3)
        reg.counter("rpcc1/timeouts").add(7)  # different suffix
        reg.counter("other/retries").add(100)  # different prefix
        assert reg.sum_matching("/retries", "rpcc") == 5.0
        assert reg.sum_matching("/retries") == 105.0

    def test_gauges_counted_histograms_not(self):
        reg = MetricsRegistry()
        reg.gauge("n0/mem").set(4.0)
        reg.gauge("n1/mem").set(6.0)
        reg.histogram("n2/mem").observe(99.0)  # no scalar value: excluded
        assert reg.sum_matching("/mem") == 10.0

    def test_suffix_anchored_at_component_boundary(self):
        """``retries`` must not swallow ``window_retries`` (or vice versa)."""
        reg = MetricsRegistry()
        reg.counter("rpcc0/retries").add(2)
        reg.counter("rpc/window_retries").add(9)
        assert reg.sum_matching("retries") == 2.0
        assert reg.sum_matching("window_retries") == 9.0
        # A slash-led suffix is already anchored; exact names still match.
        assert reg.sum_matching("/window_retries") == 9.0
        assert reg.sum_matching("rpc/window_retries") == 9.0

    def test_bare_name_matches_whole_component(self):
        reg = MetricsRegistry()
        reg.counter("ops").add(1)
        reg.counter("a/ops").add(4)
        reg.counter("a/drops").add(16)  # 'ops' is a substring, not a component
        assert reg.sum_matching("ops") == 5.0

    def test_merged_histogram_component_anchored(self):
        reg = MetricsRegistry()
        reg.histogram("rpcc0/latency").observe(1.0)
        reg.histogram("rpcc1/latency").observe(2.0)
        reg.histogram("x/tail_latency").observe(512.0)
        merged = reg.merged_histogram("latency")
        assert merged.n == 2
        assert merged.max == 2.0  # tail_latency excluded


class TestSnapshot:
    def test_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(5.0)
        reg.gauge("g").set(2.0)
        for v in (1.0, 2.0, 4.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["c"] == 3.0
        assert snap["g"] == {"value": 2.0, "peak": 5.0}
        assert snap["h"]["n"] == 3
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 4.0
        assert {"mean", "p50", "p90", "p99"} <= set(snap["h"])

    def test_prefix_filter_and_order(self):
        reg = MetricsRegistry()
        for name in ("z/1", "a/1", "m/1"):
            reg.counter(name)
        snap = reg.snapshot(prefixes=("a", "z"))
        assert list(snap) == ["a/1", "z/1"]  # sorted, filtered

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h"]["n"] == 0
        assert snap["h"]["min"] == 0.0 and snap["h"]["max"] == 0.0


class TestRegistryOf:
    def test_lazy_per_sim_attachment(self):
        sim1, sim2 = Simulator(), Simulator()
        r1 = registry_of(sim1)
        assert registry_of(sim1) is r1  # cached on the sim
        assert registry_of(sim2) is not r1  # independent sims never share

    def test_layers_register_on_construction(self):
        """Building a cluster populates the sim's registry."""
        from repro.config import ares_like
        from repro.fabric.topology import Cluster

        cluster = Cluster(ares_like(nodes=2, procs_per_node=1))
        reg = registry_of(cluster.sim)
        assert "switch/transits" in reg
        assert any(n.endswith("/bytes") for n in reg.names())
        assert any(n.startswith("nic0/") for n in reg.names())
