"""Tests for the application kernels: ISx, genome, k-mer, contig."""

import pytest

from repro.apps import (
    run_contig_generation,
    run_isx,
    run_kmer_counting,
    synthesize_genome,
)
from repro.apps.contig import BOUNDARY, ExtensionPair, _occurrences
from repro.apps.genome import exact_kmer_counts
from repro.apps.isx import MAX_KEY, _bucket_of
from repro.config import ares_like


@pytest.fixture(scope="module")
def tiny_spec():
    return ares_like(nodes=2, procs_per_node=2, seed=1)


@pytest.fixture(scope="module")
def genome_data():
    return synthesize_genome(genome_length=400, num_reads=30,
                             read_length=50, k=13, seed=5)


class TestGenome:
    def test_shapes(self, genome_data):
        assert len(genome_data.genome) == 400
        assert genome_data.num_reads == 30
        assert all(len(r) == 50 for r in genome_data.reads)
        assert set(genome_data.genome) <= set("ACGT")

    def test_reads_are_genome_substrings(self, genome_data):
        assert all(r in genome_data.genome for r in genome_data.reads)

    def test_errors_break_substring_property(self):
        noisy = synthesize_genome(genome_length=400, num_reads=30,
                                  read_length=50, k=13, error_rate=0.2,
                                  seed=5)
        assert any(r not in noisy.genome for r in noisy.reads)

    def test_deterministic(self):
        a = synthesize_genome(seed=9, genome_length=200, num_reads=5,
                              read_length=40, k=11)
        b = synthesize_genome(seed=9, genome_length=200, num_reads=5,
                              read_length=40, k=11)
        assert a.genome == b.genome and a.reads == b.reads

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_genome(read_length=10, k=20)
        with pytest.raises(ValueError):
            synthesize_genome(genome_length=10, read_length=50)

    def test_exact_counts_reference(self, genome_data):
        counts = exact_kmer_counts(genome_data)
        assert sum(counts.values()) == 30 * (50 - 13 + 1)
        assert all(kmer in genome_data.genome for kmer in counts)


class TestIsx:
    def test_bucket_assignment_covers_range(self):
        assert _bucket_of(0, 8) == 0
        assert _bucket_of(MAX_KEY - 1, 8) == 7

    def test_hcl_sorts_and_verifies(self, tiny_spec):
        result = run_isx("hcl", tiny_spec, keys_per_rank=40)
        assert result.verified
        assert result.total_keys == 4 * 40
        assert result.time_seconds > 0

    def test_bcl_sorts_and_verifies(self, tiny_spec):
        result = run_isx("bcl", tiny_spec, keys_per_rank=40)
        assert result.verified

    def test_hcl_beats_bcl(self, tiny_spec):
        """Fig 7a's direction: HCL finishes first at every scale."""
        hcl = run_isx("hcl", tiny_spec, keys_per_rank=40)
        bcl = run_isx("bcl", tiny_spec, keys_per_rank=40)
        assert hcl.time_seconds < bcl.time_seconds

    def test_unknown_backend(self, tiny_spec):
        with pytest.raises(ValueError):
            run_isx("mpi", tiny_spec)


class TestKmer:
    def test_hcl_counts_exact(self, tiny_spec, genome_data):
        result = run_kmer_counting("hcl", tiny_spec, genome_data)
        assert result.verified
        assert result.total_kmers == 30 * (50 - 13 + 1)
        assert result.distinct_kmers > 0

    def test_bcl_counts_exact(self, tiny_spec, genome_data):
        result = run_kmer_counting("bcl", tiny_spec, genome_data)
        assert result.verified

    def test_hcl_beats_bcl(self, tiny_spec, genome_data):
        hcl = run_kmer_counting("hcl", tiny_spec, genome_data)
        bcl = run_kmer_counting("bcl", tiny_spec, genome_data)
        assert hcl.time_seconds < bcl.time_seconds


class TestExtensionPair:
    def test_merge(self):
        a = ExtensionPair({"A"}, {"C"})
        b = ExtensionPair({"G"}, {"C"})
        merged = a + b
        assert merged.lefts == {"A", "G"} and merged.rights == {"C"}

    def test_radd_zero(self):
        pair = ExtensionPair({"A"}, {"T"})
        assert 0 + pair == pair

    def test_uu_detection(self):
        assert ExtensionPair({"A"}, {"T"}).is_uu
        assert not ExtensionPair({"A", "C"}, {"T"}).is_uu

    def test_occurrences_boundaries(self):
        data = synthesize_genome(genome_length=100, num_reads=1,
                                 read_length=30, k=10, seed=1)
        occ = list(_occurrences(data, data.reads[0]))
        assert occ[0][1] == BOUNDARY  # first k-mer has no left context
        assert occ[-1][2] == BOUNDARY  # last has no right context
        assert len(occ) == 30 - 10 + 1


class TestContig:
    def test_hcl_contigs_verify(self, tiny_spec, genome_data):
        result = run_contig_generation("hcl", tiny_spec, genome_data)
        assert result.verified
        assert all(c in genome_data.genome for c in result.contigs)
        assert all(len(c) >= genome_data.k for c in result.contigs)

    def test_backends_agree(self, tiny_spec, genome_data):
        hcl = run_contig_generation("hcl", tiny_spec, genome_data)
        bcl = run_contig_generation("bcl", tiny_spec, genome_data)
        assert bcl.verified
        assert hcl.contigs == bcl.contigs

    def test_contigs_longer_than_reads_exist(self, tiny_spec):
        """Traversal stitches overlapping reads into longer contigs."""
        data = synthesize_genome(genome_length=300, num_reads=80,
                                 read_length=40, k=13, seed=2)
        result = run_contig_generation("hcl", tiny_spec, data)
        assert result.verified
        assert max(len(c) for c in result.contigs) > 40
