"""Tests for multi-rail links, the shm provider, and BCL queue flush."""

from dataclasses import replace

import pytest

from repro.bcl import BCL
from repro.config import ares_like
from repro.fabric import Cluster


class TestMultiRail:
    def _two_flow_time(self, lanes: int) -> float:
        spec = ares_like(nodes=2, procs_per_node=2)
        spec = spec.scaled(cost=replace(spec.cost, link_lanes=lanes))
        cluster = Cluster(spec)
        cluster.node(1).register_region("d", 1 << 22)

        def flow(offset):
            def body():
                qp = cluster.qp(0)
                for i in range(4):
                    yield from qp.rdma_write(1, "d", offset + i, None, 1 << 20)
            return body()

        cluster.sim.process(flow(0))
        cluster.sim.process(flow(100))
        cluster.run()
        return cluster.sim.now

    def test_second_rail_doubles_concurrent_bandwidth(self):
        t1 = self._two_flow_time(lanes=1)
        t2 = self._two_flow_time(lanes=2)
        assert t2 < 0.65 * t1  # two rails carry the two flows in parallel

    def test_single_flow_unaffected(self):
        """One flow cannot exceed one rail's rate either way."""
        def single(lanes):
            spec = ares_like(nodes=2, procs_per_node=1)
            spec = spec.scaled(cost=replace(spec.cost, link_lanes=lanes))
            cluster = Cluster(spec)
            cluster.node(1).register_region("d", 1 << 22)

            def body():
                qp = cluster.qp(0)
                for i in range(4):
                    yield from qp.rdma_write(1, "d", i, None, 1 << 20)

            cluster.sim.run_process(body())
            return cluster.sim.now

        assert single(2) == pytest.approx(single(1))


class TestShmProvider:
    def test_shm_provider_for_single_node(self):
        """The shm provider: intra-node-class constants."""
        cluster = Cluster(ares_like(nodes=1, procs_per_node=4),
                          provider="shm")
        assert cluster.spec.cost.link_bandwidth == pytest.approx(
            cluster.spec.cost.memory_bandwidth
        )
        cluster.node(0).register_region("d", 1 << 20)

        def body():
            qp = cluster.qp(0)
            yield from qp.rdma_write(0, "d", 0, "x", 4096)
            out = yield from qp.rdma_read(0, "d", 0, 4096)
            return out

        assert cluster.sim.run_process(body()) == "x"

    def test_shm_faster_than_roce_loopback(self):
        def run(provider):
            cluster = Cluster(ares_like(nodes=1, procs_per_node=4),
                              provider=provider)
            cluster.node(0).register_region("d", 1 << 22)

            def body():
                qp = cluster.qp(0)
                for i in range(8):
                    yield from qp.rdma_write(0, "d", i, None, 1 << 20)

            cluster.sim.run_process(body())
            return cluster.sim.now

        assert run("shm") < run("roce")


class TestBclQueueFlush:
    def test_push_nb_flush_roundtrip(self, small_spec):
        bcl = BCL(small_spec)
        q = bcl.queue("q", capacity=128, entry_size=64, home_node=1)

        def body(rank):
            for i in range(8):
                q.push_nb(rank, (rank, i))
            yield from q.flush(rank)
            got = []
            for _ in range(8):
                value, ok = yield from q.pop(rank)
                assert ok
                got.append(tuple(value))
            # FIFO per producer even with non-blocking posts... the posts
            # overlap, so only set-equality is guaranteed.
            assert set(got) == {(rank, i) for i in range(8)}

        proc = bcl.cluster.spawn(body(0))
        bcl.cluster.run()
        proc.result

    def test_flush_reports_overflow(self, small_spec):
        bcl = BCL(small_spec)
        q = bcl.queue("q", capacity=2, entry_size=64)

        def body(rank):
            for i in range(6):
                q.push_nb(rank, i)
            yield from q.flush(rank)

        proc = bcl.cluster.spawn(body(0))
        bcl.cluster.run()
        with pytest.raises(RuntimeError, match="flush"):
            proc.result
