"""Tests for HCL::map and HCL::set (ordered containers)."""

import pytest

from repro.core.ordered_container import keylen_partitioner, range_partitioner


class TestPartitioners:
    def test_range_partitioner_splits_evenly(self):
        pick = range_partitioner(0, 100)
        assert pick(0, 4) == 0
        assert pick(25, 4) == 1
        assert pick(99, 4) == 3

    def test_range_partitioner_clamps(self):
        pick = range_partitioner(0, 100)
        assert pick(-5, 4) == 0
        assert pick(150, 4) == 3

    def test_range_partitioner_validation(self):
        with pytest.raises(ValueError):
            range_partitioner(10, 10)

    def test_keylen_partitioner(self):
        assert keylen_partitioner("ab", 4) == 2
        assert keylen_partitioner("abcd", 4) == 0
        assert keylen_partitioner(7, 4) == 3  # numeric fallback


class TestOrderedMap:
    def test_insert_find_erase(self, hcl, drive):
        m = hcl.map("om")

        def body():
            yield from m.insert(0, "delta", 4)
            value, found = yield from m.find(0, "delta")
            ok = yield from m.erase(0, "delta")
            gone = yield from m.find(0, "delta")
            return value, found, ok, gone

        value, found, ok, gone = drive(hcl, body())
        assert (value, found, ok) == (4, True, True)
        assert gone == (None, False)

    def test_per_partition_order(self, hcl):
        m = hcl.map("om", partitions=2)

        def body(rank):
            for i in range(10):
                yield from m.insert(rank, f"{'k' * (rank % 3 + 1)}{i:02d}", i)

        hcl.run_ranks(body, ranks=range(4))
        for part in m.partitions:
            keys = [k for k, _v in part.structure.items()]
            assert keys == sorted(keys)

    def test_range_partitioner_gives_global_order(self, hcl, drive):
        m = hcl.map("om", partitions=2, partitioner=range_partitioner(0, 100))

        def body():
            for k in (90, 10, 50, 30, 70):
                yield from m.insert(0, k, str(k))

        drive(hcl, body())
        assert [k for k, _v in m._all_items_sorted()] == [10, 30, 50, 70, 90]

    def test_custom_comparator(self, hcl, drive):
        m = hcl.map("om", partitions=1, less=lambda a, b: a > b)

        def body():
            for k in (1, 3, 2):
                yield from m.insert(0, k, k)

        drive(hcl, body())
        assert [k for k, _v in m.partitions[0].structure.items()] == [3, 2, 1]

    def test_bad_partitioner_rejected(self, hcl):
        m = hcl.map("om", partitions=2, partitioner=lambda k, n: 99)
        with pytest.raises(IndexError):
            m.partition_for("anything")

    def test_ordered_slower_than_unordered(self):
        """The Fig 6a gap (paper: 54%): O(log n) tree vs O(1) hash.

        Visible when the partitions are *saturated* — many clients per
        partition, ops outstanding — so server-side handler cost (where the
        log factor lives) bounds throughput, as in the paper's setup.
        """
        from repro.config import ares_like
        from repro.core import HCL

        spec = ares_like(nodes=2, procs_per_node=24, seed=7)

        def run(kind):
            hcl = HCL(spec)
            if kind == "ordered":
                c = hcl.map("c", partitions=2,
                            partitioner=lambda k, n: k % n)
            else:
                c = hcl.unordered_map("c", partitions=2,
                                      initial_buckets=16384)

            def body(rank):
                outstanding = []
                for i in range(100):
                    outstanding.append(c.insert_async(rank, rank * 1000 + i, i))
                    if len(outstanding) >= 8:
                        for fut in outstanding:
                            yield fut.wait()
                        outstanding = []
                for fut in outstanding:
                    yield fut.wait()

            hcl.run_ranks(body)
            return hcl.now

        ordered, unordered = run("ordered"), run("unordered")
        assert ordered > unordered * 1.1

    def test_explicit_resize_charges_nlogn(self, hcl, drive):
        m = hcl.map("om", partitions=1)

        def body():
            for i in range(64):
                yield from m.insert(0, i, i)
            return (yield from m.resize(0, 0, 1 << 20))

        assert drive(hcl, body()) is True
        assert m.partitions[0].segment.size >= 1 << 20


class TestOrderedSet:
    def test_membership(self, hcl, drive):
        s = hcl.set("os")

        def body():
            yield from s.insert(0, "k")
            yes = yield from s.find(0, "k")
            no = yield from s.find(0, "nope")
            ok = yield from s.erase(0, "k")
            return yes, no, ok

        assert drive(hcl, body()) == (True, False, True)

    def test_sorted_within_partition(self, hcl, drive):
        s = hcl.set("os", partitions=1)

        def body():
            for k in ("pear", "apple", "fig"):
                yield from s.insert(0, k)

        drive(hcl, body())
        keys = [k for k, _v in s.partitions[0].structure.items()]
        assert keys == ["apple", "fig", "pear"]
