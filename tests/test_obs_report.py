"""Tests for the self-contained HTML dashboard renderer/validator."""

import pytest

from repro.obs import render_dashboard, validate_dashboard, write_dashboard
from repro.obs.report import REQUIRED_SECTIONS


def _flight():
    """A small hand-built flight payload with skew + SLO sections."""
    times = [0.001 * i for i in range(1, 9)]
    return {
        "kind": "flight_recorder",
        "interval": 0.001,
        "maxlen": 512,
        "quantiles": [0.5, 0.99],
        "samples": 8,
        "series": {
            "serving/completed": {
                "times": times,
                "values": [float(10 * i) for i in range(1, 9)],
                "dropped": 0,
            },
            "m.0/ops": {
                "times": times,
                "values": [float(8 * i) for i in range(1, 9)],
                "dropped": 0,
            },
            "m.1/ops": {
                "times": times,
                "values": [float(2 * i) for i in range(1, 9)],
                "dropped": 0,
            },
        },
        "events": [
            [0.004, "skew.hot_partition",
             {"partition": "m.0/ops", "node": 0, "share": 0.8,
              "fair_share": 0.5}],
            [0.006, "slo.alert",
             {"t": 0.006, "rule": "availability", "target": 0.999,
              "short_burn": 25.0, "long_burn": 12.0}],
            [0.008, "slo.clear",
             {"t": 0.008, "rule": "availability",
              "short_burn": 1.0, "long_burn": 9.0}],
        ],
        "events_dropped": 0,
        "skew": {
            "partitions": 2, "total_ops": 80.0, "imbalance": 1.6,
            "cv": 0.6, "hot_events": 1, "hot_now": [],
            "top_partitions": [
                {"partition": "m.0/ops", "node": 0, "ops": 64.0,
                 "share": 0.8},
                {"partition": "m.1/ops", "node": 1, "ops": 16.0,
                 "share": 0.2},
            ],
            "node_ops": {"0": 64.0, "1": 16.0},
            "top_keys": [{"key": "t0:k7", "count": 31, "error": 0}],
            "keys_offered": 80,
        },
        "slo": {
            "ticks": 8, "alerts": 1,
            "rules": [
                {"rule": "availability", "target": 0.999, "threshold": 10.0,
                 "short_window": 0.004, "long_window": 0.016,
                 "alerts": 1, "firing": False},
            ],
        },
    }


def _critpath():
    stages = [
        {"stage": name, "total": total, "share": total / 10.0}
        for name, total in (
            ("client.marshal", 1.0), ("client.send", 2.0),
            ("server.queue", 1.0), ("server.execute", 2.0),
            ("transport", 1.0), ("client.pull", 2.0),
            ("client.settle", 1.0),
        )
    ]
    return {
        "kind": "critpath", "traces": 4, "skipped": 0,
        "overall": {"n": 4, "e2e_total": 10.0, "stages": stages},
        "slow": {"quantile": 0.99, "threshold": 4.0, "n": 1,
                 "e2e_total": 4.0, "stages": stages},
        "groups": [
            {"dst": 1, "stream": 0, "n": 4, "e2e_total": 10.0,
             "e2e_mean": 2.5, "dominant_stage": "server.execute",
             "dominant_share": 0.4, "stages": stages},
        ],
        "top_traces": [
            {"trace_id": 3, "op": "rpc.put", "dst": 1, "stream": 0,
             "e2e": 4.0, "residual": 0.0, "clamped": False,
             "stages": {s["stage"]: s["total"] for s in stages}},
        ],
        "tiling_max_residual": 0.0,
        "clamped": 0,
    }


class TestRenderDashboard:
    def test_all_sections_present_even_with_no_data(self):
        html = render_dashboard()
        assert validate_dashboard(html, from_file=False) == []
        for sid in REQUIRED_SECTIONS:
            assert f'<section id="{sid}">' in html

    def test_full_render_valid_and_self_contained(self):
        html = render_dashboard(flight=_flight(), critpath=_critpath(),
                                metrics={"serving/completed": 80.0})
        assert validate_dashboard(html, from_file=False) == []
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html  # sparklines + heatmap rendered
        assert "availability" in html
        assert "server.execute" in html

    def test_render_is_deterministic(self):
        a = render_dashboard(flight=_flight(), critpath=_critpath())
        b = render_dashboard(flight=_flight(), critpath=_critpath())
        assert a == b

    def test_alert_events_carry_icon_and_label(self):
        html = render_dashboard(flight=_flight())
        # Status is never color-alone: icon + text label accompany it.
        assert "▲" in html and "✓" in html

    def test_title_escaped(self):
        html = render_dashboard(title="<script>alert(1)</script>")
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_write_dashboard_returns_bytes(self, tmp_path):
        path = str(tmp_path / "dash.html")
        size = write_dashboard(path, flight=_flight())
        with open(path) as fh:
            assert len(fh.read()) == size


class TestValidateDashboard:
    def test_validates_file(self, tmp_path):
        path = str(tmp_path / "dash.html")
        write_dashboard(path, flight=_flight(), critpath=_critpath())
        assert validate_dashboard(path) == []

    def test_catches_missing_section(self):
        html = render_dashboard().replace('id="skew"', 'id="askew"')
        errors = validate_dashboard(html, from_file=False)
        assert any("skew" in e for e in errors)

    def test_catches_unbalanced_tags(self):
        html = render_dashboard().replace("</main>", "", 1)
        errors = validate_dashboard(html, from_file=False)
        assert errors

    def test_catches_external_references(self):
        html = render_dashboard().replace(
            "</main>",
            '<img src="https://example.com/x.png"></main>', 1)
        errors = validate_dashboard(html, from_file=False)
        assert any("external" in e.lower() for e in errors)

    def test_catches_missing_html_root(self):
        errors = validate_dashboard("<div>not a page</div>",
                                    from_file=False)
        assert errors
