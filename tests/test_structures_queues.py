"""Tests for the optimistic FIFO queue and the MDList priority queue."""

import heapq
import random
import threading

import pytest

from repro.structures import MDListPriorityQueue, OptimisticQueue
from repro.structures.lfqueue import QueueEmpty
from repro.structures.mdlist import PriorityQueueEmpty


class TestOptimisticQueue:
    def test_fifo_order(self):
        q = OptimisticQueue()
        for i in range(50):
            q.push(i)
        assert [q.pop()[0] for _ in range(50)] == list(range(50))

    def test_empty_pop_raises(self):
        q = OptimisticQueue()
        with pytest.raises(QueueEmpty):
            q.pop()
        assert q.empty

    def test_interleaved_push_pop(self):
        q = OptimisticQueue()
        q.push("a")
        q.push("b")
        assert q.pop()[0] == "a"
        q.push("c")
        assert q.pop()[0] == "b"
        assert q.pop()[0] == "c"
        assert len(q) == 0

    def test_push_stats(self):
        q = OptimisticQueue()
        stats = q.push(1)
        assert stats.cas_ops == 1  # the tail CAS
        assert stats.writes == 1

    def test_fix_list_repairs_deferred_prev(self):
        """The Ladan-Mozes/Shavit repair pass (Section III-D3-A)."""
        q = OptimisticQueue()
        q.push(1, defer_prev=True)
        q.push(2, defer_prev=True)
        q.push(3, defer_prev=True)
        value, stats = q.pop()
        assert value == 1
        assert q.fixups_total == 1
        assert stats.relocations > 0  # fix-list pointer repairs
        assert q.pop()[0] == 2 and q.pop()[0] == 3

    def test_vector_ops(self):
        q = OptimisticQueue()
        stats = q.push_many([1, 2, 3, 4])
        assert stats.writes == 4
        values, _ = q.pop_many(3)
        assert values == [1, 2, 3]
        values, _ = q.pop_many(10)  # short pop
        assert values == [4]

    def test_snapshot_preserves_order(self):
        q = OptimisticQueue()
        for i in range(5):
            q.push(i)
        q.pop()
        assert list(q.snapshot()) == [1, 2, 3, 4]
        q.check_invariants()

    def test_drain_and_reuse(self):
        q = OptimisticQueue()
        for round_ in range(3):
            for i in range(10):
                q.push((round_, i))
            out = [q.pop()[0] for _ in range(10)]
            assert out == [(round_, i) for i in range(10)]
            assert q.empty

    def test_threaded_producers(self):
        q = OptimisticQueue()

        def producer(base):
            for i in range(100):
                q.push(base + i)

        threads = [threading.Thread(target=producer, args=(t * 1000,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(q) == 400
        seen = set()
        while not q.empty:
            seen.add(q.pop()[0])
        assert len(seen) == 400


class TestMDList:
    def test_min_order(self):
        pq = MDListPriorityQueue(dims=4, base=8)
        for k in (100, 5, 50, 1, 99):
            pq.push(k, str(k))
        out = [pq.pop_min()[0] for _ in range(5)]
        assert out == [1, 5, 50, 99, 100]

    def test_empty_raises(self):
        pq = MDListPriorityQueue()
        with pytest.raises(PriorityQueueEmpty):
            pq.pop_min()
        with pytest.raises(PriorityQueueEmpty):
            pq.peek_min()

    def test_duplicates_fifo_within_priority(self):
        """Arrival-time conflict resolution (Section III-D3-B)."""
        pq = MDListPriorityQueue(dims=4, base=8)
        pq.push(7, "first")
        pq.push(7, "second")
        pq.push(7, "third")
        assert pq.pop_min() [:2] == (7, "first")
        assert pq.pop_min()[:2] == (7, "second")
        assert pq.pop_min()[:2] == (7, "third")

    def test_key_bounds_checked(self):
        pq = MDListPriorityQueue(dims=2, base=4)  # keys < 16
        pq.push(15, None)
        with pytest.raises(ValueError):
            pq.push(16, None)
        with pytest.raises(ValueError):
            pq.push(-1, None)

    def test_coordinate_mapping(self):
        pq = MDListPriorityQueue(dims=3, base=4)
        assert pq.coordinate(0) == (0, 0, 0)
        assert pq.coordinate(63) == (3, 3, 3)
        assert pq.coordinate(17) == (1, 0, 1)

    def test_key_zero_distinct_from_sentinel(self):
        pq = MDListPriorityQueue(dims=2, base=4)
        pq.push(0, "zero")
        assert pq.pop_min()[:2] == (0, "zero")
        assert pq.empty

    def test_purge_compacts_marked_nodes(self):
        pq = MDListPriorityQueue(dims=4, base=8)
        n = pq.PURGE_THRESHOLD * 2
        for k in range(n):
            pq.push(k, k)
        for _ in range(n):
            pq.pop_min()
        assert pq.purges_total >= 1
        assert pq.empty
        pq.check_invariants()

    def test_peek_does_not_remove(self):
        pq = MDListPriorityQueue(dims=4, base=8)
        pq.push(3, "x")
        assert pq.peek_min() == (3, "x")
        assert len(pq) == 1

    def test_items_sorted(self):
        pq = MDListPriorityQueue(dims=4, base=8)
        keys = random.Random(3).sample(range(4096), 200)
        for k in keys:
            pq.push(k, None)
        assert [k for k, _v in pq.items()] == sorted(keys)

    def test_reinsert_after_mark_revives_node(self):
        pq = MDListPriorityQueue(dims=2, base=8)
        pq.push(5, "a")
        pq.pop_min()
        pq.push(5, "b")
        assert pq.pop_min()[:2] == (5, "b")

    @pytest.mark.parametrize("dims,base", [(1, 64), (2, 8), (6, 4), (8, 16)])
    def test_config_sweep_against_heap(self, dims, base):
        limit = base ** dims
        pq = MDListPriorityQueue(dims=dims, base=base)
        ref = []
        rng = random.Random(dims * 100 + base)
        for i in range(600):
            if ref and rng.random() < 0.4:
                assert pq.pop_min()[:2] == heapq.heappop(ref)
            else:
                k = rng.randrange(min(limit, 1 << 16))
                heapq.heappush(ref, (k, i))
                pq.push(k, i)
        while ref:
            assert pq.pop_min()[:2] == heapq.heappop(ref)
        pq.check_invariants()

    def test_push_stats_bounded_by_structure(self):
        """Insert cost is O(D + base) hops, not O(N) — the log-like bound."""
        pq = MDListPriorityQueue(dims=8, base=16)
        rng = random.Random(5)
        worst = 0
        for _ in range(2000):
            stats = pq.push(rng.randrange(1 << 32), None)  # key_limit is 16^8
            worst = max(worst, stats.local_ops)
        assert worst <= 8 * 16 + 8
