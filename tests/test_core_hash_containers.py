"""Tests for HCL::unordered_map and HCL::unordered_set."""

import pytest

from repro.harness import Blob


class TestUnorderedMap:
    def test_insert_find_roundtrip(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            ok = yield from m.insert(0, "key", {"v": 1})
            assert ok
            value, found = yield from m.find(0, "key")
            return value, found

        assert drive(hcl, body()) == ({"v": 1}, True)

    def test_find_missing(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            return (yield from m.find(0, "ghost"))

        assert drive(hcl, body()) == (None, False)

    def test_erase(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            yield from m.insert(0, "k", 1)
            ok = yield from m.erase(0, "k")
            gone = yield from m.find(0, "k")
            missing = yield from m.erase(0, "k")
            return ok, gone, missing

        ok, gone, missing = drive(hcl, body())
        assert ok and gone == (None, False) and not missing

    def test_upsert_counts(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            a = yield from m.upsert(0, "ctr", 5)
            b = yield from m.upsert(0, "ctr", 3)
            return a, b

        assert drive(hcl, body()) == (5, 8)

    def test_all_ranks_see_same_data(self, hcl):
        """Global visibility: any rank reads any other rank's writes."""
        m = hcl.unordered_map("m")

        def writer(rank):
            yield from m.insert(rank, f"key-{rank}", rank * 10)

        hcl.run_ranks(writer)

        results = {}

        def reader(rank):
            value, found = yield from m.find(rank, f"key-{(rank + 3) % 8}")
            results[rank] = (value, found)

        hcl.run_ranks(reader)
        for rank, (value, found) in results.items():
            assert found and value == ((rank + 3) % 8) * 10

    def test_hybrid_access_counters(self, hcl):
        """Ops to co-located partitions bypass the RPC layer."""
        m = hcl.unordered_map("m", partitions=2)  # one partition per node

        def body(rank):
            for i in range(16):
                yield from m.insert(rank, (rank, i), i)

        hcl.run_ranks(body)
        assert m.local_hits.value > 0
        assert m.remote_calls.value > 0
        assert m.local_hits.value + m.remote_calls.value == 8 * 16

    def test_local_ops_do_not_touch_network(self, hcl):
        m = hcl.unordered_map("solo", partitions=1, nodes=[0])

        def body(rank):  # ranks 0..3 live on node 0 == partition node
            yield from m.insert(rank, rank, rank)

        before = hcl.cluster.total_packets()
        hcl.run_ranks(body, ranks=range(4))
        assert hcl.cluster.total_packets() == before
        assert m.remote_calls.value == 0

    def test_remote_op_is_one_invocation(self, hcl):
        """Table I: each op compiles to ONE remote invocation."""
        m = hcl.unordered_map("m", partitions=1, nodes=[1])
        client = hcl.client(0)

        def body():
            yield from m.insert(4 - 4, "k", "v")  # rank 0 -> node 0, remote

        hcl.cluster.spawn(body())
        hcl.cluster.run()
        assert client.invocations.value == 1

    def test_async_insert_find(self, hcl, drive):
        m = hcl.unordered_map("m")

        def body():
            futures = [m.insert_async(0, f"k{i}", i) for i in range(10)]
            for fut in futures:
                yield fut.wait()
            fut = m.find_async(0, "k7")
            yield fut.wait()
            return fut.result

        assert tuple(drive(hcl, body())) == (7, True)

    def test_custom_hash_fn_controls_partition(self, hcl):
        m = hcl.unordered_map("m", partitions=2, hash_fn=lambda k: 0)
        # All keys collapse to one partition.
        parts = {m.partition_for(k).index for k in range(50)}
        assert len(parts) == 1

    def test_explicit_resize(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=2)
        target = m.partitions[0]
        before = target.structure.bucket_count

        def body():
            return (yield from m.resize(0, 0, before * 4))

        assert drive(hcl, body()) is True
        assert target.structure.bucket_count >= before * 4

    def test_resize_shrink_rejected_silently(self, hcl, drive):
        m = hcl.unordered_map("m", partitions=1)

        def body():
            return (yield from m.resize(0, 0, 2))

        assert drive(hcl, body()) is False

    def test_automatic_growth_expands_segment(self, hcl):
        m = hcl.unordered_map("m", partitions=1, nodes=[0],
                              initial_buckets=16)
        before = m.partitions[0].segment.size

        def body(rank):
            for i in range(200):
                yield from m.insert(rank, (rank, i), Blob(1024))

        hcl.run_ranks(body, ranks=range(2))
        assert m.partitions[0].structure.bucket_count > 16
        assert m.partitions[0].segment.size > before

    def test_duplicate_name_rejected(self, hcl):
        hcl.unordered_map("m")
        with pytest.raises(KeyError):
            hcl.unordered_map("m")

    def test_total_entries(self, hcl):
        m = hcl.unordered_map("m")

        def body(rank):
            yield from m.insert(rank, rank, rank)

        hcl.run_ranks(body)
        assert m.total_entries() == 8


class TestUnorderedSet:
    def test_membership(self, hcl, drive):
        s = hcl.unordered_set("s")

        def body():
            yield from s.insert(0, "member")
            yes = yield from s.find(0, "member")
            no = yield from s.find(0, "other")
            return yes, no

        assert drive(hcl, body()) == (True, False)

    def test_erase(self, hcl, drive):
        s = hcl.unordered_set("s")

        def body():
            yield from s.insert(0, 42)
            ok = yield from s.erase(0, 42)
            still = yield from s.find(0, 42)
            return ok, still

        assert drive(hcl, body()) == (True, False)

    def test_set_cheaper_than_map(self, small_spec):
        """Sets carry key-only buckets => lower serialization cost
        (the 7-14% gap of Section IV-C)."""
        from repro.core import HCL

        def run(kind):
            hcl = HCL(small_spec)
            if kind == "set":
                c = hcl.unordered_set("c", partitions=1, nodes=[1])

                def body(rank):
                    for i in range(64):
                        yield from c.insert(rank, (rank, i, "padpadpad"))
            else:
                c = hcl.unordered_map("c", partitions=1, nodes=[1])

                def body(rank):
                    for i in range(64):
                        yield from c.insert(rank, (rank, i, "padpadpad"),
                                            Blob(256))

            hcl.run_ranks(body, ranks=range(4))
            return hcl.now

        assert run("set") < run("map")

    def test_idempotent_insert(self, hcl, drive):
        s = hcl.unordered_set("s")

        def body():
            yield from s.insert(0, "x")
            yield from s.insert(0, "x")
            return s.total_entries()

        assert drive(hcl, body()) == 1
