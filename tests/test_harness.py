"""Tests for workloads, experiment runner, and reporting."""

import pytest

from repro.harness import (
    Blob,
    ExperimentResult,
    WorkloadSpec,
    key_stream,
    ratio,
    render_series,
    render_table,
    run_trials,
)
from repro.harness.report import fmt_si
from repro.serialization.databox import estimate_size


class TestBlob:
    def test_size_drives_estimate(self):
        assert estimate_size(Blob(4096)) == 16 + 4096

    def test_equality_and_hash(self):
        assert Blob(10, tag=1) == Blob(10, tag=1)
        assert Blob(10, tag=1) != Blob(10, tag=2)
        assert len({Blob(10), Blob(10), Blob(20)}) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Blob(-1)


class TestKeyStream:
    def test_deterministic(self):
        assert list(key_stream(3, 10, seed=1)) == list(key_stream(3, 10, seed=1))

    def test_rank_independent(self):
        assert list(key_stream(0, 10)) != list(key_stream(1, 10))

    def test_bounds(self):
        assert all(0 <= k < 100 for k in key_stream(0, 50, key_space=100))


class TestWorkloadSpec:
    def test_insert_fraction(self):
        spec = WorkloadSpec(ops_per_client=100, insert_fraction=1.0)
        ops = list(spec.ops_for(0))
        assert len(ops) == 100
        assert all(op == "insert" for op, _k, _p in ops)

    def test_mixed_ops(self):
        spec = WorkloadSpec(ops_per_client=200, insert_fraction=0.5, seed=3)
        kinds = [op for op, _k, _p in spec.ops_for(1)]
        assert 40 < kinds.count("insert") < 160

    def test_payload_size(self):
        spec = WorkloadSpec(op_bytes=64 * 1024)
        _op, _key, payload = next(iter(spec.ops_for(0)))
        assert payload.nbytes == 64 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(insert_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(ops_per_client=0)


class TestExperiment:
    def test_derived_metrics(self):
        r = ExperimentResult("x", elapsed=2.0, total_ops=1000,
                             total_bytes=4 << 20)
        assert r.ops_per_second == 500
        assert r.mb_per_second == 2.0

    def test_zero_elapsed(self):
        r = ExperimentResult("x", elapsed=0.0, total_ops=10)
        assert r.ops_per_second == 0.0

    def test_run_trials_averages(self):
        def factory(seed):
            return ExperimentResult("t", elapsed=float(seed),
                                    total_ops=100, extra={"m": seed * 2.0})

        avg = run_trials(factory, trials=3, base_seed=1)
        assert avg.elapsed == pytest.approx(2.0)  # mean of 1,2,3
        assert avg.extra["m"] == pytest.approx(4.0)
        assert avg.extra["trials"] == 3

    def test_run_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(lambda s: None, trials=0)


class TestReport:
    def test_render_table(self):
        out = render_table("T1", ["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "T1" in out and "2.5" in out and "x" in out

    def test_render_series(self):
        out = render_series("S", "nodes", [8, 16],
                            {"hcl": [100.0, 200.0], "bcl": [50.0, 60.0]})
        assert "nodes" in out and "hcl" in out
        assert "100.00" in out

    def test_series_handles_short_columns(self):
        out = render_series("S", "x", [1, 2], {"partial": [5.0]})
        assert "-" in out

    def test_fmt_si(self):
        assert fmt_si(1234) == "1.23K"
        assert fmt_si(2_500_000) == "2.50M"
        assert fmt_si(3.2e9) == "3.20G"
        assert fmt_si(12.0) == "12.00"

    def test_ratio(self):
        assert ratio(10, 4) == 2.5
        assert ratio(1, 0) == float("inf")
