"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ClusterSpec, ares_like
from repro.core import HCL
from repro.fabric import Cluster
from repro.simnet import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_spec() -> ClusterSpec:
    """2 nodes x 4 procs — enough for local/remote path coverage."""
    return ares_like(nodes=2, procs_per_node=4, seed=7)


@pytest.fixture
def quad_spec() -> ClusterSpec:
    return ares_like(nodes=4, procs_per_node=4, seed=7)


@pytest.fixture
def cluster(small_spec) -> Cluster:
    return Cluster(small_spec)


@pytest.fixture
def hcl(small_spec) -> HCL:
    runtime = HCL(small_spec)
    yield runtime
    runtime.close()


@pytest.fixture
def hcl4(quad_spec) -> HCL:
    runtime = HCL(quad_spec)
    yield runtime
    runtime.close()


def run_rank0(runtime_or_cluster, gen):
    """Drive a single generator to completion on the cluster; return result."""
    cluster = getattr(runtime_or_cluster, "cluster", runtime_or_cluster)
    proc = cluster.spawn(gen)
    cluster.run()
    return proc.result


@pytest.fixture
def drive():
    return run_rank0
