"""Tests for the fabric: links, NIC, verbs, topology, providers."""

import pytest

from repro.config import CostModel
from repro.fabric import Cluster, Message, Verb
from repro.fabric.link import transfer
from repro.fabric.node import OutOfMemoryError
from repro.fabric.packet import WIRE_HEADER_BYTES
from repro.fabric.provider import PROVIDERS, get_provider


class TestPacket:
    def test_wire_size_adds_header(self):
        msg = Message(Verb.SEND, 0, 1, 1000)
        assert msg.wire_size == 1000 + WIRE_HEADER_BYTES

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(Verb.SEND, 0, 1, -1)

    def test_atomic_flag(self):
        assert Message(Verb.CAS, 0, 1, 28).is_atomic
        assert not Message(Verb.WRITE, 0, 1, 28).is_atomic

    def test_msg_ids_unique(self):
        a = Message(Verb.SEND, 0, 1, 10)
        b = Message(Verb.SEND, 0, 1, 10)
        assert a.msg_id != b.msg_id


class TestCostModel:
    def test_transfer_time_scales_with_size(self):
        cost = CostModel()
        assert cost.transfer_time(1 << 20) > cost.transfer_time(4096)

    def test_transfer_time_packet_overhead(self):
        cost = CostModel()
        one = cost.transfer_time(cost.mtu)
        two = cost.transfer_time(cost.mtu * 2)
        # Second packet adds bandwidth time plus one packet overhead.
        assert two == pytest.approx(
            one + cost.mtu / cost.link_bandwidth + cost.per_packet_overhead
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().transfer_time(-1)

    def test_local_read_write(self):
        cost = CostModel()
        assert cost.local_write(4096) > cost.local_read(0)
        assert cost.local_read(1 << 20) > cost.local_read(4096)


class TestLinkTransfer:
    def test_accounting(self, cluster):
        src, dst = cluster.node(0), cluster.node(1)
        msg = Message(Verb.WRITE, 0, 1, 10_000)

        def body():
            yield from transfer(src.egress, dst.ingress, msg)

        cluster.sim.run_process(body())
        assert src.egress.messages_total.value == 1
        assert dst.ingress.messages_total.value == 1
        assert src.egress.bytes_total.value == msg.wire_size
        # 10058 bytes over 4096-MTU = 3 packets
        assert src.egress.packets_total.value == 3

    def test_incast_serializes_on_ingress(self, cluster):
        """Two senders to one destination share its ingress bandwidth."""
        dst = cluster.node(1)
        size = 1 << 20

        def sender():
            msg = Message(Verb.WRITE, 0, 1, size)
            yield from transfer(cluster.node(0).egress, dst.ingress, msg)

        sim = cluster.sim
        sim.process(sender())
        sim.process(sender())
        sim.run()
        wire = cluster.spec.cost.transfer_time(size + WIRE_HEADER_BYTES)
        # Sequential on the shared egress/ingress: ~2x wire time plus latency.
        assert sim.now >= 2 * wire

    def test_propagation_pipelines(self, cluster):
        """Back-to-back small messages overlap their propagation delay."""
        cost = cluster.spec.cost
        n = 50

        def sender():
            for _ in range(n):
                msg = Message(Verb.SEND, 0, 1, 64)
                yield from transfer(
                    cluster.node(0).egress, cluster.node(1).ingress, msg
                )

        # Two concurrent senders: if propagation were inside the channel
        # hold, total time would include n*latency per sender serialized.
        sim = cluster.sim
        sim.process(sender())
        sim.process(sender())
        sim.run()
        serialized_latency = 2 * n * (2 * cost.link_latency + cost.switch_latency)
        assert sim.now < serialized_latency


class TestNic:
    def test_region_registration(self, cluster):
        node = cluster.node(0)
        region = node.register_region("r", 4096)
        assert node.nic.region("r") is region
        with pytest.raises(KeyError):
            node.register_region("r", 4096)
        with pytest.raises(KeyError):
            node.nic.region("missing")

    def test_region_cas_semantics(self, cluster):
        region = cluster.node(0).register_region("r", 4096)
        assert region.compare_and_swap(0, 0, 7) == 0
        assert region.read_word(0) == 7
        assert region.compare_and_swap(0, 0, 9) == 7  # fails
        assert region.read_word(0) == 7
        assert region.cas_failures.value == 1

    def test_region_fetch_add(self, cluster):
        region = cluster.node(0).register_region("r", 4096)
        assert region.fetch_add(8, 5) == 0
        assert region.fetch_add(8, 5) == 5
        assert region.read_word(8) == 10

    def test_memory_budget_oom(self, small_spec):
        cluster = Cluster(small_spec)
        node = cluster.node(0)
        with pytest.raises(OutOfMemoryError):
            node.allocate(node.memory_capacity + 1)

    def test_region_resize_accounting(self, cluster):
        node = cluster.node(0)
        node.register_region("r", 4096)
        used = node.memory_used.value
        node.resize_region("r", 8192)
        assert node.memory_used.value == used + 4096
        node.deregister_region("r")
        assert node.memory_used.value == used - 4096

    def test_atomics_serialize_per_region(self, cluster):
        """Concurrent remote CAS to one region take turns on its lock."""
        node1 = cluster.node(1)
        node1.register_region("hot", 4096)
        qp = cluster.qp(0)
        done_times = []

        def casser(i):
            yield from qp.cas(1, "hot", 0, i, i + 1)
            done_times.append(cluster.sim.now)

        for i in range(8):
            cluster.sim.process(casser(i))
        cluster.sim.run()
        # Serialization: completions are spread, not simultaneous.
        assert len(set(done_times)) == len(done_times)

    def test_utilization_probe(self, cluster):
        node = cluster.node(0)
        probe = node.nic.utilization_probe()
        assert probe() == 0.0

        def worker():
            yield from node.nic.serve_verb(1.0)

        cluster.sim.process(worker())
        cluster.sim.run()
        util = probe()
        assert 0.0 < util <= 100.0


class TestVerbs:
    def test_send_lands_in_recv_queue(self, cluster, drive):
        def body():
            yield from cluster.qp(0).send(1, {"op": "x"}, 128)

        drive(cluster, body())
        q = cluster.node(1).nic.recv_queue
        assert len(q) == 1

    def test_write_then_read_roundtrip(self, cluster, drive):
        cluster.node(1).register_region("data", 1 << 16)

        def body():
            qp = cluster.qp(0)
            yield from qp.rdma_write(1, "data", 64, ("k", "v"), 4096)
            out = yield from qp.rdma_read(1, "data", 64, 4096)
            return out

        assert drive(cluster, body()) == ("k", "v")

    def test_out_of_bounds_rejected(self, cluster, drive):
        cluster.node(1).register_region("data", 1024)

        def body():
            yield from cluster.qp(0).rdma_write(1, "data", 2048, "x", 10)

        with pytest.raises(IndexError):
            drive(cluster, body())

    def test_cas_returns_old_value(self, cluster, drive):
        cluster.node(1).register_region("data", 1024)

        def body():
            qp = cluster.qp(0)
            first = yield from qp.cas(1, "data", 0, 0, 5)
            second = yield from qp.cas(1, "data", 0, 0, 9)
            third = yield from qp.cas(1, "data", 0, 5, 9)
            return first, second, third

        assert drive(cluster, body()) == (0, 5, 5)

    def test_intra_node_loopback_cheaper(self, small_spec):
        """A local (same-node) write must be much faster than a remote one."""
        c1 = Cluster(small_spec)
        c1.node(0).register_region("data", 1 << 20)

        def local():
            yield from c1.qp(0).rdma_write(0, "data", 0, "x", 65536)

        c1.sim.run_process(local())
        local_t = c1.sim.now

        c2 = Cluster(small_spec)
        c2.node(1).register_region("data", 1 << 20)

        def remote():
            yield from c2.qp(0).rdma_write(1, "data", 0, "x", 65536)

        c2.sim.run_process(remote())
        remote_t = c2.sim.now
        assert local_t < remote_t

    def test_fetch_add_accumulates(self, cluster, drive):
        cluster.node(1).register_region("ctr", 1024)

        def body():
            qp = cluster.qp(0)
            a = yield from qp.fetch_add(1, "ctr", 0, 3)
            b = yield from qp.fetch_add(1, "ctr", 0, 4)
            return a, b

        assert drive(cluster, body()) == (0, 3)


class TestTopology:
    def test_rank_placement(self, cluster):
        assert cluster.node_of_rank(0) == 0
        assert cluster.node_of_rank(3) == 0
        assert cluster.node_of_rank(4) == 1
        with pytest.raises(IndexError):
            cluster.node_of_rank(100)

    def test_ranks_on_node(self, cluster):
        assert list(cluster.ranks_on_node(1)) == [4, 5, 6, 7]

    def test_qp_cached(self, cluster):
        assert cluster.qp(0) is cluster.qp(0)

    def test_spawn_ranks_runs_all(self, cluster):
        seen = []

        def body(rank):
            yield cluster.sim.timeout(0.001 * rank)
            seen.append(rank)

        cluster.spawn_ranks(body)
        cluster.run()
        assert sorted(seen) == list(range(8))

    def test_probes(self, cluster, drive):
        packets = cluster.packets_probe()
        assert packets() == 0.0
        mem = cluster.memory_probe(node_id=0)
        assert mem() == 0.0
        cluster.node(0).allocate(cluster.node(0).memory_capacity // 2)
        assert mem() == pytest.approx(50.0)


class TestProviders:
    def test_known_providers(self):
        assert set(PROVIDERS) == {"roce", "verbs", "tcp", "shm"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_provider("quantum")

    def test_tcp_slower_than_roce(self, small_spec):
        base = small_spec.cost
        tcp = get_provider("tcp").apply(base)
        assert tcp.link_bandwidth < base.link_bandwidth
        assert tcp.link_latency > base.link_latency
        assert not get_provider("tcp").supports_rdma_atomics

    def test_verbs_faster_than_roce(self, small_spec):
        verbs = get_provider("verbs").apply(small_spec.cost)
        assert verbs.link_bandwidth > small_spec.cost.link_bandwidth

    def test_cluster_applies_provider(self, small_spec):
        roce = Cluster(small_spec, provider="roce")
        tcp = Cluster(small_spec, provider="tcp")
        assert tcp.spec.cost.link_latency > roce.spec.cost.link_latency

    def test_same_workload_slower_on_tcp(self, small_spec):
        def run(provider):
            cluster = Cluster(small_spec, provider=provider)
            cluster.node(1).register_region("d", 1 << 20)

            def body():
                for i in range(10):
                    yield from cluster.qp(0).rdma_write(1, "d", 0, i, 4096)

            cluster.sim.run_process(body())
            return cluster.sim.now

        assert run("tcp") > run("roce")
