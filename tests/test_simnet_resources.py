"""Tests for Resource, PriorityResource, Store, and Container."""

import pytest

from repro.simnet import Resource, PriorityResource, Store, Container
from repro.simnet.core import SimulationError


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_immediate_grant_within_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_queueing_and_handover(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_length == 1
        res.release(r1)
        assert r2.triggered
        assert res.in_use == 1

    def test_fifo_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(i):
            req = res.request()
            yield req
            order.append(i)
            yield sim.timeout(1.0)
            res.release(req)

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_use_helper_serializes(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.use(2.0)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert sim.now == 6.0

    def test_parallel_capacity(self, sim):
        res = Resource(sim, capacity=3)

        def worker():
            yield from res.use(2.0)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert sim.now == 2.0

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        assert res.queue_length == 0
        res.release(r1)
        assert res.in_use == 0

    def test_release_unknown_raises(self, sim):
        res = Resource(sim, capacity=1)
        other = Resource(sim, capacity=1)
        req = other.request()
        other.release(req)
        from repro.simnet.resources import Request

        stray = Request(res)
        with pytest.raises(SimulationError):
            res.release(stray)

    def test_utilization_accounting(self, sim):
        res = Resource(sim, capacity=2)

        def worker():
            yield from res.use(4.0)

        sim.process(worker())
        sim.run()
        # one of two servers busy for the whole window
        assert res.utilization() == pytest.approx(0.5)
        assert res.busy_time() == pytest.approx(4.0)


class TestPriorityResource:
    def test_priority_order(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def worker(name, prio):
            req = res.request(prio)
            yield req
            order.append(name)
            yield sim.timeout(1.0)
            res.release(req)

        def spawn_all():
            # Occupy, then queue out-of-order priorities.
            req = res.request(0)
            yield req
            sim.process(worker("low", 5))
            sim.process(worker("high", 1))
            sim.process(worker("mid", 3))
            yield sim.timeout(1.0)
            res.release(req)

        sim.process(spawn_all())
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_cancel_queued(self, sim):
        res = PriorityResource(sim, capacity=1)
        r1 = res.request(0)
        r2 = res.request(1)
        res.release(r2)
        assert res.queue_length == 0
        res.release(r1)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def body():
            yield store.put("a")
            yield store.put("b")
            x = yield store.get()
            y = yield store.get()
            return x, y

        assert sim.run_process(body()) == ("a", "b")

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(5.0, "late")]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put(1)
            events.append(("put1", sim.now))
            yield store.put(2)
            events.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            item = yield store.get()
            events.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put1", 0.0) in events
        assert ("put2", 3.0) in events

    def test_try_get(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("x")
        ok, item = store.try_get()
        assert ok and item == "x"
        assert len(store) == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestContainer:
    def test_level_tracking(self, sim):
        c = Container(sim, capacity=100, init=10)

        def body():
            yield c.put(40)
            yield c.get(25)

        sim.process(body())
        sim.run()
        assert c.level == 25
        assert c.peak_level == 50

    def test_get_blocks_until_available(self, sim):
        c = Container(sim, capacity=100)
        times = []

        def getter():
            yield c.get(10)
            times.append(sim.now)

        def putter():
            yield sim.timeout(2.0)
            yield c.put(10)

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert times == [2.0]

    def test_put_blocks_at_capacity(self, sim):
        c = Container(sim, capacity=10, init=10)
        times = []

        def putter():
            yield c.put(5)
            times.append(sim.now)

        def getter():
            yield sim.timeout(1.0)
            yield c.get(5)

        sim.process(putter())
        sim.process(getter())
        sim.run()
        assert times == [1.0]

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=20)
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)
