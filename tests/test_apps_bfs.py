"""Tests for the distributed BFS kernel."""

import networkx as nx
import pytest

from repro.apps.bfs import make_graph, run_bfs
from repro.config import ares_like


@pytest.fixture(scope="module")
def bfs_spec():
    return ares_like(nodes=2, procs_per_node=3, seed=1)


class TestGraphGen:
    def test_shape(self):
        g = make_graph(vertices=100, avg_degree=4.0, seed=1)
        assert g.number_of_nodes() == 100
        assert g.number_of_edges() > 100

    def test_deterministic(self):
        a = make_graph(seed=3)
        b = make_graph(seed=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestBfs:
    def test_hcl_matches_networkx(self, bfs_spec):
        g = make_graph(vertices=120, avg_degree=3.0, seed=5)
        result = run_bfs("hcl", bfs_spec, g)
        assert result.verified
        assert result.levels > 2
        assert result.reached <= 120

    def test_bcl_matches_networkx(self, bfs_spec):
        g = make_graph(vertices=120, avg_degree=3.0, seed=5)
        result = run_bfs("bcl", bfs_spec, g)
        assert result.verified

    def test_backends_reach_same_set(self, bfs_spec):
        g = make_graph(vertices=80, avg_degree=2.5, seed=9)
        h = run_bfs("hcl", bfs_spec, g)
        b = run_bfs("bcl", bfs_spec, g)
        assert h.verified and b.verified
        assert h.reached == b.reached and h.levels == b.levels

    def test_hcl_faster_than_bcl(self, bfs_spec):
        g = make_graph(vertices=120, avg_degree=3.0, seed=5)
        h = run_bfs("hcl", bfs_spec, g)
        b = run_bfs("bcl", bfs_spec, g)
        assert h.time_seconds < b.time_seconds

    def test_disconnected_components_not_reached(self, bfs_spec):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2)])
        g.add_edges_from([(10, 11)])  # island
        result = run_bfs("hcl", bfs_spec, g)
        assert result.verified
        assert result.reached == 3  # 0,1,2 only

    def test_single_vertex(self, bfs_spec):
        g = nx.Graph()
        g.add_node(0)
        result = run_bfs("hcl", bfs_spec, g)
        assert result.verified and result.reached == 1 and result.levels == 0

    def test_path_graph_depth(self, bfs_spec):
        g = nx.path_graph(20)
        result = run_bfs("hcl", bfs_spec, g)
        assert result.verified
        assert result.levels == 19

    def test_unknown_backend(self, bfs_spec):
        with pytest.raises(ValueError):
            run_bfs("spark", bfs_spec, make_graph(20))
