"""Tests for the wall-clock attribution profiler (repro.obs.profile).

The load-bearing guarantee is *purity*: profiling observes frame
entry/exit only, so a profiled bench run must produce byte-identical
simulated results to an unprofiled one.  The rest covers subsystem
classification, scope accounting, folded-stack format, and the payload
validator that CI's profile-smoke leg runs.
"""

from __future__ import annotations

import json

from repro.harness.aggbench import emit_agg_json, run_agg_bench
from repro.harness.kernelbench import run_kernel_bench
from repro.obs import (
    WallProfiler,
    classify_function,
    render_profile,
    validate_profile,
    write_folded,
    write_profile_json,
)
from repro.obs.profile import PROFILE_SCHEMA_KIND


class TestClassification:
    def test_repo_paths_map_to_subsystems(self):
        cases = {
            "src/repro/serialization/codec.py": "marshal",
            "src/repro/rpc/coalesce.py": "coalesce",
            "src/repro/rpc/engine.py": "rpc",
            "src/repro/fabric/links.py": "fabric",
            "src/repro/obs/profile.py": "observability",
            "src/repro/simnet/trace.py": "observability",
            "src/repro/simnet/core.py": "kernel",
            "src/repro/core/hashmap.py": "container",
            "src/repro/structures/rbtree.py": "container",
            "src/repro/memory/segment.py": "memory",
            "src/repro/apps/kmer.py": "app",
            "src/repro/harness/aggbench.py": "harness",
            "benchmarks/check_regression.py": "harness",
        }
        for path, expected in cases.items():
            assert classify_function(path) == expected, path

    def test_stdlib_serialization_counts_as_marshal(self):
        assert classify_function("/usr/lib/python3.10/pickle.py") == "marshal"
        assert classify_function("/usr/lib/python3.10/struct.py") == "marshal"

    def test_everything_else_is_python(self):
        assert classify_function("~") == "python"
        assert classify_function("/usr/lib/python3.10/heapq.py") == "python"

    def test_unmatched_repo_file_is_other(self):
        assert classify_function("src/repro/mystery/new.py") == "other"

    def test_windows_separators_normalize(self):
        assert classify_function("src\\repro\\simnet\\core.py") == "kernel"


class TestScopes:
    def test_scopes_accumulate_wall_and_count(self):
        ticks = iter(range(100))
        prof = WallProfiler(clock=lambda: float(next(ticks)))
        with prof.scope("run"):
            pass  # 1 tick
        with prof.scope("run"):
            pass  # 1 tick
        payload = prof.report()
        scopes = {s["name"]: s for s in payload["scopes"]}
        assert scopes["run"]["count"] == 2
        assert scopes["run"]["wall_seconds"] == 2.0

    def test_nested_scopes_record_joined_path(self):
        prof = WallProfiler()
        with prof.scope("outer"):
            with prof.scope("inner"):
                pass
        names = {s["name"] for s in prof.report()["scopes"]}
        assert "outer" in names
        assert "outer;inner" in names


class TestReportShape:
    def _profiled_payload(self):
        prof = WallProfiler()
        with prof.profile():
            # Burn measurable time in a known subsystem: json.dumps with
            # indent runs the pure-Python encoder in json/encoder.py,
            # which classifies as "marshal" (pickle.dumps of builtins
            # stays in the C extension and never surfaces frames).
            blob = {str(i): list(range(20)) for i in range(200)}
            for _ in range(20):
                json.dumps(blob, indent=1)
            sum(i * i for i in range(20000))
        return prof.report(command="unit-test")

    def test_payload_validates_and_shares_sum_to_one(self):
        payload = self._profiled_payload()
        assert payload["kind"] == PROFILE_SCHEMA_KIND
        assert validate_profile(payload) == []
        assert payload["profiled_seconds"] > 0
        total = sum(row["share"] for row in payload["subsystems"])
        assert abs(total - 1.0) < 1e-6
        subsystems = {row["subsystem"] for row in payload["subsystems"]}
        assert "marshal" in subsystems

    def test_folded_lines_parse_as_path_and_microseconds(self):
        payload = self._profiled_payload()
        assert payload["folded"], "expected at least one folded stack"
        for line in payload["folded"]:
            path, _sep, value = line.rpartition(" ")
            assert path and value.isdigit()

    def test_render_mentions_subsystems_and_top_functions(self):
        text = render_profile(self._profiled_payload())
        assert "subsystem" in text
        assert "marshal" in text
        assert "top functions by self time" in text

    def test_json_and_folded_writers_round_trip(self, tmp_path):
        payload = self._profiled_payload()
        json_path = tmp_path / "p.json"
        folded_path = tmp_path / "p.folded"
        write_profile_json(payload, str(json_path))
        n = write_folded(payload, str(folded_path))
        loaded = json.loads(json_path.read_text())
        assert validate_profile(loaded) == []
        assert loaded["functions_total"] == payload["functions_total"]
        lines = folded_path.read_text().splitlines()
        assert len(lines) == n == len(payload["folded"])
        assert lines == payload["folded"]


class TestValidatorRejectsMalformedPayloads:
    def test_wrong_kind(self):
        errs = validate_profile({"kind": "nope", "wall_seconds": 0.0,
                                 "profiled_seconds": 0.0, "subsystems": [],
                                 "functions": [], "scopes": [], "folded": []})
        assert any("kind" in e for e in errs)

    def test_share_out_of_range(self):
        errs = validate_profile({
            "kind": PROFILE_SCHEMA_KIND, "wall_seconds": 1.0,
            "profiled_seconds": 0.0,
            "subsystems": [{"subsystem": "kernel", "share": 1.5,
                            "self_seconds": 1.0, "calls": 1}],
            "functions": [], "scopes": [], "folded": [],
        })
        assert any("outside [0, 1]" in e for e in errs)

    def test_bad_folded_line(self):
        errs = validate_profile({
            "kind": PROFILE_SCHEMA_KIND, "wall_seconds": 0.0,
            "profiled_seconds": 0.0, "subsystems": [], "functions": [],
            "scopes": [], "folded": ["kernel;walk not-a-number"],
        })
        assert any("folded[0]" in e for e in errs)

    def test_non_dict_payload(self):
        assert validate_profile([]) == ["profile payload must be an object"]


class TestProfilingPurity:
    """Profiling must never change simulated results."""

    def test_profiled_agg_bench_is_byte_identical(self, tmp_path):
        kwargs = dict(scale=0.25, sweep=[0, 64], apps=["kmer"],
                      repeats=1, sim_only=True)
        plain = run_agg_bench(**kwargs)
        prof = WallProfiler()
        with prof.profile():
            profiled = run_agg_bench(**kwargs)
        a, b = tmp_path / "plain.json", tmp_path / "profiled.json"
        emit_agg_json(plain, str(a))
        emit_agg_json(profiled, str(b))
        assert a.read_bytes() == b.read_bytes()
        # and the profile itself is well-formed, attributing real time
        payload = prof.report(command="aggbench")
        assert validate_profile(payload) == []
        assert payload["profiled_seconds"] > 0

    def test_profiled_kernel_bench_matches_sim_fields(self):
        plain = run_kernel_bench(procs=10, timeouts_per_proc=200)
        prof = WallProfiler()
        with prof.profile():
            profiled = run_kernel_bench(procs=10, timeouts_per_proc=200)
        assert profiled.events_processed == plain.events_processed
        assert profiled.sim_seconds == plain.sim_seconds
