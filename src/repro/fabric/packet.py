"""Wire-level message descriptors.

A :class:`Message` is the unit handed to a :class:`~repro.fabric.link.Link`;
its ``size`` drives transfer time and packet counting.  ``Verb`` enumerates
the RDMA operations the simulated NIC understands.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Verb", "Message", "WIRE_HEADER_BYTES"]

#: Per-message header bytes added on the wire (RoCE/IB GRH+BTH ballpark).
WIRE_HEADER_BYTES = 58

_msg_ids = itertools.count(1)


class Verb(enum.Enum):
    """RDMA verb kinds understood by the simulated NIC."""

    SEND = "send"  # two-sided send into remote recv queue
    WRITE = "rdma_write"  # one-sided write to a registered region
    READ = "rdma_read"  # one-sided read from a registered region
    CAS = "atomic_cas"  # remote compare-and-swap (8-byte granule)
    FETCH_ADD = "atomic_faa"  # remote fetch-and-add


@dataclass(slots=True)
class Message:
    """A single fabric transfer.

    ``size`` is payload bytes; wire size adds the header per packet-train.
    ``payload`` carries the *real* Python data so upper layers stay
    functional, not just timed.

    Slotted: one Message is allocated per remote op (plus one per fused
    response), so the dict-free layout is measurable at full-paper scale —
    see ``benchmarks/test_alloc_micro.py``.
    """

    verb: Verb
    src_node: int
    dst_node: int
    size: int
    payload: Any = None
    region: Optional[str] = None  # target memory-region key for one-sided ops
    offset: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self):
        if self.size < 0:
            raise ValueError("message size must be non-negative")

    @property
    def wire_size(self) -> int:
        return self.size + WIRE_HEADER_BYTES

    @property
    def is_atomic(self) -> bool:
        return self.verb in (Verb.CAS, Verb.FETCH_ADD)
