"""Simulated RDMA-capable cluster fabric.

This package substitutes for the Ares testbed hardware (ConnectX-4 40GbE
RoCE NICs, a fat-tree-ish switch, 40-core nodes).  It models the fabric at
the *verbs* level: queue pairs, work queues served by NIC cores, one-sided
READ/WRITE, SEND/RECV, and remote atomics (CAS) with per-region
serialization — exactly the operations whose counts and placement drive the
paper's HCL-vs-BCL argument.

Layering::

    topology.Cluster            # nodes + links + switch + RNG
      node.Node                 # cores, memory container, NIC
        nic.Nic                 # NIC cores, work/completion queues, regions
          verbs.QueuePair       # the verbs API used by rpc/ and bcl/
    link.Link                   # bandwidth + latency, cut-through
    provider.Provider           # OFI-like fabric parameter presets
"""

from repro.fabric.packet import Message, Verb
from repro.fabric.link import Link
from repro.fabric.nic import Nic, MemoryRegion
from repro.fabric.node import Node, NodeDownError, OutOfMemoryError
from repro.fabric.switch import Switch
from repro.fabric.topology import Cluster
from repro.fabric.verbs import QueuePair
from repro.fabric.cq import Completion, CompletionQueue, QueuePairAsync, WorkRequest
from repro.fabric.provider import Provider, get_provider, PROVIDERS

__all__ = [
    "Message",
    "Verb",
    "Link",
    "Nic",
    "MemoryRegion",
    "Node",
    "NodeDownError",
    "OutOfMemoryError",
    "Switch",
    "Cluster",
    "QueuePair",
    "Completion",
    "CompletionQueue",
    "QueuePairAsync",
    "WorkRequest",
    "Provider",
    "get_provider",
    "PROVIDERS",
]
