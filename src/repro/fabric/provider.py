"""OFI-like fabric providers.

HCL uses the Open Fabric Interface to stay portable across transports
(Section I: "IB, TCP, CC, etc.").  We reproduce that portability layer as
named parameter presets that rewrite the :class:`~repro.config.CostModel`:
the same verbs API runs over any provider; only constants change.

* ``roce``  — the paper's testbed: 40GbE RoCE, ~4.5 GB/s, microsecond verbs.
* ``verbs`` — native InfiniBand EDR-class: more bandwidth, lower latency.
* ``tcp``   — sockets provider: no NIC offload (atomics emulated on host,
  much higher per-op latency), the fallback OFI always has.
* ``shm``   — intra-node only; bandwidth = memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.config import CostModel, GB

__all__ = ["Provider", "PROVIDERS", "get_provider"]


@dataclass(frozen=True)
class Provider:
    """A named transport personality for the simulated fabric."""

    name: str
    supports_rdma_atomics: bool
    supports_nic_offload: bool
    description: str

    def apply(self, base: CostModel) -> CostModel:
        """Return a CostModel adjusted for this provider."""
        if self.name == "roce":
            return base
        if self.name == "verbs":
            return replace(
                base,
                link_bandwidth=11.0 * GB,
                link_latency=1.2e-6,
                nic_verb_service=0.9e-6,
                nic_atomic_service=1.2e-6,
            )
        if self.name == "tcp":
            return replace(
                base,
                link_bandwidth=1.1 * GB,
                link_latency=18.0e-6,
                per_packet_overhead=1.2e-6,
                nic_verb_service=6.0e-6,  # host kernel path, no offload
                nic_atomic_service=9.0e-6,  # emulated atomics round-trip
                nic_rpc_dispatch=8.0e-6,
            )
        if self.name == "shm":
            return replace(
                base,
                link_bandwidth=base.memory_bandwidth,
                link_latency=0.2e-6,
                per_packet_overhead=0.02e-6,
            )
        raise ValueError(f"unknown provider {self.name!r}")


PROVIDERS: Dict[str, Provider] = {
    "roce": Provider(
        "roce", True, True,
        "RDMA over Converged Ethernet, 40GbE (paper testbed)"),
    "verbs": Provider(
        "verbs", True, True,
        "native InfiniBand verbs, EDR-class"),
    "tcp": Provider(
        "tcp", False, False,
        "sockets provider; no NIC offload, software atomics"),
    "shm": Provider(
        "shm", True, True,
        "intra-node shared memory"),
}


def get_provider(name: str) -> Provider:
    try:
        return PROVIDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown provider {name!r}; choose from {sorted(PROVIDERS)}"
        ) from None
