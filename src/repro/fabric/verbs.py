"""The verbs API: queue pairs over the simulated fabric.

This is the narrow waist both libraries sit on:

* ``repro.bcl`` issues :meth:`QueuePair.cas`, :meth:`QueuePair.rdma_write`,
  :meth:`QueuePair.rdma_read` directly (client-side programming).
* ``repro.rpc`` issues one :meth:`QueuePair.send` per operation and one
  :meth:`QueuePair.rdma_read` to pull the response (Fig 2 of the paper).

All operations are generators to be driven inside a simulated process; each
returns the semantically-correct result (read payload, old CAS word, ...).

Atomic-size messages (CAS/FAA) carry ~28 bytes on the wire.
"""

from __future__ import annotations

from typing import Any

from repro.fabric.link import transfer
from repro.fabric.packet import Message, Verb

__all__ = ["QueuePair", "ATOMIC_WIRE_BYTES", "ACK_WIRE_BYTES"]

ATOMIC_WIRE_BYTES = 28
ACK_WIRE_BYTES = 16


class QueuePair:
    """A (simulated) reliable-connected queue pair from one node to the fabric.

    A single QP object is reusable toward any destination node; connection
    setup cost is not modelled (it is identical for both libraries and
    amortized away in every experiment of the paper).
    """

    def __init__(self, cluster, src_node: int):
        self.cluster = cluster
        self.src_node = src_node
        self.sim = cluster.sim
        self.cost = cluster.spec.cost

    # -- internal helpers ------------------------------------------------------
    def _nodes(self, dst: int):
        return self.cluster.node(self.src_node), self.cluster.node(dst)

    def _wire(self, dst: int, msg: Message):
        """Move a message src -> dst, or charge loopback for intra-node."""
        src_node, dst_node = self._nodes(dst)
        if dst == self.src_node:
            # NIC loopback: no switch traversal, but the transfer still
            # crosses the NIC's internal path at link-class bandwidth.
            yield from src_node.nic_loopback.use(
                self.cost.transfer_time(msg.wire_size)
            )
            src_node.egress.account(msg)
            src_node.ingress.account(msg)
        else:
            faults = self.cluster.faults
            if faults is not None:
                # May delay, schedule a duplicate, or raise FabricDropped.
                yield from faults.outbound(msg)
            yield from transfer(src_node.egress, dst_node.ingress, msg,
                                switch=self.cluster.switch)

    def _doorbell(self):
        yield self.sim.timeout(self.cost.nic_doorbell)

    # -- two-sided -----------------------------------------------------------
    def send(self, dst: int, payload: Any, size: int):
        """RDMA_SEND ``payload`` into the destination NIC's recv work queue.

        Returns after the message is enqueued remotely (reliable delivery);
        matching of sends to receivers is the upper layer's business.
        """
        src_node, dst_node = self._nodes(dst)
        msg = Message(Verb.SEND, self.src_node, dst, size, payload=payload)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        # Unbounded (or non-full) work queues accept the message without a
        # scheduler round-trip; only a *full* bounded queue blocks the QP.
        if not dst_node.nic.recv_queue.try_put(msg):
            yield dst_node.nic.recv_queue.put(msg)
        return msg.msg_id

    # -- one-sided data -----------------------------------------------------------
    def rdma_write(self, dst: int, region: str, offset: int, payload: Any, size: int):
        """One-sided write of ``payload`` into ``region`` at ``offset``."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        if offset < 0 or offset >= target.size:
            raise IndexError(
                f"rdma_write offset {offset} outside region {region!r} "
                f"(size {target.size})"
            )
        msg = Message(Verb.WRITE, self.src_node, dst, size,
                      payload=payload, region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_verb()
        target.put_object(offset, payload)
        return True

    def rdma_read(self, dst: int, region: str, offset: int, size: int):
        """One-sided read; returns the payload stored at ``offset``."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        if offset < 0 or offset >= target.size:
            raise IndexError(
                f"rdma_read offset {offset} outside region {region!r} "
                f"(size {target.size})"
            )
        # Request goes out small; the data comes back at ``size``.
        req = Message(Verb.READ, self.src_node, dst, ACK_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, req)
        yield from dst_node.nic.serve_verb()
        payload = target.get_object(offset)
        resp = Message(Verb.READ, dst, self.src_node, size, payload=payload)
        yield from self._wire_back(dst, resp)
        return payload

    def _wire_back(self, dst: int, msg: Message):
        src_node, dst_node = self._nodes(dst)
        if dst == self.src_node:
            yield from src_node.nic_loopback.use(
                self.cost.transfer_time(msg.wire_size)
            )
            src_node.egress.account(msg)
            src_node.ingress.account(msg)
        else:
            faults = self.cluster.faults
            if faults is not None:
                yield from faults.outbound(msg)
            yield from transfer(dst_node.egress, src_node.ingress, msg,
                                switch=self.cluster.switch)

    # -- atomics -------------------------------------------------------------------
    def cas(self, dst: int, region: str, offset: int, expected: int, desired: int):
        """Remote compare-and-swap.  Returns the old word value.

        The atomic executes on the target NIC under the region's atomic
        lock — concurrent CASes to one region serialize, the effect the
        paper's motivating test (Fig 1) measures.
        """
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        msg = Message(Verb.CAS, self.src_node, dst, ATOMIC_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_atomic(target)
        old = target.compare_and_swap(offset, expected, desired)
        ack = Message(Verb.CAS, dst, self.src_node, ATOMIC_WIRE_BYTES)
        yield from self._wire_back(dst, ack)
        return old

    def fetch_add(self, dst: int, region: str, offset: int, delta: int):
        """Remote fetch-and-add.  Returns the pre-add value."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        msg = Message(Verb.FETCH_ADD, self.src_node, dst, ATOMIC_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_atomic(target)
        old = target.fetch_add(offset, delta)
        ack = Message(Verb.FETCH_ADD, dst, self.src_node, ATOMIC_WIRE_BYTES)
        yield from self._wire_back(dst, ack)
        return old
