"""The verbs API: queue pairs over the simulated fabric.

This is the narrow waist both libraries sit on:

* ``repro.bcl`` issues :meth:`QueuePair.cas`, :meth:`QueuePair.rdma_write`,
  :meth:`QueuePair.rdma_read` directly (client-side programming).
* ``repro.rpc`` issues one :meth:`QueuePair.send` per operation and one
  :meth:`QueuePair.rdma_read` to pull the response (Fig 2 of the paper).

All operations are generators to be driven inside a simulated process; each
returns the semantically-correct result (read payload, old CAS word, ...).

Atomic-size messages (CAS/FAA) carry ~28 bytes on the wire.
"""

from __future__ import annotations

from typing import Any

from repro.fabric.link import transfer
from repro.fabric.packet import Message, Verb

__all__ = ["QueuePair", "ATOMIC_WIRE_BYTES", "ACK_WIRE_BYTES"]

ATOMIC_WIRE_BYTES = 28
ACK_WIRE_BYTES = 16


class QueuePair:
    """A (simulated) reliable-connected queue pair from one node to the fabric.

    A single QP object is reusable toward any destination node; connection
    setup cost is not modelled (it is identical for both libraries and
    amortized away in every experiment of the paper).
    """

    def __init__(self, cluster, src_node: int):
        self.cluster = cluster
        self.src_node = src_node
        self.sim = cluster.sim
        self.cost = cluster.spec.cost

    # -- internal helpers ------------------------------------------------------
    def _nodes(self, dst: int):
        return self.cluster.node(self.src_node), self.cluster.node(dst)

    def _wire(self, dst: int, msg: Message):
        """Move a message src -> dst, or charge loopback for intra-node."""
        src_node, dst_node = self._nodes(dst)
        if dst == self.src_node:
            # NIC loopback: no switch traversal, but the transfer still
            # crosses the NIC's internal path at link-class bandwidth.
            yield from src_node.nic_loopback.use(
                self.cost.transfer_time(msg.wire_size)
            )
            src_node.egress.account(msg)
            src_node.ingress.account(msg)
        else:
            faults = self.cluster.faults
            if faults is not None:
                # May delay, schedule a duplicate, or raise FabricDropped.
                yield from faults.outbound(msg)
            yield from transfer(src_node.egress, dst_node.ingress, msg,
                                switch=self.cluster.switch)

    def _doorbell(self):
        yield self.sim.timeout(self.cost.nic_doorbell)

    # -- two-sided -----------------------------------------------------------
    def send(self, dst: int, payload: Any, size: int):
        """RDMA_SEND ``payload`` into the destination NIC's recv work queue.

        Returns after the message is enqueued remotely (reliable delivery);
        matching of sends to receivers is the upper layer's business.
        """
        src_node, dst_node = self._nodes(dst)
        msg = Message(Verb.SEND, self.src_node, dst, size, payload=payload)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        # Admission control: a bounded-RPC-queue target may shed the message
        # here instead of accepting it (the hook deposits the rejection).
        if dst_node.nic.admit(msg):
            # Unbounded (or non-full) work queues accept the message without
            # a scheduler round-trip; only a *full* bounded queue blocks the QP.
            if not dst_node.nic.recv_queue.try_put(msg):
                yield dst_node.nic.recv_queue.put(msg)
        return msg.msg_id

    def try_send_fused(self, dst: int, payload: Any, size: int):
        """Closed-form batch charge for an uncontended SEND.

        When the whole doorbell -> NIC core -> wire -> latency pipeline is
        guaranteed contention-free, the coalescer's flush SEND can be
        charged with one analytic completion event instead of ~7 per-stage
        events.  Returns ``(completion, msg)`` — the caller yields
        ``completion`` (fires at the exact instant the per-packet path
        would return) and then enqueues ``msg`` on the destination recv
        queue, mirroring the sequential ordering.  Returns ``None`` when
        any stage might contend; the caller falls back to :meth:`send`.

        Guard: fair-weather fabric (no fault plan), inter-node, alive
        target, full-bisection switch, idle egress/ingress links, and a
        free source NIC core.  The claimed resources are released by
        scheduled callbacks at the same instants the per-packet holds end,
        so concurrent traffic arriving mid-flight queues exactly as it
        would against the sequential transfer.  (Claims start at call time
        rather than at the doorbell/wire stage boundaries — a slightly
        wider busy window, which is why batch charging is opt-in and not
        bit-identical to per-packet interleaving.)
        """
        cluster = self.cluster
        if cluster.faults is not None or dst == self.src_node:
            return None
        switch = cluster.switch
        if not switch.admits_fused:
            return None
        src_node, dst_node = self._nodes(dst)
        if not dst_node.alive:
            return None
        egress, ingress = src_node.egress, dst_node.ingress
        nic = src_node.nic
        if not (nic.core_free() and egress.is_idle() and ingress.is_idle()):
            return None
        # No simulated time passes between the checks above and the claims
        # below, so the claims cannot race another process.
        nic.reserve_core()
        egress.reserve()
        ingress.reserve()
        msg = Message(Verb.SEND, self.src_node, dst, size, payload=payload)
        sim = self.sim
        cost = self.cost
        # Stage boundaries in the identical float-add order the sequential
        # path produces (doorbell, verb service, wire, propagation+switch).
        t1 = sim.now + cost.nic_doorbell
        t2 = t1 + cost.nic_verb_service
        t3 = t2 + egress.wire_time(msg)
        t4 = t3 + (2 * cost.link_latency + cost.switch_latency)
        sim.schedule_callback_at(nic.release_core_fused, t2)

        def _wire_done():
            switch.fused_transit()
            egress.account(msg)
            ingress.account(msg)
            ingress.channel.release_slot()
            egress.channel.release_slot()

        sim.schedule_callback_at(_wire_done, t3)
        return sim.timeout_at(t4), msg

    # -- one-sided data -----------------------------------------------------------
    def rdma_write(self, dst: int, region: str, offset: int, payload: Any, size: int):
        """One-sided write of ``payload`` into ``region`` at ``offset``."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        if offset < 0 or offset >= target.size:
            raise IndexError(
                f"rdma_write offset {offset} outside region {region!r} "
                f"(size {target.size})"
            )
        msg = Message(Verb.WRITE, self.src_node, dst, size,
                      payload=payload, region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_verb()
        target.put_object(offset, payload)
        return True

    def rdma_read(self, dst: int, region: str, offset: int, size: int):
        """One-sided read; returns the payload stored at ``offset``."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        if offset < 0 or offset >= target.size:
            raise IndexError(
                f"rdma_read offset {offset} outside region {region!r} "
                f"(size {target.size})"
            )
        # Request goes out small; the data comes back at ``size``.
        req = Message(Verb.READ, self.src_node, dst, ACK_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, req)
        yield from dst_node.nic.serve_verb()
        payload = target.get_object(offset)
        resp = Message(Verb.READ, dst, self.src_node, size, payload=payload)
        yield from self._wire_back(dst, resp)
        return payload

    def try_rdma_read_fused(self, dst: int, region: str, offset: int, size: int):
        """Closed-form batch charge for an uncontended RDMA_READ.

        The read pipeline touches six resources (source core, source
        egress + destination ingress for the request, destination core,
        destination egress + source ingress for the response); when every
        one is idle the whole round trip collapses to one analytic
        completion plus four release callbacks at the exact per-packet
        hold-end instants.  Returns ``(completion, payload)`` — the caller
        yields ``completion``, which fires when the per-packet path would
        return — or ``None`` to fall back to :meth:`rdma_read`.

        The payload is snapshotted at call time; that is sound for the RPC
        response pull because the server deposits the envelope *before*
        signalling the completion the client waits on, and response slots
        are never rewritten.
        """
        cluster = self.cluster
        if cluster.faults is not None or dst == self.src_node:
            return None
        switch = cluster.switch
        if not switch.admits_fused:
            return None
        src_node, dst_node = self._nodes(dst)
        if not dst_node.alive:
            return None
        target = dst_node.nic.region(region)
        if offset < 0 or offset >= target.size:
            raise IndexError(
                f"rdma_read offset {offset} outside region {region!r} "
                f"(size {target.size})"
            )
        src_nic, dst_nic = src_node.nic, dst_node.nic
        if not (src_nic.core_free() and dst_nic.core_free()
                and src_node.egress.is_idle() and dst_node.ingress.is_idle()
                and dst_node.egress.is_idle() and src_node.ingress.is_idle()):
            return None
        # Claims cannot race: no simulated time passes since the checks.
        src_nic.reserve_core()
        dst_nic.reserve_core()
        src_node.egress.reserve()
        dst_node.ingress.reserve()
        dst_node.egress.reserve()
        src_node.ingress.reserve()
        payload = target.get_object(offset)
        req = Message(Verb.READ, self.src_node, dst, ACK_WIRE_BYTES,
                      region=region, offset=offset)
        resp = Message(Verb.READ, dst, self.src_node, size, payload=payload)
        sim = self.sim
        cost = self.cost
        latency = 2 * cost.link_latency + cost.switch_latency
        t1 = sim.now + cost.nic_doorbell
        t2 = t1 + cost.nic_verb_service          # source core done
        t3 = t2 + src_node.egress.wire_time(req)  # request off the wire
        t4 = t3 + latency                         # request delivered
        t5 = t4 + cost.nic_verb_service           # target core done
        t6 = t5 + dst_node.egress.wire_time(resp)  # response off the wire
        t7 = t6 + latency                         # response delivered
        sim.schedule_callback_at(src_nic.release_core_fused, t2)

        def _request_done():
            switch.fused_transit()
            src_node.egress.account(req)
            dst_node.ingress.account(req)
            dst_node.ingress.channel.release_slot()
            src_node.egress.channel.release_slot()

        sim.schedule_callback_at(_request_done, t3)
        sim.schedule_callback_at(dst_nic.release_core_fused, t5)

        def _response_done():
            switch.fused_transit()
            dst_node.egress.account(resp)
            src_node.ingress.account(resp)
            src_node.ingress.channel.release_slot()
            dst_node.egress.channel.release_slot()

        sim.schedule_callback_at(_response_done, t6)
        return sim.timeout_at(t7), payload

    def _wire_back(self, dst: int, msg: Message):
        src_node, dst_node = self._nodes(dst)
        if dst == self.src_node:
            yield from src_node.nic_loopback.use(
                self.cost.transfer_time(msg.wire_size)
            )
            src_node.egress.account(msg)
            src_node.ingress.account(msg)
        else:
            faults = self.cluster.faults
            if faults is not None:
                yield from faults.outbound(msg)
            yield from transfer(dst_node.egress, src_node.ingress, msg,
                                switch=self.cluster.switch)

    # -- atomics -------------------------------------------------------------------
    def cas(self, dst: int, region: str, offset: int, expected: int, desired: int):
        """Remote compare-and-swap.  Returns the old word value.

        The atomic executes on the target NIC under the region's atomic
        lock — concurrent CASes to one region serialize, the effect the
        paper's motivating test (Fig 1) measures.
        """
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        msg = Message(Verb.CAS, self.src_node, dst, ATOMIC_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_atomic(target)
        old = target.compare_and_swap(offset, expected, desired)
        ack = Message(Verb.CAS, dst, self.src_node, ATOMIC_WIRE_BYTES)
        yield from self._wire_back(dst, ack)
        return old

    def fetch_add(self, dst: int, region: str, offset: int, delta: int):
        """Remote fetch-and-add.  Returns the pre-add value."""
        src_node, dst_node = self._nodes(dst)
        target = dst_node.nic.region(region)
        msg = Message(Verb.FETCH_ADD, self.src_node, dst, ATOMIC_WIRE_BYTES,
                      region=region, offset=offset)
        yield from self._doorbell()
        yield from src_node.nic.serve_verb()
        yield from self._wire(dst, msg)
        yield from dst_node.nic.serve_atomic(target)
        old = target.fetch_add(offset, delta)
        ack = Message(Verb.FETCH_ADD, dst, self.src_node, ATOMIC_WIRE_BYTES)
        yield from self._wire_back(dst, ack)
        return old
