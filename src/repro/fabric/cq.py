"""Completion queues and non-blocking work requests (ibverbs semantics).

Fig 2 of the paper shows the client learning about its operations through
completion notifications (``ibv_get_cq_event``, ``IBV_WC_RECV``).  This
module provides that layer: a :class:`CompletionQueue` collects
:class:`Completion` entries as posted work requests finish, and
:meth:`QueuePairAsync.post` turns any (generator) verb into a non-blocking
work request.

This is also what gives the BCL baseline its *flush* semantics: "Low write
asynchronicity caused by the necessity of performing a flush operation,
which forces the callers to serialize updates" (Section I, limitation b) —
a BCL client can post many operations, but correctness points require
waiting for every outstanding completion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.simnet.core import Event, Simulator
from repro.simnet.resources import Store

__all__ = ["Completion", "CompletionQueue", "WorkRequest", "QueuePairAsync"]

_wr_ids = itertools.count(1)


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry (the WC of ibverbs)."""

    wr_id: int
    ok: bool
    result: object = None
    error: Optional[str] = None


class CompletionQueue:
    """FIFO of completions with blocking and non-blocking consumption."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._store = Store(sim, name=name or "cq")
        self.posted = 0
        self.completed = 0

    # -- producer side (the NIC) ------------------------------------------
    def _push(self, completion: Completion) -> None:
        self.completed += 1
        self._store.put(completion)

    # -- consumer side -----------------------------------------------------
    def poll(self) -> Optional[Completion]:
        """Non-blocking: one completion or None (``ibv_poll_cq``)."""
        ok, item = self._store.try_get()
        return item if ok else None

    def wait(self) -> Event:
        """Event for the next completion (``ibv_get_cq_event``)."""
        return self._store.get()

    def drain(self, count: int):
        """Generator: wait for ``count`` completions; returns them all."""
        out: List[Completion] = []
        for _ in range(count):
            completion = yield self._store.get()
            out.append(completion)
        return out

    @property
    def outstanding(self) -> int:
        return self.posted - self.completed

    def __len__(self) -> int:
        return len(self._store)


class WorkRequest:
    """Handle for a posted non-blocking verb."""

    __slots__ = ("wr_id", "process")

    def __init__(self, wr_id: int, process):
        self.wr_id = wr_id
        self.process = process

    @property
    def done(self) -> bool:
        return self.process.triggered


class QueuePairAsync:
    """Non-blocking posting facade over a (synchronous-generator) QueuePair.

    ::

        aqp = QueuePairAsync(cluster.qp(0))
        wr1 = aqp.post(qp.rdma_write(1, "r", 0, data, 4096))
        wr2 = aqp.post(qp.cas(1, "r", 0, 0, 1))
        completions = yield from aqp.flush()   # wait for everything
    """

    def __init__(self, qp, cq: Optional[CompletionQueue] = None):
        self.qp = qp
        self.sim = qp.sim
        self.cq = cq or CompletionQueue(qp.sim, name=f"cq-n{qp.src_node}")

    def post(self, verb_gen: Generator, wr_id: Optional[int] = None) -> WorkRequest:
        """Launch a verb without waiting; completion lands in the CQ."""
        wr = wr_id if wr_id is not None else next(_wr_ids)
        self.cq.posted += 1

        def runner():
            try:
                result = yield from verb_gen
            except Exception as err:  # noqa: BLE001 - surfaced via the CQ
                self.cq._push(Completion(wr, ok=False,
                                         error=f"{type(err).__name__}: {err}"))
                return
            self.cq._push(Completion(wr, ok=True, result=result))

        process = self.sim.process(runner(), name=f"wr-{wr}")
        return WorkRequest(wr, process)

    def flush(self):
        """Generator: wait for every outstanding completion (the BCL flush)."""
        pending = self.cq.outstanding + len(self.cq)
        completions = yield from self.cq.drain(pending)
        return completions
