"""Simulated RDMA NIC: cores, work queues, registered memory regions.

The NIC is where the paper's two designs differ:

* **BCL** drives every data-structure mutation with one-sided verbs; remote
  atomics (CAS) execute on the *target* NIC and serialize per memory region
  (``MemoryRegion.atomic_lock``), which is limitation (c)/(d) in Section I.
* **HCL** posts a single SEND carrying an RPC DataBox; the request lands in
  the NIC's receive work queue (``recv_queue``) and is executed by one of the
  ``nic_cores`` NIC cores (Fig 2) without involving the host CPU.

Memory regions store *real* Python payloads (``objects``) plus an 8-byte
word table (``words``) that remote CAS operates on, so the BCL baseline is
functionally correct, not just timed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.config import CostModel
from repro.obs.registry import registry_of
from repro.simnet.core import Simulator
from repro.simnet.resources import Resource, Store
from repro.simnet.sync import SimLock

__all__ = ["MemoryRegion", "Nic"]


class MemoryRegion:
    """A registered, remotely-accessible slab of node memory.

    ``objects`` maps offset -> arbitrary payload (the data plane);
    ``words`` maps offset -> int (the 8-byte atomics plane used by CAS).
    """

    def __init__(self, sim: Simulator, name: str, size: int):
        if size <= 0:
            raise ValueError("region size must be positive")
        self.sim = sim
        self.name = name
        self.size = size
        self.objects: Dict[int, Any] = {}
        self.words: Dict[int, int] = {}
        # Remote atomics to the same region serialize here (paper Sec. I(c)).
        self.atomic_lock = SimLock(sim, name=f"{name}/atomics")
        metrics = registry_of(sim)
        self.cas_attempts = metrics.counter(f"{name}/cas_attempts")
        self.cas_failures = metrics.counter(f"{name}/cas_failures")

    def read_word(self, offset: int) -> int:
        return self.words.get(offset, 0)

    def write_word(self, offset: int, value: int) -> None:
        self.words[offset] = int(value)

    def compare_and_swap(self, offset: int, expected: int, desired: int) -> int:
        """Atomically CAS the word at ``offset``; returns the *old* value."""
        self.cas_attempts.add(1)
        old = self.words.get(offset, 0)
        if old == expected:
            self.words[offset] = int(desired)
        else:
            self.cas_failures.add(1)
        return old

    def fetch_add(self, offset: int, delta: int) -> int:
        old = self.words.get(offset, 0)
        self.words[offset] = old + int(delta)
        return old

    def put_object(self, offset: int, payload: Any) -> None:
        self.objects[offset] = payload

    def get_object(self, offset: int) -> Any:
        return self.objects.get(offset)


class Nic:
    """NIC of one node: processing cores, work queues, regions, counters."""

    def __init__(self, sim: Simulator, node_id: int, cost: CostModel):
        self.sim = sim
        self.node_id = node_id
        self.cost = cost
        # Multi-core NIC (BlueField-class); serves verbs *and* RoR RPCs.
        self.cores = Resource(sim, capacity=cost.nic_cores, name=f"nic{node_id}/cores")
        # Receive work queue for two-sided SENDs (the RoR request buffer feed).
        self.recv_queue = Store(sim, name=f"nic{node_id}/recv")
        #: admission-control hook for inbound SENDs: ``hook(msg) -> bool``.
        #: ``None`` (the default) admits everything.  When a hook returns
        #: False the message must NOT be enqueued — the hook has already
        #: disposed of it (e.g. deposited a load-shed rejection envelope).
        #: Installed by ``RpcServer(queue_bound=...)``.
        self.admission = None
        self.regions: Dict[str, MemoryRegion] = {}
        metrics = registry_of(sim)
        self.verbs_processed = metrics.counter(f"nic{node_id}/verbs")
        self.rpcs_processed = metrics.counter(f"nic{node_id}/rpcs")

    # -- memory registration ------------------------------------------------
    def register_region(self, name: str, size: int) -> MemoryRegion:
        if name in self.regions:
            raise KeyError(f"region {name!r} already registered on node {self.node_id}")
        region = MemoryRegion(self.sim, f"n{self.node_id}/{name}", size)
        self.regions[name] = region
        return region

    def deregister_region(self, name: str) -> None:
        self.regions.pop(name, None)

    def region(self, name: str) -> MemoryRegion:
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(f"no region {name!r} on node {self.node_id}") from None

    def admit(self, msg) -> bool:
        """Consult the admission hook for a delivered SEND.

        Callers enqueue onto :attr:`recv_queue` only when this returns
        True; a False means the hook shed the message (and has already
        produced whatever rejection response the protocol requires).
        """
        gate = self.admission
        return True if gate is None else gate(msg)

    def drop_pending(self) -> int:
        """Discard queued-but-unserved receive work (crash injection).

        Requests already being executed by a worker complete (they finished
        "just before" the crash in the warm-memory fail-stop model); only
        work still sitting in the receive queue is lost.  Clients retry.
        """
        lost = len(self.recv_queue)
        self.recv_queue._items.clear()
        return lost

    # -- batch-charged (fused) verb service ----------------------------------
    def core_free(self) -> bool:
        """True when a NIC core could be claimed without queueing."""
        cores = self.cores
        return cores.in_use < cores.capacity and not cores._queue

    def reserve_core(self) -> None:
        """Claim one core synchronously for a fused (batch-charged) verb.

        Only valid right after :meth:`core_free` with no intervening yield.
        Pair with :meth:`release_core_fused` scheduled at the analytic
        service-end instant.
        """
        cores = self.cores
        cores._note_change()
        cores.in_use += 1

    def release_core_fused(self) -> None:
        """Free a fused-claimed core and tally the verb it served."""
        self.cores.release_slot()
        self.verbs_processed.add(1)

    # -- service-time helpers (generators run by verbs layer) -----------------
    def serve_verb(self, service_time: Optional[float] = None):
        """Occupy one NIC core for a verb's processing time."""
        t = self.cost.nic_verb_service if service_time is None else service_time
        yield from self.cores.use(t)
        self.verbs_processed.add(1)

    def serve_atomic(self, region: MemoryRegion):
        """Occupy a NIC core *and* the region's atomic lock for a CAS/FAA.

        Holding the region lock while the atomic executes is the
        serialization effect the paper's motivating test quantifies.

        When both the core and the lock are free at entry they are claimed
        inline at the same instant (exactly when the classic path's
        immediate grants would land) and the whole atomic rides one
        timeout; contention falls back to the request/acquire path, whose
        queueing is unchanged.
        """
        cores = self.cores
        lock = region.atomic_lock
        if cores.in_use < cores.capacity and lock.try_acquire():
            cores._note_change()
            cores.in_use += 1
            try:
                yield self.sim.timeout(self.cost.nic_atomic_service)
            finally:
                lock.release()
                cores.release_slot()
            self.verbs_processed.add(1)
            return
        req = cores.request()
        yield req
        try:
            yield lock.acquire()
            try:
                yield self.sim.timeout(self.cost.nic_atomic_service)
            finally:
                lock.release()
        finally:
            cores.release(req)
        self.verbs_processed.add(1)

    # -- observability ----------------------------------------------------------
    def utilization_probe(self):
        """Closure for trace.Sampler: windowed NIC-core utilization in %."""
        state = {"busy": 0.0, "t": self.sim.now}

        def probe() -> float:
            now = self.sim.now
            busy = self.cores.busy_time()
            span = now - state["t"]
            util = 0.0
            if span > 0:
                util = 100.0 * (busy - state["busy"]) / (span * self.cores.capacity)
            state["busy"] = busy
            state["t"] = now
            return util

        return probe
