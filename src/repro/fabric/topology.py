"""Cluster topology: the collection of simulated nodes plus shared services.

A :class:`Cluster` owns the simulator, the nodes, the RNG registry and
aggregate observability.  Process placement follows the MPI convention used
in the paper's experiments: ranks are laid out block-wise,
``rank -> node = rank // procs_per_node``.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.config import ClusterSpec
from repro.simnet.core import Simulator
from repro.simnet.process import Process
from repro.simnet.rng import RngRegistry
from repro.simnet.trace import Sampler

from repro.fabric.node import Node
from repro.fabric.provider import Provider, get_provider
from repro.fabric.verbs import QueuePair

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster, ready to run rank processes."""

    def __init__(self, spec: ClusterSpec, provider: str = "roce",
                 oversubscription: float = 1.0, scheduler: str = "calendar"):
        from repro.fabric.switch import Switch

        self.provider: Provider = get_provider(provider)
        cost = self.provider.apply(spec.cost)
        self.spec = spec.scaled(cost=cost)
        self.sim = Simulator(scheduler=scheduler)
        self.rngs = RngRegistry(seed=spec.seed)
        self.nodes: List[Node] = [
            Node(self.sim, i, self.spec) for i in range(self.spec.nodes)
        ]
        self.switch = Switch(self.sim, cost, self.spec.nodes,
                             oversubscription=oversubscription)
        self._qps: Dict[int, QueuePair] = {}
        #: active fault injector, or None for a fair-weather fabric — the
        #: RPC layer only arms its timeout/retry machinery when this is set
        #: (so fault-free runs stay bit-identical to the classic protocol)
        self.faults = None

    # -- fault injection ------------------------------------------------------
    def install_faults(self, plan):
        """Install a :class:`~repro.fabric.faults.FaultPlan`; returns the
        live :class:`~repro.fabric.faults.FaultInjector`."""
        from repro.fabric.faults import FaultInjector

        if self.faults is not None:
            raise RuntimeError("a fault plan is already installed")
        self.faults = FaultInjector(self, plan)
        return self.faults

    # -- structure -------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_procs(self) -> int:
        return self.spec.total_procs

    def node_of_rank(self, rank: int) -> int:
        """Block placement of MPI-style ranks onto nodes."""
        if not 0 <= rank < self.total_procs:
            raise IndexError(f"rank {rank} out of range [0, {self.total_procs})")
        return rank // self.spec.procs_per_node

    def ranks_on_node(self, node_id: int) -> range:
        p = self.spec.procs_per_node
        return range(node_id * p, (node_id + 1) * p)

    def qp(self, node_id: int) -> QueuePair:
        """The (shared, reusable) queue pair originating at ``node_id``."""
        qp = self._qps.get(node_id)
        if qp is None:
            qp = QueuePair(self, node_id)
            self._qps[node_id] = qp
        return qp

    # -- process management ---------------------------------------------------
    def spawn(self, gen: Generator, name: Optional[str] = None) -> Process:
        return self.sim.process(gen, name=name)

    def spawn_ranks(
        self,
        body: Callable[[int], Generator],
        ranks: Optional[range] = None,
    ) -> List[Process]:
        """Spawn ``body(rank)`` for every rank (or a subset)."""
        ranks = ranks if ranks is not None else range(self.total_procs)
        return [self.spawn(body(r), name=f"rank-{r}") for r in ranks]

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns final sim time (seconds)."""
        self.sim.run(until=until)
        return self.sim.now

    # -- observability --------------------------------------------------------------
    def sampler(self, interval: float = 1.0) -> Sampler:
        return Sampler(self.sim, interval=interval)

    def total_packets(self) -> float:
        return sum(n.egress.packets_total.value for n in self.nodes)

    def total_bytes(self) -> float:
        return sum(n.egress.bytes_total.value for n in self.nodes)

    def total_memory_used(self) -> float:
        return sum(n.memory_used.value for n in self.nodes)

    def packets_probe(self) -> Callable[[], float]:
        """Windowed cluster-wide packets-per-second probe for a Sampler."""
        state = {"pk": 0.0, "t": self.sim.now}

        def probe() -> float:
            now = self.sim.now
            pk = self.total_packets()
            span = now - state["t"]
            rate = (pk - state["pk"]) / span if span > 0 else 0.0
            state["pk"] = pk
            state["t"] = now
            return rate

        return probe

    def memory_probe(self, node_id: Optional[int] = None) -> Callable[[], float]:
        """Memory-utilization-% probe (one node, or cluster-wide)."""
        if node_id is not None:
            node = self.node(node_id)
            return lambda: 100.0 * node.memory_used.value / node.memory_capacity
        cap = sum(n.memory_capacity for n in self.nodes)
        return lambda: 100.0 * self.total_memory_used() / cap
