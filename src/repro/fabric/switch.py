"""Core-switch model with configurable oversubscription.

The paper's testbed connects every node through a switch; HCL's scaling
results depend on how much bisection bandwidth the fabric really has.  A
:class:`Switch` models the backplane as ``channels`` concurrent full-rate
paths: with ``oversubscription=1`` (the default, full bisection) there is
one channel per node and the switch never binds; at oversubscription ``k``
only ``nodes/k`` transfers can stream simultaneously and all-to-all
patterns queue — which is exactly the "network experiences congestion and
operations are serialized" regime of Fig 6c.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.obs.registry import registry_of
from repro.simnet.core import Simulator
from repro.simnet.resources import Resource

__all__ = ["Switch"]


class Switch:
    """Shared backplane for a cluster's node-to-node transfers."""

    def __init__(self, sim: Simulator, cost: CostModel, nodes: int,
                 oversubscription: float = 1.0):
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        self.sim = sim
        self.cost = cost
        self.oversubscription = oversubscription
        channels = max(1, int(round(nodes / oversubscription)))
        self.channels = Resource(sim, capacity=channels, name="switch")
        metrics = registry_of(sim)
        self.transits = metrics.counter("switch/transits")
        self.fused_transits = metrics.counter("switch/fused_transits")

    @property
    def is_full_bisection(self) -> bool:
        return self.oversubscription <= 1.0

    @property
    def admits_fused(self) -> bool:
        """Whether transfers may be batch-charged through this backplane.

        Only a full-bisection fabric qualifies: an oversubscribed switch
        can serialize transfers in its limited channel pool, which a
        closed-form charge cannot reproduce.
        """
        return self.oversubscription <= 1.0

    def fused_transit(self) -> None:
        """Tally one transit charged analytically instead of per-packet."""
        self.transits.add(1)
        self.fused_transits.add(1)

    def traverse(self, wire_time: float):
        """Generator: occupy one backplane channel for the message's
        serialization time.  Only called on oversubscribed fabrics — at
        full bisection the caller charges the wire time directly (the
        per-link holds already bound throughput)."""
        yield from self.channels.use(wire_time)
        self.transits.add(1)

    def utilization(self) -> float:
        return self.channels.utilization()
