"""Deterministic fabric fault injection: lossy links, partitions, crashes.

The simulated fabric is, by default, fair weather: every message arrives,
every node stays up.  Reproducing RoR faithfully at extreme scale means the
procedural model must survive a lossy fabric — Mercury-style RPC treats
timeout/retry semantics as part of the RPC contract, not an afterthought.
This module supplies the weather:

* :class:`LinkFaults` — per-link message fault probabilities (drop,
  duplicate, delay).  Faults are applied at *message* granularity (a
  message is a packet train; the probability is per train, driven by the
  cluster's seeded RNG registry so runs are bit-reproducible).
* :class:`FaultPlan` — a declarative schedule: a default/per-link fault
  spec with an active window, node crash/restart windows, and switch
  partition windows.  Installed via :meth:`Cluster.install_faults` (or
  ``HCL(spec, fault_plan=...)``).
* :class:`FaultInjector` — the runtime: intercepts every inter-node
  message (:meth:`outbound`), schedules crashes/restarts/partition
  toggles on the simulator timeline, and counts everything it does
  (Counters + a bounded :class:`~repro.simnet.trace.EventLog`).

Fault semantics:

* **drop** — the message burns its wire time at the sender and vanishes;
  the issuing verb raises :class:`FabricDropped` (the transport-level NACK
  a reliable-connection QP surfaces after retry exhaustion).  The RPC
  client layer converts this into retransmission with backoff.
* **duplicate** — applies to two-sided SENDs only (the verbs where a
  replayed delivery re-executes server logic); the original is delivered
  normally and a copy is re-enqueued at the destination after a short
  deterministic delay.  Idempotency tokens on the RPC server make the
  duplicate apply-once.
* **delay** — the message is held for a sampled extra latency before
  entering the wire.
* **crash** — fail-stop of the node's *network presence*: in-flight
  requests queued at its NIC are dropped, all traffic to/from it is
  dropped while down, and ``Node.alive`` goes False.  Memory stays warm
  across the restart (a hung process / dead link, not a cold reboot —
  cold-start recovery is the existing ``recover=True`` persistence path).
  On restart the node's ``on_recover`` hooks fire, which is how containers
  replay queued writes.
* **partition** — during the window, messages between nodes in different
  groups are dropped (the switch splits); nodes not named in any group
  stay reachable from everyone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.packet import Message, Verb
from repro.obs.registry import registry_of
from repro.simnet.stats import Counter
from repro.simnet.trace import EventLog

__all__ = [
    "FabricDropped",
    "LinkFaults",
    "FaultPlan",
    "FaultInjector",
    "make_plan",
    "PLAN_NAMES",
]


class FabricDropped(ConnectionError):
    """A message was dropped by the fault injector (transport-level NACK)."""

    def __init__(self, msg: Message, why: str):
        super().__init__(
            f"{msg.verb.value} {msg.src_node}->{msg.dst_node} dropped ({why})"
        )
        self.src_node = msg.src_node
        self.dst_node = msg.dst_node
        self.why = why


@dataclass(frozen=True)
class LinkFaults:
    """Per-link message fault probabilities (each in [0, 1])."""

    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    #: extra latency range (seconds) sampled uniformly for delayed messages
    delay_range: Tuple[float, float] = (5e-6, 50e-6)
    #: extra latency before a duplicated copy is re-delivered
    dup_delay: float = 20e-6

    def __post_init__(self):
        for name in ("drop", "dup", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")
        if self.drop + self.dup + self.delay > 1.0:
            raise ValueError("drop + dup + delay must not exceed 1.0")

    @property
    def is_noop(self) -> bool:
        return self.drop == 0.0 and self.dup == 0.0 and self.delay == 0.0


@dataclass
class FaultPlan:
    """A seeded, declarative chaos schedule for one simulation run."""

    name: str = "custom"
    #: fault spec applied to links without an explicit entry
    default: LinkFaults = field(default_factory=LinkFaults)
    #: per-link overrides, keyed by (src_node, dst_node)
    links: Dict[Tuple[int, int], LinkFaults] = field(default_factory=dict)
    #: active window for probabilistic link faults; None = whole run
    window: Optional[Tuple[float, float]] = None
    #: fail-stop windows: (node_id, t_down, t_up); t_up may be None (never)
    crashes: List[Tuple[int, float, Optional[float]]] = field(
        default_factory=list
    )
    #: switch partitions: (t_start, t_end, groups) — groups is a list of
    #: node-id lists; cross-group messages drop during the window
    partitions: List[Tuple[float, float, Sequence[Sequence[int]]]] = field(
        default_factory=list
    )

    def spec_for(self, src: int, dst: int) -> LinkFaults:
        return self.links.get((src, dst), self.default)


class FaultInjector:
    """Runtime that applies a :class:`FaultPlan` to a cluster's fabric."""

    def __init__(self, cluster, plan: FaultPlan, log_limit: int = 4096):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.rng = cluster.rngs.stream("fabric/faults")
        self.active = True
        self.log = EventLog(self.sim, limit=log_limit)
        metrics = registry_of(self.sim)
        self.drops = metrics.counter("faults/drops")
        self.dups = metrics.counter("faults/dups")
        self.delays = metrics.counter("faults/delays")
        self.crashes = metrics.counter("faults/crashes")
        self.restarts = metrics.counter("faults/restarts")
        self.partition_drops = metrics.counter("faults/partition_drops")
        #: node_id -> partition group index while a partition window is live
        self._group: Dict[int, int] = {}
        self._schedule_plan()

    # -- schedule installation ------------------------------------------------
    def _schedule_plan(self) -> None:
        sim = self.sim
        for node_id, t_down, t_up in self.plan.crashes:
            if t_up is not None and t_up <= t_down:
                raise ValueError(
                    f"crash window for node {node_id}: restart {t_up} must "
                    f"be after crash {t_down}"
                )
            sim.schedule_callback(
                lambda n=node_id: self._crash(n), delay=max(0.0, t_down - sim.now)
            )
            if t_up is not None:
                sim.schedule_callback(
                    lambda n=node_id: self._restart(n),
                    delay=max(0.0, t_up - sim.now),
                )
        for t0, t1, groups in self.plan.partitions:
            if t1 <= t0:
                raise ValueError("partition window must have t_end > t_start")
            sim.schedule_callback(
                lambda g=groups: self._partition_start(g),
                delay=max(0.0, t0 - sim.now),
            )
            sim.schedule_callback(
                lambda g=groups: self._partition_end(g),
                delay=max(0.0, t1 - sim.now),
            )

    def _crash(self, node_id: int) -> None:
        if not self.active:
            return
        node = self.cluster.node(node_id)
        if not node.alive:
            return
        node.fail()
        lost = node.nic.drop_pending()
        self.crashes.add(1)
        self.drops.add(lost)
        self.log.log("crash", {"node": node_id, "inflight_lost": lost})

    def _restart(self, node_id: int) -> None:
        node = self.cluster.node(node_id)
        if node.alive:
            return
        self.restarts.add(1)
        self.log.log("restart", {"node": node_id})
        node.recover()

    def _partition_start(self, groups) -> None:
        if not self.active:
            return
        for gi, members in enumerate(groups):
            for node_id in members:
                self._group[node_id] = gi
        self.log.log("partition", {"groups": [list(g) for g in groups]})

    def _partition_end(self, groups) -> None:
        for members in groups:
            for node_id in members:
                self._group.pop(node_id, None)
        self.log.log("heal", {"groups": [list(g) for g in groups]})

    # -- the per-message hook --------------------------------------------------
    def _window_open(self) -> bool:
        window = self.plan.window
        if window is None:
            return True
        return window[0] <= self.sim.now < window[1]

    def outbound(self, msg: Message):
        """Generator hook run by the verbs layer before each inter-node wire
        transfer.  May delay (yield), schedule a duplicate delivery, or
        raise :class:`FabricDropped`."""
        if not self.active:
            return
        src, dst = msg.src_node, msg.dst_node
        nodes = self.cluster.nodes
        if not nodes[src].alive or not nodes[dst].alive:
            yield from self._burn_and_drop(msg, "node down", self.drops)
        gmap = self._group
        if gmap:
            gs, gd = gmap.get(src), gmap.get(dst)
            if gs is not None and gd is not None and gs != gd:
                yield from self._burn_and_drop(
                    msg, "switch partition", self.partition_drops
                )
        spec = self.plan.spec_for(src, dst)
        if spec.is_noop or not self._window_open():
            return
        r = float(self.rng.random())
        if r < spec.drop:
            yield from self._burn_and_drop(msg, "packet loss", self.drops)
        elif r < spec.drop + spec.dup:
            if msg.verb is Verb.SEND:
                self.dups.add(1)
                self.log.log("dup", {"src": src, "dst": dst, "id": msg.msg_id})
                self.sim.process(
                    self._deliver_duplicate(msg, spec.dup_delay),
                    name=f"fault-dup-{msg.msg_id}",
                )
            # non-SEND verbs: duplicate delivery of one-sided ops is
            # absorbed by the NIC (idempotent reads / redundant writes)
        elif r < spec.drop + spec.dup + spec.delay:
            lo, hi = spec.delay_range
            extra = float(self.rng.uniform(lo, hi))
            self.delays.add(1)
            self.log.log(
                "delay", {"src": src, "dst": dst, "extra": extra}
            )
            yield self.sim.timeout(extra)

    def _burn_and_drop(self, msg: Message, why: str, counter: Counter):
        """Charge the wire time the doomed message spent, then drop it."""
        counter.add(1)
        self.log.log(
            "drop",
            {"src": msg.src_node, "dst": msg.dst_node,
             "verb": msg.verb.value, "why": why},
        )
        cost = self.cluster.spec.cost
        yield self.sim.timeout(
            cost.transfer_time(msg.wire_size) + cost.link_latency
        )
        raise FabricDropped(msg, why)

    def _deliver_duplicate(self, msg: Message, delay: float):
        """Detached process: re-enqueue a SEND copy at the destination."""
        yield self.sim.timeout(delay)
        dst = self.cluster.node(msg.dst_node)
        if not dst.alive:
            return
        if not dst.nic.recv_queue.try_put(msg):
            yield dst.nic.recv_queue.put(msg)

    # -- control / observability ----------------------------------------------
    def heal(self) -> None:
        """Restore every node and clear partitions; stop injecting.

        Restart hooks (write replay) still fire for nodes that were down.
        """
        self.active = False
        self._group.clear()
        for node in self.cluster.nodes:
            if not node.alive:
                self.restarts.add(1)
                self.log.log("heal-restart", {"node": node.node_id})
                node.recover()

    def injected_total(self) -> int:
        return int(
            self.drops.value + self.dups.value + self.delays.value
            + self.crashes.value + self.partition_drops.value
        )

    def counters(self) -> Dict[str, int]:
        return {
            "drops": int(self.drops.value),
            "dups": int(self.dups.value),
            "delays": int(self.delays.value),
            "crashes": int(self.crashes.value),
            "restarts": int(self.restarts.value),
            "partition_drops": int(self.partition_drops.value),
        }

    def probes(self) -> Dict[str, object]:
        """Zero-arg probes for a :class:`~repro.simnet.trace.Sampler`."""
        return {
            "faults/drops": lambda: self.drops.value,
            "faults/dups": lambda: self.dups.value,
            "faults/delays": lambda: self.delays.value,
            "faults/partition_drops": lambda: self.partition_drops.value,
        }


# -- canned plans (the CI fault matrix) ---------------------------------------

PLAN_NAMES = ("drop-heavy", "crash-heavy", "partition", "mixed", "calm")


def make_plan(name: str, nodes: int, horizon: float = 2e-3) -> FaultPlan:
    """Build one of the named chaos plans scaled to ``nodes`` and a sim-time
    ``horizon`` (seconds).  All windows close before ``0.8 * horizon`` so a
    workload that outlives the horizon always gets a clean tail to finish
    and verify in."""
    if nodes < 2:
        raise ValueError("chaos plans need at least 2 nodes")
    end = 0.8 * horizon
    if name == "drop-heavy":
        return FaultPlan(
            name=name,
            default=LinkFaults(drop=0.12, dup=0.02, delay=0.10),
            window=(0.0, end),
        )
    if name == "crash-heavy":
        crashes = []
        # Stagger one crash/restart window per node, never overlapping so
        # a replica (the next partition) is always reachable.
        slot = end / (2 * nodes)
        for i in range(nodes):
            t_down = (2 * i) * slot
            t_up = t_down + slot
            crashes.append((i, t_down if i else slot * 0.5, t_up))
        return FaultPlan(
            name=name,
            default=LinkFaults(drop=0.02),
            window=(0.0, end),
            crashes=crashes,
        )
    if name == "partition":
        half = list(range(nodes // 2))
        rest = list(range(nodes // 2, nodes))
        return FaultPlan(
            name=name,
            default=LinkFaults(delay=0.05),
            window=(0.0, end),
            partitions=[
                (0.1 * horizon, 0.35 * horizon, [half, rest]),
                (0.5 * horizon, 0.7 * horizon, [half, rest]),
            ],
        )
    if name == "mixed":
        return FaultPlan(
            name=name,
            default=LinkFaults(drop=0.06, dup=0.03, delay=0.06),
            window=(0.0, end),
            crashes=[(nodes - 1, 0.2 * horizon, 0.4 * horizon)],
            partitions=[(0.55 * horizon, 0.7 * horizon,
                         [[0], list(range(1, nodes))])],
        )
    if name == "calm":  # a no-op plan: chaos machinery armed, zero faults
        return FaultPlan(name=name, default=LinkFaults())
    raise ValueError(f"unknown fault plan {name!r}; choose from {PLAN_NAMES}")
