"""Point-to-point link model with cut-through forwarding.

Each node owns one egress and one ingress :class:`~repro.simnet.resources.Resource`
(its uplink to / downlink from the switch).  A transfer:

1. acquires the source egress channel,
2. acquires the destination ingress channel (this is where *incast*
   contention appears — many clients hammering one partition serialize
   here, which is what saturates the single-partition queue in Fig 6c),
3. holds both for the wire time of the message, plus propagation and
   switch latency,
4. releases both.

Acquisition order is always egress-then-ingress and the two pools are
disjoint, so no deadlock cycle can form.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.obs.registry import registry_of
from repro.simnet.core import Simulator
from repro.simnet.resources import Resource

from repro.fabric.packet import Message

__all__ = ["Link"]


class Link:
    """One direction of a node's connection to the switch fabric."""

    def __init__(self, sim: Simulator, cost: CostModel, name: str, lanes: int = 1):
        self.sim = sim
        self.cost = cost
        self.name = name
        # ``lanes`` > 1 models multi-rail NICs; the paper's testbed is 1x40GbE.
        self.channel = Resource(sim, capacity=lanes, name=name)
        metrics = registry_of(sim)
        self.bytes_total = metrics.counter(name + "/bytes")
        self.packets_total = metrics.counter(name + "/packets")
        self.messages_total = metrics.counter(name + "/messages")

    def packet_count(self, msg: Message) -> int:
        return max(1, -(-msg.wire_size // self.cost.mtu))

    def account(self, msg: Message) -> None:
        self.bytes_total.add(msg.wire_size)
        self.packets_total.add(self.packet_count(msg))
        self.messages_total.add(1)

    def wire_time(self, msg: Message) -> float:
        return self.cost.transfer_time(msg.wire_size)

    # -- batch-charged (fused) transfers ------------------------------------
    def is_idle(self) -> bool:
        """True when the whole link is free — the fused-transfer guard.

        Stricter than "a lane is free": a fused charge pins the analytic
        timeline at claim time, so any in-flight or queued traffic on this
        link disqualifies it and the caller must simulate per-packet.
        """
        ch = self.channel
        return ch.in_use == 0 and not ch._queue

    def reserve(self) -> None:
        """Claim one lane synchronously for a fused transfer.

        Only valid immediately after :meth:`is_idle` with no intervening
        yield; the claim lands exactly like ``transfer``'s inline grant.
        The caller releases via ``channel.release_slot()`` at the analytic
        wire-end instant (a scheduled callback), so concurrent traffic
        observes the same busy window as the per-packet hold.
        """
        ch = self.channel
        ch._note_change()
        ch.in_use += 1


def transfer(egress: Link, ingress: Link, msg: Message, switch=None):
    """Generator: move ``msg`` across ``egress`` -> switch -> ``ingress``.

    The channels are held for the *serialization* (wire) time only — that
    is what bounds throughput and produces incast contention at a hot
    destination.  Propagation and switch latency are added afterwards,
    outside the hold, so back-to-back messages pipeline as on real links.
    An oversubscribed ``switch`` additionally bounds how many transfers can
    stream through the backplane at once.

    **Allocation-elided charging:** each hop that is free at its claim
    point skips the :class:`~repro.simnet.resources.Request` allocation —
    the slot is claimed synchronously (exactly when ``request``'s immediate
    grant would claim it) and a pooled zero-delay timeout stands in for the
    grant event, scheduling with the identical ``(time, priority, seq)``.
    The hops are still claimed *in sequence* (egress, then ingress, then
    backplane), one event apart, exactly as the request/grant path orders
    them, so contention windows — and every simulated result — are
    unchanged; only the per-hop Event/Request allocations go away.  A busy
    hop falls back to the queued request path for that hop alone.
    """
    cost = egress.cost
    sim = egress.sim
    e_ch = egress.channel
    e_req = None
    if e_ch.in_use < e_ch.capacity:
        e_ch._note_change()
        e_ch.in_use += 1
        yield sim.timeout(0.0)
    else:
        e_req = e_ch.request()
        yield e_req
    try:
        i_ch = ingress.channel
        i_req = None
        if i_ch.in_use < i_ch.capacity:
            i_ch._note_change()
            i_ch.in_use += 1
            yield sim.timeout(0.0)
        else:
            i_req = i_ch.request()
            yield i_req
        try:
            wire = egress.wire_time(msg)
            if switch is not None and not switch.is_full_bisection:
                # Oversubscribed backplane: the serialization time is
                # spent holding one of the limited switch channels.
                yield from switch.traverse(wire)
            else:
                yield sim.timeout(wire)
                if switch is not None:
                    switch.transits.add(1)
            egress.account(msg)
            ingress.account(msg)
        finally:
            if i_req is None:
                i_ch.release_slot()
            else:
                i_ch.release(i_req)
    finally:
        if e_req is None:
            e_ch.release_slot()
        else:
            e_ch.release(e_req)
    yield sim.timeout(2 * cost.link_latency + cost.switch_latency)
