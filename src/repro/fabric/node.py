"""A compute node: CPU cores, a memory budget, a NIC, and fabric links.

The memory budget is a :class:`~repro.simnet.resources.Container`; region
registration and BCL's exclusive per-client buffers draw from it, which is
how the simulation reproduces the paper's observation that BCL runs out of
memory above 1 MB operation sizes (Section IV-B2) and the Fig 4(b) memory
ramp.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.config import ClusterSpec
from repro.obs.registry import registry_of
from repro.simnet.core import Simulator
from repro.simnet.resources import Resource

from repro.fabric.link import Link
from repro.fabric.nic import Nic, MemoryRegion

__all__ = ["Node", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """Raised when a node's memory budget is exhausted."""


class NodeDownError(ConnectionError):
    """An operation targeted a failed node."""


class Node:
    """One simulated host."""

    def __init__(self, sim: Simulator, node_id: int, spec: ClusterSpec):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        cost = spec.cost
        self.cost = cost
        self.cpu = Resource(sim, capacity=spec.cores_per_node, name=f"n{node_id}/cpu")
        self.nic = Nic(sim, node_id, cost)
        self.egress = Link(sim, cost, name=f"n{node_id}/egress",
                           lanes=cost.link_lanes)
        self.ingress = Link(sim, cost, name=f"n{node_id}/ingress",
                            lanes=cost.link_lanes)
        self.memory_capacity = spec.memory_per_node
        self.memory_used = registry_of(sim).gauge(f"n{node_id}/mem")
        # Local (intra-node) shared-memory bandwidth: a single station so
        # that all processes together share the node's ~65 GB/s (each op
        # holds the bus for bytes/bandwidth, i.e. transfers at full rate).
        self.memory_bus = Resource(sim, capacity=1, name=f"n{node_id}/membus")
        # Verbs to a co-located region loop back through the NIC at *link*
        # speed — this is why BCL's intra-node path is so much slower than
        # HCL's shared-memory bypass (Fig 5a).
        self.nic_loopback = Resource(sim, capacity=1, name=f"n{node_id}/loopback")
        self._shm: Dict[str, Any] = {}
        #: failure-injection flag; RPC/verbs to a dead node raise
        #: :class:`NodeDownError` at the caller.
        self.alive = True
        #: zero-arg hooks fired when the node comes back up (containers
        #: register write-replay here; see ``DistributedContainer``)
        self.on_recover: list = []

    # -- failure injection --------------------------------------------------
    def fail(self) -> None:
        """Mark the node failed (crash injection for durability tests)."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True
        for hook in list(self.on_recover):
            hook()

    # -- memory accounting ---------------------------------------------------
    def allocate(self, nbytes: int, what: str = "") -> None:
        """Charge ``nbytes`` against the node budget; OOM if exceeded."""
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.memory_used.value + nbytes > self.memory_capacity:
            raise OutOfMemoryError(
                f"node {self.node_id}: cannot allocate {nbytes} bytes for "
                f"{what or 'anonymous'} ({self.memory_used.value:.0f}/"
                f"{self.memory_capacity} in use)"
            )
        self.memory_used.add(nbytes)

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("free must be non-negative")
        self.memory_used.add(-nbytes)

    def register_region(self, name: str, size: int) -> MemoryRegion:
        """Register an RDMA-visible region, charging the memory budget."""
        self.allocate(size, what=f"region {name}")
        return self.nic.register_region(name, size)

    def resize_region(self, name: str, new_size: int) -> MemoryRegion:
        """Grow (realloc) a registered region in place."""
        region = self.nic.region(name)
        delta = new_size - region.size
        if delta > 0:
            self.allocate(delta, what=f"region {name} realloc")
        elif delta < 0:
            self.free(-delta)
        region.size = new_size
        return region

    def deregister_region(self, name: str) -> None:
        region = self.nic.regions.get(name)
        if region is not None:
            self.free(region.size)
            self.nic.deregister_region(name)

    # -- intra-node shared memory ------------------------------------------------
    def shm_put(self, key: str, value: Any) -> None:
        self._shm[key] = value

    def shm_get(self, key: str) -> Any:
        return self._shm.get(key)

    # -- local memory timing --------------------------------------------------
    def local_copy(self, nbytes: int):
        """Generator: time a local memory copy through the shared bus."""
        t = self.cost.local_write(nbytes)
        yield from self.memory_bus.use(t)

    def local_read(self, nbytes: int):
        t = self.cost.local_read(nbytes)
        yield from self.memory_bus.use(t)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.node_id} mem={self.memory_used.value:.0f}B>"
