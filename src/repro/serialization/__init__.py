"""DataBox serialization (Section III-C).

A DataBox "provides mechanisms for defining, serializing, transmitting, and
storing complex data structures".  This package reproduces that abstraction:

* :class:`~repro.serialization.databox.DataBox` — the envelope: a value,
  its codec, and fixed/variable-length classification.  Byte-copyable
  (fixed-size primitive) values skip serialization, as in the paper.
* Three from-scratch codec backends mirroring HCL's MSGPACK / Cereal /
  FlatBuffers support:

  - :mod:`repro.serialization.msgpack_like` — a compact tagged binary
    format compatible in spirit with MessagePack (variable-length, schema
    free);
  - :mod:`repro.serialization.cereal_like` — schema-driven struct packing
    for registered record types (smallest output, fixed layout);
  - :mod:`repro.serialization.flatbuf_like` — offset-table format allowing
    field access without full decode (zero-copy flavour).

* A custom-type registry (:func:`register_custom_type`) resolved at
  runtime, and native support for the standard containers (list, tuple,
  dict, set, frozenset) — HCL's "native support for STL containers".
"""

from repro.serialization.databox import (
    DataBox,
    get_codec,
    list_codecs,
    register_custom_type,
    SerializationError,
)
from repro.serialization.msgpack_like import MsgpackCodec
from repro.serialization.cereal_like import CerealCodec, record
from repro.serialization.flatbuf_like import FlatCodec, FlatView

__all__ = [
    "DataBox",
    "get_codec",
    "list_codecs",
    "register_custom_type",
    "SerializationError",
    "MsgpackCodec",
    "CerealCodec",
    "record",
    "FlatCodec",
    "FlatView",
]
