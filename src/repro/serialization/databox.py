"""The DataBox envelope and custom-type registry (Section III-C).

A DataBox wraps a value for transmission/storage:

* **byte-copyable fast path** — fixed-size primitives (ints, floats, bools,
  and @record classes whose schema is fixed) are flagged ``fixed_length``
  and, per the paper, "DataBoxes do not use serialization for simple
  byte-copyable data types": their wire size is computed analytically and
  ``encode`` uses the cheapest layout.
* **variable-length path** — everything else goes through the selected
  codec backend (msgpack / cereal / flat).
* **custom types** — users register ``(encode, decode)`` hooks for their own
  classes; resolution is dynamic at runtime, as in HCL.

The module also exposes the codec registry used by the RPC layer and the
containers (``get_codec``).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.serialization.cereal_like import CerealCodec
from repro.serialization.flatbuf_like import FlatCodec
from repro.serialization.msgpack_like import MsgpackCodec

__all__ = [
    "DataBox",
    "SerializationError",
    "SizedStub",
    "get_codec",
    "list_codecs",
    "register_custom_type",
    "clear_custom_types",
    "estimate_size",
]


class SizedStub:
    """A size-preserving placeholder for an opaque payload value.

    Containers in ``sim_only`` mode swap declared value arguments for a
    stub carrying only the original's estimated size, so benches that need
    timing but not data skip real payload storage and movement.
    :func:`estimate_size` returns exactly the recorded size, keeping every
    charged wire/marshal cost bit-identical to the full-data run.
    """

    __slots__ = ("_size",)

    def __init__(self, size: int):
        self._size = int(size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SizedStub({self._size})"

    def __eq__(self, other: Any) -> bool:
        return type(other) is SizedStub and other._size == self._size

    def __hash__(self) -> int:
        return hash(("SizedStub", self._size))


class SerializationError(ValueError):
    """Raised when a value cannot be boxed/unboxed."""


# -- custom type registry ------------------------------------------------------

_CUSTOM_ENCODERS: Dict[Type, Tuple[str, Callable[[Any], bytes]]] = {}
_CUSTOM_DECODERS: Dict[str, Callable[[bytes], Any]] = {}


def register_custom_type(
    cls: Type,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
    tag: Optional[str] = None,
) -> None:
    """Register user-defined serialization for ``cls`` (resolved at runtime)."""
    tag = tag or cls.__name__
    if tag in _CUSTOM_DECODERS:
        raise SerializationError(f"custom type tag {tag!r} already registered")
    _CUSTOM_ENCODERS[cls] = (tag, encode)
    _CUSTOM_DECODERS[tag] = decode


def clear_custom_types() -> None:
    """Forget all registrations (test isolation)."""
    _CUSTOM_ENCODERS.clear()
    _CUSTOM_DECODERS.clear()


def _custom_encode(obj: Any) -> Tuple[str, bytes]:
    entry = _CUSTOM_ENCODERS.get(type(obj))
    if entry is None:
        raise TypeError(
            f"no codec for {type(obj).__name__}; register_custom_type() it"
        )
    tag, enc = entry
    return tag, enc(obj)


def _custom_decode(tag: str, payload: bytes) -> Any:
    dec = _CUSTOM_DECODERS.get(tag)
    if dec is None:
        raise SerializationError(f"unknown custom type tag {tag!r}")
    return dec(payload)


# -- codec registry ----------------------------------------------------------------

_CODECS: Dict[str, Any] = {}


def _build_registry() -> None:
    _CODECS["msgpack"] = MsgpackCodec(_custom_encode, _custom_decode)
    _CODECS["flat"] = FlatCodec()


_build_registry()


def get_codec(name: str):
    """Look up a backend: ``msgpack`` (default), ``flat``, or ``cereal:<Type>``."""
    if name in _CODECS:
        return _CODECS[name]
    if name.startswith("cereal:"):
        from repro.serialization.cereal_like import _REGISTRY

        clsname = name.split(":", 1)[1]
        cls = _REGISTRY.get(clsname)
        if cls is None:
            raise SerializationError(f"no @record class named {clsname!r}")
        codec = CerealCodec(cls)
        _CODECS[name] = codec
        return codec
    raise SerializationError(f"unknown codec {name!r}")


def list_codecs() -> list:
    return sorted(_CODECS) + ["cereal:<RecordType>"]


# -- size estimation (drives simulated wire cost) ---------------------------------

_FIXED_SIZES = {bool: 1, int: 8, float: 8, type(None): 1}


def estimate_size(obj: Any) -> int:
    """Approximate serialized size in bytes without encoding.

    Used by the simulation layers to charge wire/marshal costs cheaply;
    containers with megabyte values must not pay an actual megabyte encode
    per simulated op.
    """
    t = type(obj)
    if t in _FIXED_SIZES:
        return _FIXED_SIZES[t]
    if t is SizedStub:
        return obj._size
    if t is str:
        return 4 + len(obj)
    if t in (bytes, bytearray, memoryview):
        return 4 + len(obj)
    if t in (list, tuple, set, frozenset):
        return 4 + sum(estimate_size(x) for x in obj)
    if t is dict:
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())
    if hasattr(t, "__cereal_fields__"):
        return 2 + sum(
            estimate_size(getattr(obj, f)) for f in t.__cereal_fields__
        )
    if hasattr(obj, "nbytes"):  # numpy arrays and friends
        return 16 + int(obj.nbytes)
    if type(obj) in _CUSTOM_ENCODERS:
        tag, enc = _CUSTOM_ENCODERS[type(obj)]
        return 4 + len(tag) + len(enc(obj))
    return 64  # conservative default for odd objects


class DataBox:
    """The transmissible envelope around one value."""

    __slots__ = ("value", "codec_name", "_encoded")

    def __init__(self, value: Any, codec: str = "msgpack"):
        self.value = value
        self.codec_name = codec
        self._encoded: Optional[bytes] = None

    # -- classification (the paper's compile-time fixed/variable split) ----
    @property
    def fixed_length(self) -> bool:
        t = type(self.value)
        if t in _FIXED_SIZES:
            return True
        return bool(getattr(t, "__cereal_fixed__", False))

    @property
    def byte_copyable(self) -> bool:
        t = type(self.value)
        if t is int:
            return -(2**63) <= self.value < 2**63
        return t in _FIXED_SIZES

    # -- encode/decode -------------------------------------------------------
    def encode(self) -> bytes:
        if self._encoded is not None:
            return self._encoded
        if self.byte_copyable:
            # Fast path: 1-byte tag + fixed layout, no codec machinery.
            v = self.value
            if v is None:
                raw = b"N"
            elif isinstance(v, bool):
                raw = b"T" if v else b"F"
            elif isinstance(v, int):
                try:
                    raw = b"I" + struct.pack("<q", v)
                except struct.error:
                    raw = b"B" + get_codec(self.codec_name).encode(v)
            else:  # float
                raw = b"D" + struct.pack("<d", v)
            self._encoded = raw
            return raw
        codec = get_codec(self.codec_name)
        self._encoded = b"B" + codec.encode(self.value)
        return self._encoded

    @classmethod
    def decode(cls, data: bytes, codec: str = "msgpack") -> "DataBox":
        if not data:
            raise SerializationError("empty DataBox buffer")
        tag, body = data[:1], data[1:]
        if tag == b"N":
            return cls(None, codec)
        if tag == b"T":
            return cls(True, codec)
        if tag == b"F":
            return cls(False, codec)
        if tag == b"I":
            return cls(struct.unpack("<q", body)[0], codec)
        if tag == b"D":
            return cls(struct.unpack("<d", body)[0], codec)
        if tag == b"B":
            return cls(get_codec(codec).decode(body), codec)
        raise SerializationError(f"bad DataBox tag {tag!r}")

    # -- cost hooks ---------------------------------------------------------------
    @property
    def wire_size(self) -> int:
        if self._encoded is not None:
            return len(self._encoded)
        return 1 + estimate_size(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DataBox({self.value!r}, codec={self.codec_name})"
