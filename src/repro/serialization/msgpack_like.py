"""A from-scratch MessagePack-flavoured binary codec.

Implements the subset of the MessagePack wire format that the containers
and applications need: nil, bool, integers (fixint through int64/uint64),
float64, str, bin, array, map, and one ext slot for registered custom
types.  The encoding matches real MessagePack byte-for-byte for the
supported types, so the tests can assert against known vectors.

No external library is used — the offline environment has none, and the
paper's point is only that DataBox can plug different backends.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Tuple

__all__ = ["MsgpackCodec", "pack", "unpack"]

_EXT_CUSTOM = 0x42  # single ext type code carrying (type_tag, payload)
_EXT_NDARRAY = 0x4E  # numpy arrays: (dtype_str, shape, raw bytes)


class _Packer:
    def __init__(self, custom_encoder: Callable[[Any], Tuple[str, bytes]] | None):
        self.parts: list[bytes] = []
        self.custom_encoder = custom_encoder

    def pack(self, obj: Any) -> None:
        p = self.parts
        if obj is None:
            p.append(b"\xc0")
        elif obj is True:
            p.append(b"\xc3")
        elif obj is False:
            p.append(b"\xc2")
        elif isinstance(obj, int):
            self._pack_int(obj)
        elif isinstance(obj, float):
            p.append(b"\xcb" + struct.pack(">d", obj))
        elif isinstance(obj, str):
            raw = obj.encode("utf-8")
            n = len(raw)
            if n < 32:
                p.append(bytes([0xA0 | n]))
            elif n < 256:
                p.append(b"\xd9" + bytes([n]))
            elif n < 65536:
                p.append(b"\xda" + struct.pack(">H", n))
            else:
                p.append(b"\xdb" + struct.pack(">I", n))
            p.append(raw)
        elif isinstance(obj, (bytes, bytearray, memoryview)):
            raw = bytes(obj)
            n = len(raw)
            if n < 256:
                p.append(b"\xc4" + bytes([n]))
            elif n < 65536:
                p.append(b"\xc5" + struct.pack(">H", n))
            else:
                p.append(b"\xc6" + struct.pack(">I", n))
            p.append(raw)
        elif isinstance(obj, (list, tuple)):
            n = len(obj)
            if n < 16:
                p.append(bytes([0x90 | n]))
            elif n < 65536:
                p.append(b"\xdc" + struct.pack(">H", n))
            else:
                p.append(b"\xdd" + struct.pack(">I", n))
            for item in obj:
                self.pack(item)
        elif isinstance(obj, dict):
            n = len(obj)
            if n < 16:
                p.append(bytes([0x80 | n]))
            elif n < 65536:
                p.append(b"\xde" + struct.pack(">H", n))
            else:
                p.append(b"\xdf" + struct.pack(">I", n))
            for k, v in obj.items():
                self.pack(k)
                self.pack(v)
        elif isinstance(obj, (set, frozenset)):
            # Sets are not native msgpack; encode as ext-free sorted array
            # inside a custom envelope handled by the DataBox layer, or —
            # when reached directly — as a tagged map {"__set__": [...]}.
            try:
                items = sorted(obj)
            except TypeError:
                items = list(obj)
            self.pack({"__set__": items})
        elif type(obj).__module__ == "numpy" and hasattr(obj, "tobytes"):
            # numpy arrays/scalars: dtype + shape + raw buffer as an ext.
            import numpy as np

            arr = np.ascontiguousarray(obj)
            body = (pack(arr.dtype.str) + pack(list(arr.shape))
                    + pack(arr.tobytes()))
            self._pack_ext(_EXT_NDARRAY, body)
        elif self.custom_encoder is not None:
            tag, payload = self.custom_encoder(obj)
            body = pack(tag) + payload
            self._pack_ext(_EXT_CUSTOM, body)
        else:
            raise TypeError(f"msgpack codec cannot serialize {type(obj).__name__}")

    def _pack_ext(self, ext_type: int, body: bytes) -> None:
        p = self.parts
        n = len(body)
        if n < 256:
            p.append(b"\xc7" + bytes([n, ext_type]))
        elif n < 65536:
            p.append(b"\xc8" + struct.pack(">H", n) + bytes([ext_type]))
        else:
            p.append(b"\xc9" + struct.pack(">I", n) + bytes([ext_type]))
        p.append(body)

    def _pack_int(self, v: int) -> None:
        p = self.parts
        if 0 <= v < 128:
            p.append(bytes([v]))
        elif -32 <= v < 0:
            p.append(struct.pack("b", v))
        elif 0 <= v < 256:
            p.append(b"\xcc" + bytes([v]))
        elif 0 <= v < 65536:
            p.append(b"\xcd" + struct.pack(">H", v))
        elif 0 <= v < 2**32:
            p.append(b"\xce" + struct.pack(">I", v))
        elif 0 <= v < 2**64:
            p.append(b"\xcf" + struct.pack(">Q", v))
        elif -128 <= v < 0:
            p.append(b"\xd0" + struct.pack("b", v))
        elif -32768 <= v < 0:
            p.append(b"\xd1" + struct.pack(">h", v))
        elif -(2**31) <= v < 0:
            p.append(b"\xd2" + struct.pack(">i", v))
        elif -(2**63) <= v < 0:
            p.append(b"\xd3" + struct.pack(">q", v))
        else:
            # Out of 64-bit range: arbitrary-precision escape hatch (not
            # standard msgpack, but Python ints are unbounded).
            self.pack({"__bigint__": hex(v)})


class _Unpacker:
    def __init__(self, data: bytes,
                 custom_decoder: Callable[[str, bytes], Any] | None):
        self.data = data
        self.pos = 0
        self.custom_decoder = custom_decoder

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated msgpack data")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def unpack(self) -> Any:
        b = self._take(1)[0]
        if b < 0x80:
            return b
        if b >= 0xE0:
            return b - 256
        if 0x80 <= b <= 0x8F:
            return self._map(b & 0x0F)
        if 0x90 <= b <= 0x9F:
            return self._array(b & 0x0F)
        if 0xA0 <= b <= 0xBF:
            return self._take(b & 0x1F).decode("utf-8")
        handlers = {
            0xC0: lambda: None,
            0xC2: lambda: False,
            0xC3: lambda: True,
            0xC4: lambda: bytes(self._take(self._take(1)[0])),
            0xC5: lambda: bytes(self._take(struct.unpack(">H", self._take(2))[0])),
            0xC6: lambda: bytes(self._take(struct.unpack(">I", self._take(4))[0])),
            0xCA: lambda: struct.unpack(">f", self._take(4))[0],
            0xCB: lambda: struct.unpack(">d", self._take(8))[0],
            0xCC: lambda: self._take(1)[0],
            0xCD: lambda: struct.unpack(">H", self._take(2))[0],
            0xCE: lambda: struct.unpack(">I", self._take(4))[0],
            0xCF: lambda: struct.unpack(">Q", self._take(8))[0],
            0xD0: lambda: struct.unpack("b", self._take(1))[0],
            0xD1: lambda: struct.unpack(">h", self._take(2))[0],
            0xD2: lambda: struct.unpack(">i", self._take(4))[0],
            0xD3: lambda: struct.unpack(">q", self._take(8))[0],
            0xD9: lambda: self._take(self._take(1)[0]).decode("utf-8"),
            0xDA: lambda: self._take(
                struct.unpack(">H", self._take(2))[0]).decode("utf-8"),
            0xDB: lambda: self._take(
                struct.unpack(">I", self._take(4))[0]).decode("utf-8"),
            0xDC: lambda: self._array(struct.unpack(">H", self._take(2))[0]),
            0xDD: lambda: self._array(struct.unpack(">I", self._take(4))[0]),
            0xDE: lambda: self._map(struct.unpack(">H", self._take(2))[0]),
            0xDF: lambda: self._map(struct.unpack(">I", self._take(4))[0]),
        }
        if b in handlers:
            return handlers[b]()
        if b in (0xC7, 0xC8, 0xC9):
            if b == 0xC7:
                n = self._take(1)[0]
            elif b == 0xC8:
                n = struct.unpack(">H", self._take(2))[0]
            else:
                n = struct.unpack(">I", self._take(4))[0]
            ext_type = self._take(1)[0]
            body = self._take(n)
            return self._ext(ext_type, body)
        raise ValueError(f"unsupported msgpack type byte {b:#x}")

    def _array(self, n: int) -> list:
        return [self.unpack() for _ in range(n)]

    def _map(self, n: int) -> Any:
        out = {}
        for _ in range(n):
            k = self.unpack()
            out[k] = self.unpack()
        if len(out) == 1:
            if "__set__" in out:
                return set(out["__set__"])
            if "__bigint__" in out and isinstance(out["__bigint__"], str):
                return int(out["__bigint__"], 16)
        return out

    def _ext(self, ext_type: int, body: bytes) -> Any:
        if ext_type == _EXT_NDARRAY:
            import numpy as np

            sub = _Unpacker(body, None)
            dtype = sub.unpack()
            shape = sub.unpack()
            raw = sub.unpack()
            return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
        if ext_type != _EXT_CUSTOM or self.custom_decoder is None:
            raise ValueError(f"unknown ext type {ext_type}")
        sub = _Unpacker(body, None)
        tag = sub.unpack()
        return self.custom_decoder(tag, body[sub.pos:])


def pack(obj: Any,
         custom_encoder: Callable[[Any], Tuple[str, bytes]] | None = None) -> bytes:
    packer = _Packer(custom_encoder)
    packer.pack(obj)
    return b"".join(packer.parts)


def unpack(data: bytes,
           custom_decoder: Callable[[str, bytes], Any] | None = None) -> Any:
    unpacker = _Unpacker(data, custom_decoder)
    out = unpacker.unpack()
    if unpacker.pos != len(data):
        raise ValueError(
            f"trailing bytes after msgpack object ({len(data) - unpacker.pos})"
        )
    return out


class MsgpackCodec:
    """Codec object satisfying the DataBox backend protocol."""

    name = "msgpack"

    def __init__(self, custom_encoder=None, custom_decoder=None):
        self.custom_encoder = custom_encoder
        self.custom_decoder = custom_decoder

    def encode(self, obj: Any) -> bytes:
        return pack(obj, self.custom_encoder)

    def decode(self, data: bytes) -> Any:
        return unpack(data, self.custom_decoder)
