"""Offset-table codec in the spirit of FlatBuffers.

FlatBuffers' defining property is *access without unpacking*: the wire
format is an offset table over field payloads, so a reader can pull one
field out of a large buffer without decoding the rest.  That matters for a
data-structure server: a find() handler can compare the key field of a
stored entry without deserializing the (possibly megabyte) value.

Format (little-endian)::

    u16 field_count
    field_count x { u32 offset, u32 length, u8 type_tag }
    payload bytes...

Payloads are encoded with the msgpack-like codec per field, except raw
``bytes`` which are stored verbatim (type_tag distinguishes).  The
:class:`FlatView` wrapper exposes lazy field access over the raw buffer.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence

from repro.serialization.msgpack_like import pack as _mp_pack, unpack as _mp_unpack

__all__ = ["FlatCodec", "FlatView"]

_HEADER = struct.Struct("<H")
_ENTRY = struct.Struct("<IIB")

_TAG_MSGPACK = 0
_TAG_RAW = 1


def _encode_fields(values: Sequence[Any]) -> bytes:
    n = len(values)
    if n > 0xFFFF:
        raise ValueError("too many fields for flat encoding")
    entries: List[bytes] = []
    payloads: List[bytes] = []
    pos = _HEADER.size + n * _ENTRY.size
    for v in values:
        if isinstance(v, (bytes, bytearray, memoryview)):
            raw, tag = bytes(v), _TAG_RAW
        else:
            raw, tag = _mp_pack(v), _TAG_MSGPACK
        entries.append(_ENTRY.pack(pos, len(raw), tag))
        payloads.append(raw)
        pos += len(raw)
    return _HEADER.pack(n) + b"".join(entries) + b"".join(payloads)


class FlatView:
    """Lazy reader over a flat-encoded buffer.

    ``view[i]`` decodes only field ``i``; ``field_bytes(i)`` returns the raw
    slice with zero decoding.
    """

    __slots__ = ("data", "_count")

    def __init__(self, data: bytes):
        if len(data) < _HEADER.size:
            raise ValueError("buffer too small for flat header")
        self.data = data
        (self._count,) = _HEADER.unpack_from(data, 0)

    def __len__(self) -> int:
        return self._count

    def _entry(self, index: int):
        if not 0 <= index < self._count:
            raise IndexError(f"field {index} out of range (count {self._count})")
        return _ENTRY.unpack_from(self.data, _HEADER.size + index * _ENTRY.size)

    def field_bytes(self, index: int) -> bytes:
        off, length, _tag = self._entry(index)
        raw = self.data[off:off + length]
        if len(raw) != length:
            raise ValueError("truncated flat buffer")
        return raw

    def __getitem__(self, index: int) -> Any:
        off, length, tag = self._entry(index)
        raw = self.data[off:off + length]
        if len(raw) != length:
            raise ValueError("truncated flat buffer")
        if tag == _TAG_RAW:
            return raw
        return _mp_unpack(raw)

    def unpack_all(self) -> list:
        return [self[i] for i in range(self._count)]


class FlatCodec:
    """DataBox backend: encodes a value as a single- or multi-field table.

    Lists/tuples become one field per element (enabling per-field lazy
    reads); any other value becomes a 1-field table.
    """

    name = "flat"

    def encode(self, obj: Any) -> bytes:
        if isinstance(obj, (list, tuple)):
            return _encode_fields(list(obj))
        return _encode_fields([obj])

    def decode(self, data: bytes) -> Any:
        view = FlatView(data)
        if len(view) == 1:
            return view[0]
        return view.unpack_all()

    def view(self, data: bytes) -> FlatView:
        return FlatView(data)
