"""Schema-driven binary codec in the spirit of the Cereal C++ library.

Cereal serializes C++ structs through compile-time archives: the field
layout is known statically, so the wire format carries no per-field tags.
Here, record types declare their schema with the :func:`record` class
decorator; the codec packs fields positionally with ``struct`` — the
smallest and fastest layout for *fixed-shape* types, which is why HCL
resolves fixed- vs variable-length DataBoxes "during compile-time".

Field specs (``fields`` mapping name -> spec):

* ``"i8" / "i16" / "i32" / "i64"``  — signed ints
* ``"u8" / "u16" / "u32" / "u64"``  — unsigned ints
* ``"f32" / "f64"``                 — floats
* ``"bool"``                         — bool
* ``"str"`` / ``"bytes"``            — length-prefixed variable data
* another record class               — nested record
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Type

__all__ = ["record", "CerealCodec", "SchemaError"]

_FIXED_FMT = {
    "i8": "b", "i16": "h", "i32": "i", "i64": "q",
    "u8": "B", "u16": "H", "u32": "I", "u64": "Q",
    "f32": "f", "f64": "d", "bool": "?",
}

_REGISTRY: Dict[str, Type] = {}


class SchemaError(TypeError):
    """A record schema or value does not match its declaration."""


def record(**fields):
    """Class decorator declaring a Cereal-style schema.

    ::

        @record(key="i64", name="str", score="f64")
        class Entry:
            pass

        e = Entry(key=7, name="x", score=1.5)
    """

    def wrap(cls):
        for fname, spec in fields.items():
            if spec not in _FIXED_FMT and spec not in ("str", "bytes") \
                    and not (isinstance(spec, type) and hasattr(spec, "__cereal_fields__")):
                raise SchemaError(f"field {fname!r}: unknown spec {spec!r}")
        cls.__cereal_fields__ = dict(fields)
        # Fixed-size iff every field is fixed (no str/bytes/nested-variable).
        cls.__cereal_fixed__ = all(
            spec in _FIXED_FMT
            or (isinstance(spec, type) and getattr(spec, "__cereal_fixed__", False))
            for spec in fields.values()
        )

        def __init__(self, **kwargs):
            declared = type(self).__cereal_fields__
            unknown = set(kwargs) - set(declared)
            if unknown:
                raise SchemaError(f"unknown fields {sorted(unknown)}")
            for fname in declared:
                if fname not in kwargs:
                    raise SchemaError(f"missing field {fname!r}")
                setattr(self, fname, kwargs[fname])

        def __eq__(self, other):
            if type(other) is not type(self):
                return NotImplemented
            return all(
                getattr(self, f) == getattr(other, f)
                for f in type(self).__cereal_fields__
            )

        def __repr__(self):
            body = ", ".join(
                f"{f}={getattr(self, f)!r}" for f in type(self).__cereal_fields__
            )
            return f"{type(self).__name__}({body})"

        cls.__init__ = __init__
        cls.__eq__ = __eq__
        cls.__hash__ = None
        cls.__repr__ = __repr__
        _REGISTRY[cls.__name__] = cls
        return cls

    return wrap


def _encode_value(spec, value, out: list) -> None:
    if spec in _FIXED_FMT:
        try:
            out.append(struct.pack("<" + _FIXED_FMT[spec], value))
        except struct.error as err:
            raise SchemaError(f"value {value!r} does not fit {spec}: {err}") from None
    elif spec == "str":
        raw = value.encode("utf-8")
        out.append(struct.pack("<I", len(raw)))
        out.append(raw)
    elif spec == "bytes":
        raw = bytes(value)
        out.append(struct.pack("<I", len(raw)))
        out.append(raw)
    else:  # nested record
        if type(value) is not spec:
            raise SchemaError(f"expected {spec.__name__}, got {type(value).__name__}")
        _encode_record(value, out)


def _encode_record(obj, out: list) -> None:
    for fname, spec in type(obj).__cereal_fields__.items():
        _encode_value(spec, getattr(obj, fname), out)


def _decode_value(spec, data: bytes, pos: int):
    if spec in _FIXED_FMT:
        fmt = "<" + _FIXED_FMT[spec]
        size = struct.calcsize(fmt)
        return struct.unpack_from(fmt, data, pos)[0], pos + size
    if spec in ("str", "bytes"):
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        raw = data[pos:pos + n]
        if len(raw) != n:
            raise SchemaError("truncated cereal data")
        return (raw.decode("utf-8") if spec == "str" else raw), pos + n
    return _decode_record(spec, data, pos)


def _decode_record(cls, data: bytes, pos: int):
    values = {}
    for fname, spec in cls.__cereal_fields__.items():
        values[fname], pos = _decode_value(spec, data, pos)
    return cls(**values), pos


class CerealCodec:
    """DataBox backend for a single record class."""

    def __init__(self, cls: Type):
        if not hasattr(cls, "__cereal_fields__"):
            raise SchemaError(
                f"{cls.__name__} is not a @record class; declare a schema first"
            )
        self.cls = cls
        self.name = f"cereal[{cls.__name__}]"

    @property
    def fixed_size(self) -> bool:
        return self.cls.__cereal_fixed__

    def encode(self, obj: Any) -> bytes:
        if type(obj) is not self.cls:
            raise SchemaError(
                f"codec bound to {self.cls.__name__}, got {type(obj).__name__}"
            )
        out: list = []
        _encode_record(obj, out)
        return b"".join(out)

    def decode(self, data: bytes) -> Any:
        obj, pos = _decode_record(self.cls, data, 0)
        if pos != len(data):
            raise SchemaError(f"trailing bytes after record ({len(data) - pos})")
        return obj
