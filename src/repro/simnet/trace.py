"""Tracing and time-series sampling.

Figure 4 of the paper plots NIC-core utilization, memory utilization and
packet rate *over time* (Intel PAT on the real cluster).  Here a
:class:`Sampler` process wakes at a fixed interval and records probe values
into :class:`TimeSeries`; :class:`EventLog` records discrete events with
timestamps for post-hoc analysis and debugging.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simnet.core import Simulator

__all__ = ["TimeSeries", "Sampler", "EventLog"]


class TimeSeries:
    """Append-only ``(time, value)`` series with simple reductions."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def rate_series(self) -> "TimeSeries":
        """Derivative series: per-second deltas of a cumulative counter."""
        out = TimeSeries(self.name + "/rate")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                out.record(self.times[i], (self.values[i] - self.values[i - 1]) / dt)
        return out

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


class Sampler:
    """Periodic probe runner.

    ``probes`` maps series name -> zero-arg callable returning a float.  The
    sampler spawns a simulated process that samples every ``interval``
    sim-seconds until stopped or the sim drains.
    """

    def __init__(self, sim: Simulator, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.probes: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._running = False
        self._stopped = False

    def add_probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        self.probes[name] = fn
        ts = TimeSeries(name)
        self.series[name] = ts
        return ts

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._run(), name="sampler")

    def stop(self) -> None:
        self._stopped = True

    def sample_once(self) -> None:
        t = self.sim.now
        for name, fn in self.probes.items():
            self.series[name].record(t, float(fn()))

    def _run(self):
        while not self._stopped:
            self.sample_once()
            yield self.sim.timeout(self.interval)


class EventLog:
    """A bounded structured log of simulation events."""

    def __init__(self, sim: Simulator, limit: Optional[int] = None):
        self.sim = sim
        self.limit = limit
        self.entries: List[Tuple[float, str, Any]] = []
        self.dropped = 0

    def log(self, kind: str, payload: Any = None) -> None:
        if self.limit is not None and len(self.entries) >= self.limit:
            self.dropped += 1
            return
        self.entries.append((self.sim.now, kind, payload))

    def of_kind(self, kind: str) -> List[Tuple[float, Any]]:
        return [(t, p) for (t, k, p) in self.entries if k == kind]

    def count(self, kind: str) -> int:
        return sum(1 for (_t, k, _p) in self.entries if k == kind)

    def __len__(self) -> int:
        return len(self.entries)
