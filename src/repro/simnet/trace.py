"""Tracing and time-series sampling.

Figure 4 of the paper plots NIC-core utilization, memory utilization and
packet rate *over time* (Intel PAT on the real cluster).  Here a
:class:`Sampler` process wakes at a fixed interval and records probe values
into :class:`TimeSeries`; :class:`EventLog` records discrete events with
timestamps for post-hoc analysis and debugging.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simnet.core import Simulator

__all__ = ["TimeSeries", "Sampler", "EventLog"]


class TimeSeries:
    """Append-only ``(time, value)`` series with simple reductions.

    With ``maxlen`` set the series becomes a ring buffer: only the most
    recent ``maxlen`` samples are retained (older points fall off the
    front, counted in ``dropped``), so a long-running sampler holds
    bounded memory no matter how many ticks it takes.
    """

    def __init__(self, name: str = "", maxlen: Optional[int] = None):
        if maxlen is not None and maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.name = name
        self.maxlen = maxlen
        self.dropped = 0
        if maxlen is None:
            self.times: List[float] = []
            self.values: List[float] = []
        else:
            self.times = deque(maxlen=maxlen)  # type: ignore[assignment]
            self.values = deque(maxlen=maxlen)  # type: ignore[assignment]

    def record(self, t: float, v: float) -> None:
        if self.maxlen is not None and len(self.times) == self.maxlen:
            self.dropped += 1
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def rate_series(self) -> "TimeSeries":
        """Derivative series: per-second deltas of a cumulative counter.

        The derived series carries a proper name even when chained or when
        the parent is anonymous (``"nic"`` -> ``"nic/rate"`` ->
        ``"nic/rate/rate"``; ``""`` -> ``"rate"``, never a bare
        ``"/rate"``) and inherits the parent's ``maxlen`` bound.
        """
        name = f"{self.name}/rate" if self.name else "rate"
        out = TimeSeries(name, maxlen=self.maxlen)
        times = list(self.times)
        values = list(self.values)
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            if dt > 0:
                out.record(times[i], (values[i] - values[i - 1]) / dt)
        return out

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


class Sampler:
    """Periodic probe runner.

    ``probes`` maps series name -> zero-arg callable returning a float.  The
    sampler spawns a simulated process that samples every ``interval``
    sim-seconds until stopped or the sim drains.
    """

    def __init__(self, sim: Simulator, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.probes: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.probe_errors = 0
        self._running = False
        self._stopped = False
        self._armed: "deque[float]" = deque()

    def add_probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        self.probes[name] = fn
        ts = TimeSeries(name)
        self.series[name] = ts
        return ts

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._run(), name="sampler")

    def schedule_at(self, times) -> None:
        """Arm one-shot samples at absolute sim times (no re-arming process).

        Unlike :meth:`start`, this never keeps the simulation alive: each
        sample is a pre-scheduled callback, so the sim still drains when
        the workload finishes.  The telemetry harness uses this to take a
        fixed number of Fig-4 samples across a run of known duration.
        """
        now = self.sim.now
        for t in times:
            self.sim.schedule_callback(self.sample_once,
                                       delay=max(0.0, t - now))

    def arm(self, times) -> None:
        """Arm one-shot samples at absolute sim times for :meth:`pump`.

        Unlike :meth:`schedule_at`, armed samples are *not* simulator
        events: they fire only while :meth:`pump` drives the simulation,
        so they cannot advance the clock past the workload's natural end
        or stretch a phase whose events drain before the sample times.
        """
        self._armed = deque(sorted(float(t) for t in times))

    def pump(self, until: Optional[float] = None) -> float:
        """Run the simulation, taking armed samples at exact times.

        Drop-in replacement for ``Cluster.run`` / ``Simulator.run`` that
        interleaves armed sample points with real event processing while
        guaranteeing **zero perturbation**: the clock only advances by
        processing real events, or by jumping across an idle gap the
        untraced run would cross anyway (a later real event exists, or
        ``until`` pads the clock past it).  In drain mode an armed sample
        with no real event pending simply waits for a later ``pump`` call
        (multi-phase workloads) or lapses when the workload ends — it
        never keeps the simulation alive.
        """
        sim = self.sim
        armed = self._armed
        inf = float("inf")
        while armed:
            nxt = armed[0]
            if until is not None and nxt > until:
                break
            if sim.now >= nxt:
                armed.popleft()
                self.sample_once()
                continue
            p = sim.peek()
            if p <= nxt:
                sim.step()
            elif p != inf or until is not None:
                # Idle gap the untraced clock crosses anyway — a later
                # real event exists, or ``run(until=...)`` pads past it
                # — so jump to the sample point and record there.
                sim.run(until=nxt)
            else:
                break  # drain mode, nothing pending: never advance an
                #        idle clock; remaining samples wait or lapse
        sim.run(until=until)
        return sim.now

    def stop(self) -> None:
        self._stopped = True

    def sample_once(self) -> None:
        """Record every probe at the current sim time.

        A probe that raises is skipped for this sample (counted in
        ``probe_errors``) rather than killing the sampler process — one
        faulty probe must not silence the others for the rest of the run.
        """
        t = self.sim.now
        for name, fn in self.probes.items():
            try:
                value = float(fn())
            except Exception:
                self.probe_errors += 1
                continue
            self.series[name].record(t, value)

    def _run(self):
        while not self._stopped:
            self.sample_once()
            yield self.sim.timeout(self.interval)


class EventLog:
    """A bounded structured log of simulation events."""

    def __init__(self, sim: Simulator, limit: Optional[int] = None):
        self.sim = sim
        self.limit = limit
        self.entries: List[Tuple[float, str, Any]] = []
        self.dropped = 0

    def log(self, kind: str, payload: Any = None) -> None:
        if self.limit is not None and len(self.entries) >= self.limit:
            self.dropped += 1
            return
        self.entries.append((self.sim.now, kind, payload))

    def of_kind(self, kind: str) -> List[Tuple[float, Any]]:
        return [(t, p) for (t, k, p) in self.entries if k == kind]

    def count(self, kind: str) -> int:
        return sum(1 for (_t, k, _p) in self.entries if k == kind)

    def __len__(self) -> int:
        return len(self.entries)
