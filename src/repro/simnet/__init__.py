"""Discrete-event simulation kernel used by every substrate in this repo.

``repro.simnet`` is a small, fast, SimPy-flavoured discrete-event simulator:
coroutine *processes* (Python generators) yield :class:`~repro.simnet.core.Event`
objects to the :class:`~repro.simnet.core.Simulator`, which resumes them when
the event fires.  On top of the kernel sit counted resources, stores,
synchronization primitives, deterministic random-number streams, tracing and
utilization statistics.

The simulator models *time*; the data manipulated by the higher layers (HCL
containers, BCL baseline, applications) is real.
"""

from repro.simnet.core import (
    Event,
    Timeout,
    AllOf,
    AnyOf,
    Interrupt,
    Simulator,
    SimulationError,
)
from repro.simnet.process import Process
from repro.simnet.resources import Resource, PriorityResource, Store, Container
from repro.simnet.sync import SimLock, Semaphore, Barrier, Signal
from repro.simnet.rng import RngRegistry
from repro.simnet.trace import TimeSeries, Sampler, EventLog
from repro.simnet.stats import Counter, Gauge, UtilizationMeter, Histogram, summarize

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "SimLock",
    "Semaphore",
    "Barrier",
    "Signal",
    "RngRegistry",
    "TimeSeries",
    "Sampler",
    "EventLog",
    "Counter",
    "Gauge",
    "UtilizationMeter",
    "Histogram",
    "summarize",
]
