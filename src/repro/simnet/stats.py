"""Lightweight metric primitives: counters, gauges, histograms, utilization.

Every fabric/RPC/container layer exposes these so that benchmarks can report
the same observables the paper does (ops/s, MB/s, packets/s, utilization %).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "UtilizationMeter", "Histogram", "summarize"]


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.add requires non-negative amount")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Instantaneous value with peak tracking."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str = "", value: float = 0.0):
        self.name = name
        self.value = value
        self.peak = value

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class UtilizationMeter:
    """Tracks the busy fraction of a multi-server station over sim time.

    Call ``begin(now)`` when a server starts work and ``end(now)`` when it
    finishes.  ``utilization(now)`` is busy-server-seconds / (capacity * t).
    """

    def __init__(self, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._busy = 0
        self._integral = 0.0
        self._last = 0.0
        self._started = None  # first activity timestamp

    def _advance(self, now: float) -> None:
        self._integral += self._busy * (now - self._last)
        self._last = now

    def begin(self, now: float) -> None:
        self._advance(now)
        self._busy += 1
        if self._started is None:
            self._started = now

    def end(self, now: float) -> None:
        self._advance(now)
        if self._busy <= 0:
            raise ValueError("UtilizationMeter.end without matching begin")
        self._busy -= 1

    def busy_servers(self) -> int:
        return self._busy

    def utilization(self, now: float, since: float = 0.0) -> float:
        self._advance(now)
        span = now - since
        if span <= 0:
            return 0.0
        return self._integral / (span * self.capacity)


class Histogram:
    """Fixed-width-bucket histogram in log2 space, for latencies/sizes."""

    def __init__(self, name: str = ""):
        self.name = name
        self.counts: Dict[int, int] = {}
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("Histogram.observe requires non-negative value")
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = -64 if value == 0 else int(math.floor(math.log2(value)))
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds.

        The bucket estimate (upper edge ``2**(bucket+1)``) is clamped into
        the observed ``[min, max]`` range, so a single-bucket histogram —
        where the edge can overshoot the largest sample by almost 2x —
        returns a value that was actually observed, and ``q=0``/``q=1``
        return the exact extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0,1]")
        if self.n == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.n
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= target:
                if bucket == -64:
                    return 0.0
                return min(max(2.0 ** (bucket + 1), self.min), self.max)
        return self.max

    def percentiles(self, qs=(0.5, 0.9, 0.99)) -> Dict[str, float]:
        """Named quantiles (``{"p50": ..., "p90": ..., "p99": ...}``)."""
        return {f"p{100 * q:g}": self.quantile(q) for q in qs}

    def count_above(self, threshold: float) -> int:
        """Samples whose bucket lies entirely above ``threshold``.

        The latency-SLI primitive: "how many requests exceeded the
        objective".  Log2 buckets only know sample counts per
        ``[2**b, 2**(b+1))`` range, so this counts buckets whose *lower*
        edge is >= ``threshold`` — a conservative (under-)estimate that is
        exact whenever ``threshold`` is a bucket boundary.
        """
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.n == 0 or (self.max is not None and self.max < threshold):
            return 0
        return sum(
            count
            for bucket, count in self.counts.items()
            if bucket != -64 and 2.0 ** bucket >= threshold
        )

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (bucket-exact).

        Log2 buckets are position-independent, so the union of two
        histograms is just summed bucket counts — this is how per-node
        metric fleets (``rpc0/exec``, ``rpc1/exec``, ...) roll up into one
        cluster-wide distribution without re-observing samples.
        """
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self


def summarize(values: List[float]) -> Dict[str, float]:
    """Mean / min / max / stdev / p50-ish summary of a sample list."""
    if not values:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0, "median": 0.0}
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    ordered = sorted(values)
    mid = n // 2
    median = ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return {
        "n": n,
        "mean": mean,
        "min": ordered[0],
        "max": ordered[-1],
        "stdev": math.sqrt(var),
        "median": median,
    }
