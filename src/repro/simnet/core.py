"""Event kernel for the discrete-event simulator: queues, events, pooling.

The kernel keeps the classic event-list semantics — a total order over
``(time, priority, seq)`` entries, each carrying an :class:`Event` whose
callbacks run when the entry is popped — but the implementation is built
for throughput, because every figure in the reproduction is bounded by how
many simulated events the kernel can retire per wall-clock second:

* **Two scheduling lanes.**  The dominant event pattern in this workload is
  short, regular timeouts (cost charges) whose fire times are monotonically
  non-decreasing in schedule order.  Those ride a *near-future lane*: an
  append-only deque that stays sorted by construction, giving O(1) push and
  pop.  Anything that would break the lane's ordering invariant (an earlier
  fire time, an out-of-band priority) falls back to the classic binary
  heap.  Pops merge the two lanes by comparing their heads, so the global
  ``(time, priority, seq)`` order is *identical* to a single-heap kernel.
* **Event pooling.**  ``Timeout`` and plain ``Event`` objects are recycled
  through per-simulator free lists once processed, *iff* the kernel can
  prove nothing else references them (a CPython refcount check) — so hot
  loops stop paying an allocation per simulated charge while user-held
  events keep working like one-shot latches.
* **A callback fast path.**  :meth:`Simulator.schedule_callback` schedules
  a bare ``fn()`` at a future time with no Event allocation at all; the
  wrapper objects are kernel-owned and recycled unconditionally.

Time is a ``float`` in **seconds**.  All substrates (fabric, memory, rpc)
charge costs in seconds so that benchmark output is directly comparable
with the numbers reported in the paper.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Iterable, Optional

from collections import deque

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on a lane, value decided
_PROCESSED = 2  # callbacks have run

# Free-list bound: big enough that steady-state hot loops never miss, small
# enough that a burst of recycled events cannot pin unbounded memory.
_POOL_CAP = 4096

# Recycling needs to prove an event is unreachable from user code; CPython's
# refcount makes that exact and cheap.  On runtimes without refcounts the
# kernel simply never recycles (functionally identical, just slower).
_getrefcount = getattr(sys, "getrefcount", None)


class Event:
    """A one-shot occurrence in simulated time.

    Processes wait on events by ``yield``-ing them.  An event is *triggered*
    with either a value (:meth:`succeed`) or an exception (:meth:`fail`);
    once the simulator processes it, all registered callbacks run in
    registration order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event carries a value (True) or an exception (False)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is undefined")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event with ``value`` after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        # Inlined Simulator._push — succeed() is on the hot path of stores,
        # locks, and resource grants.
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        t = sim.now + delay
        lane = sim._lane
        if not lane or t > lane[-1][0] or (t == lane[-1][0] and lane[-1][1] <= 0):
            lane.append((t, 0, seq, self))
        else:
            heapq.heappush(sim._heap, (t, 0, seq, self))
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    # -- kernel hooks ---------------------------------------------------------
    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when this event is processed.

        If the event has already been processed the callback runs
        immediately (same semantics as adding a done-callback to a finished
        future).
        """
        if self._state == _PROCESSED:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created via ``sim.timeout``.

    Timeouts the kernel can prove unreferenced are recycled through
    ``Simulator._timeout_pool`` after processing — see ``Simulator.run``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        sim._push(self, delay)

    def _process(self) -> None:
        # A timeout is born triggered, so add_callback() never appends once
        # we are _PROCESSED — iterating without swapping the list is safe
        # and lets a recycled timeout reuse its callbacks list allocation.
        self._state = _PROCESSED
        callbacks = self.callbacks
        if callbacks:
            for cb in callbacks:
                cb(self)
            callbacks.clear()


class _ScheduledCallback:
    """Kernel-owned heap entry that runs ``fn()`` with no Event machinery.

    Never handed to user code, so instances are recycled unconditionally.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Optional[Callable[[], None]] = None):
        self.fn = fn

    def _process(self) -> None:
        self.fn()


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this fails with the first failure and *detaches*
    its callback from the still-pending children so long-running sims do
    not accumulate dead callbacks.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            if self._state != _PENDING:
                break  # settled early (an already-failed child); stop attaching
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
            self._detach()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])

    def _detach(self) -> None:
        cb = self._on_child
        for child in self._children:
            if child._state != _PROCESSED:
                try:
                    child.callbacks.remove(cb)
                except ValueError:
                    pass


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``.

    On settling (first success or failure) the losers' callbacks are
    detached, so waiting on a fast event plus a long watchdog timeout does
    not leak a callback per wait.
    """

    __slots__ = ("_children", "_cbs")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        self._cbs: list[Callable[[Event], None]] = []
        for i, ev in enumerate(self._children):
            if self._state != _PENDING:
                break  # settled during attach (already-processed child)
            cb = (lambda e, i=i: self._on_child(i, e))
            self._cbs.append(cb)
            ev.add_callback(cb)

    def _on_child(self, index: int, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed((index, ev.value))
        self._detach()

    def _detach(self) -> None:
        for child, cb in zip(self._children, self._cbs):
            if child._state != _PROCESSED:
                try:
                    child.callbacks.remove(cb)
                except ValueError:
                    pass


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()

    ``run`` executes events until both lanes are empty or ``until`` is
    reached.  ``pooling=False`` disables event recycling (debug aid).
    """

    def __init__(self, pooling: bool = True):
        self._heap: list[tuple[float, int, int, Any]] = []
        # Near-future lane: entries appended here are non-decreasing in
        # (time, priority), so the deque is sorted by construction.
        self._lane: deque[tuple[float, int, int, Any]] = deque()
        self._seq = 0
        self.now: float = 0.0
        self._event_count = 0
        self._active = True
        self._pooling = pooling and _getrefcount is not None
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._cb_pool: list[_ScheduledCallback] = []
        self._recycled = 0

    # -- event creation helpers ----------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            return pool.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            to = pool.pop()
            to._value = value
            to._state = _TRIGGERED
        else:
            to = Timeout.__new__(Timeout)
            to.sim = self
            to.callbacks = []
            to._value = value
            to._ok = True
            to._state = _TRIGGERED
        # Inlined _push (hot path).
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if lane:
            tail = lane[-1]
            if t > tail[0] or (t == tail[0] and tail[1] <= 0):
                lane.append((t, 0, seq, to))
            else:
                heapq.heappush(self._heap, (t, 0, seq, to))
        else:
            lane.append((t, 0, seq, to))
        return to

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Timeout firing at *absolute* sim time ``when``.

        Exists so fused charges can reproduce the exact floating-point
        timestamps of the sequential charges they replace (``(now + a) + b``
        is not ``now + (a + b)`` in floats): the caller does the additions
        in the original order and schedules the result directly.
        """
        if when < self.now:
            raise ValueError(f"timeout_at {when} is in the past (now={self.now})")
        pool = self._timeout_pool
        if pool:
            to = pool.pop()
            to._value = value
            to._state = _TRIGGERED
        else:
            to = Timeout.__new__(Timeout)
            to.sim = self
            to.callbacks = []
            to._value = value
            to._ok = True
            to._state = _TRIGGERED
        self._seq = seq = self._seq + 1
        lane = self._lane
        if not lane or when > lane[-1][0] or (
                when == lane[-1][0] and lane[-1][1] <= 0):
            lane.append((when, 0, seq, to))
        else:
            heapq.heappush(self._heap, (when, 0, seq, to))
        return to

    def schedule_callback(self, fn: Callable[[], None], delay: float = 0.0,
                          priority: int = 0) -> None:
        """Run bare ``fn()`` after ``delay`` sim-seconds (fire-and-forget).

        Skips Event allocation entirely; counts as one processed event.
        Use for cost charges and kernel plumbing that nothing waits on.
        """
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        pool = self._cb_pool
        if pool:
            entry = pool.pop()
            entry.fn = fn
        else:
            entry = _ScheduledCallback(fn)
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if not lane or t > lane[-1][0] or (
                t == lane[-1][0] and lane[-1][1] <= priority):
            lane.append((t, priority, seq, entry))
        else:
            heapq.heappush(self._heap, (t, priority, seq, entry))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator, name: Optional[str] = None) -> "Process":
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    # -- scheduling -----------------------------------------------------------
    def _push(self, event: Any, delay: float, priority: int = 0) -> None:
        """Schedule ``event`` (anything with ``_process``) after ``delay``.

        Entries whose ``(time, priority)`` is >= the near-future lane's tail
        keep the lane sorted and go there (O(1)); everything else falls back
        to the binary heap.  Pops merge both, preserving exact
        ``(time, priority, seq)`` order.
        """
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if not lane or t > lane[-1][0] or (
                t == lane[-1][0] and lane[-1][1] <= priority):
            lane.append((t, priority, seq, event))
        else:
            heapq.heappush(self._heap, (t, priority, seq, event))

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        heap = self._heap
        lane = self._lane
        if lane and (not heap or lane[0] < heap[0]):
            t, _prio, _seq, event = lane.popleft()
        else:
            t, _prio, _seq, event = heapq.heappop(heap)
        if t < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = t
        self._event_count += 1
        event._process()
        if self._pooling:
            self._recycle(event)

    def _recycle(self, event: Any) -> None:
        """Return ``event`` to its free list if provably unreferenced.

        Caller must hold exactly one reference (its local variable); the
        refcount of 3 seen here is that local + our parameter binding +
        getrefcount's argument.
        """
        cls = event.__class__
        if cls is _ScheduledCallback:
            event.fn = None
            if len(self._cb_pool) < _POOL_CAP:
                self._cb_pool.append(event)
        elif cls is Timeout:
            if (not event.callbacks and _getrefcount(event) == 3
                    and len(self._timeout_pool) < _POOL_CAP):
                event._state = _PENDING
                event._value = None
                event._ok = True
                self._timeout_pool.append(event)
                self._recycled += 1
        elif cls is Event:
            if (not event.callbacks and _getrefcount(event) == 3
                    and len(self._event_pool) < _POOL_CAP):
                event._state = _PENDING
                event._value = None
                event._ok = True
                self._event_pool.append(event)
                self._recycled += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        lane = self._lane
        if lane:
            if heap and heap[0][0] < lane[0][0]:
                return heap[0][0]
            return lane[0][0]
        return heap[0][0] if heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until both lanes drain or sim-time passes ``until``."""
        if until is not None:
            while (self._lane or self._heap) and self.peek() <= until:
                self.step()
            if self.now < until:
                self.now = until
            return
        heap = self._heap
        lane = self._lane
        popleft = lane.popleft
        heappop = heapq.heappop
        pooling = self._pooling
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        cb_pool = self._cb_pool
        getrefcount = _getrefcount
        timeout_cls = Timeout
        cb_cls = _ScheduledCallback
        event_cls = Event
        processed = _PROCESSED
        # Event-count is accumulated locally and flushed on exit (including
        # re-entrant runs: each loop flushes only the events it popped).
        count = 0
        # The drain loop is fully inlined, with per-class dispatch for the
        # two dominant entry kinds: at paper scale it retires millions of
        # events, and every avoided frame counts.
        try:
            while lane or heap:
                if lane and (not heap or lane[0] < heap[0]):
                    t, _prio, _seq, event = popleft()
                else:
                    t, _prio, _seq, event = heappop(heap)
                self.now = t
                count += 1
                cls = event.__class__
                if cls is timeout_cls:
                    # Inlined Timeout._process.
                    event._state = processed
                    callbacks = event.callbacks
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                    # refcount 2 == our local + getrefcount's argument:
                    # nothing else can observe this event again.
                    if (pooling and not callbacks and getrefcount(event) == 2
                            and len(timeout_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        timeout_pool.append(event)
                        self._recycled += 1
                elif cls is cb_cls:
                    # Inlined _ScheduledCallback._process + recycle.
                    event.fn()
                    if pooling and len(cb_pool) < _POOL_CAP:
                        event.fn = None
                        cb_pool.append(event)
                else:
                    event._process()
                    if (pooling and cls is event_cls and not event.callbacks
                            and getrefcount(event) == 2
                            and len(event_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        event_pool.append(event)
                        self._recycled += 1
        finally:
            self._event_count += count

    def run_process(self, generator, name: Optional[str] = None) -> Any:
        """Convenience: spawn ``generator`` and run the sim to completion.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or starvation)"
            )
        return proc.result

    @property
    def events_processed(self) -> int:
        return self._event_count

    def kernel_stats(self) -> dict:
        """Observability snapshot of the kernel fast paths."""
        return {
            "events_processed": self._event_count,
            "events_recycled": self._recycled,
            "timeout_pool": len(self._timeout_pool),
            "event_pool": len(self._event_pool),
            "callback_pool": len(self._cb_pool),
            "lane_depth": len(self._lane),
            "heap_depth": len(self._heap),
            "pooling": self._pooling,
        }
