"""Event heap and event primitives for the discrete-event simulator.

The kernel follows the classic event-list design: a binary heap of
``(time, priority, seq, event)`` entries.  An :class:`Event` is a one-shot
latch; callbacks registered on it run when the simulator pops it off the
heap.  :class:`~repro.simnet.process.Process` objects are just callbacks that
resume a generator.

Time is a ``float`` in **seconds**.  All substrates (fabric, memory, rpc)
charge costs in seconds so that benchmark output is directly comparable with
the numbers reported in the paper.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, value decided
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in simulated time.

    Processes wait on events by ``yield``-ing them.  An event is *triggered*
    with either a value (:meth:`succeed`) or an exception (:meth:`fail`);
    once the simulator processes it, all registered callbacks run in
    registration order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event carries a value (True) or an exception (False)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is undefined")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event with ``value`` after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    # -- kernel hooks ---------------------------------------------------------
    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when this event is processed.

        If the event has already been processed the callback runs
        immediately (same semantics as adding a done-callback to a finished
        future).
        """
        if self._state == _PROCESSED:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created via ``sim.timeout``."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        sim._push(self, delay)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this fails with the first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed((index, ev.value))


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()

    ``run`` executes events until the heap is empty or ``until`` is reached.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.now: float = 0.0
        self._event_count = 0
        self._active = True

    # -- event creation helpers ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator, name: Optional[str] = None) -> "Process":
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    # -- scheduling -----------------------------------------------------------
    def _push(self, event: Event, delay: float, priority: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = t
        self._event_count += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or sim-time passes ``until``."""
        if until is None:
            while self._heap:
                self.step()
        else:
            while self._heap and self._heap[0][0] <= until:
                self.step()
            if self.now < until:
                self.now = until

    def run_process(self, generator, name: Optional[str] = None) -> Any:
        """Convenience: spawn ``generator`` and run the sim to completion.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or starvation)"
            )
        return proc.result

    @property
    def events_processed(self) -> int:
        return self._event_count
