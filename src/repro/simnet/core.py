"""Event kernel for the discrete-event simulator: queues, events, pooling.

The kernel keeps the classic event-list semantics — a total order over
``(time, priority, seq)`` entries, each carrying an :class:`Event` whose
callbacks run when the entry is popped — but the implementation is built
for throughput, because every figure in the reproduction is bounded by how
many simulated events the kernel can retire per wall-clock second:

* **Two scheduling lanes.**  The dominant event pattern in this workload is
  short, regular timeouts (cost charges) whose fire times are monotonically
  non-decreasing in schedule order.  Those ride a *near-future lane*: an
  append-only deque that stays sorted by construction, giving O(1) push and
  pop.  Anything that would break the lane's ordering invariant (an earlier
  fire time, an out-of-band priority) falls back to the *far lane*.  Pops
  merge the two lanes by comparing their heads, so the global
  ``(time, priority, seq)`` order is *identical* to a single-heap kernel.
* **A configurable far lane.**  ``Simulator(scheduler="calendar")`` (the
  default) backs the far lane with a :class:`_CalendarQueue` — O(1) amortized
  push into time-indexed buckets, with an adaptive bucket width — which beats
  the binary heap once app workloads put thousands of out-of-order entries in
  flight.  ``scheduler="heap"`` retains the classic ``heapq`` far lane; both
  retire events in exactly the same ``(time, priority, seq)`` order, and the
  tier-1 suite asserts trace equivalence between them on every run.
* **An inlined waiter slot.**  The overwhelmingly common wait shape is one
  process blocked on one event.  That single waiter lives in the event's
  ``_wait`` slot instead of the callbacks list, and the drain loop resumes
  it in place — no callback-list append/iterate/clear and no ``_resume``
  frame per retired event.  Multiple waiters overflow to ``callbacks`` in
  registration order, so firing order is unchanged.
* **Event pooling.**  ``Timeout`` and plain ``Event`` objects are recycled
  through per-simulator free lists once processed, *iff* the kernel can
  prove nothing else references them (a CPython refcount check) — so hot
  loops stop paying an allocation per simulated charge while user-held
  events keep working like one-shot latches.
* **A callback fast path.**  :meth:`Simulator.schedule_callback` schedules
  a bare ``fn()`` at a future time with no Event allocation at all; the
  wrapper objects are kernel-owned and recycled unconditionally.

Time is a ``float`` in **seconds**.  All substrates (fabric, memory, rpc)
charge costs in seconds so that benchmark output is directly comparable
with the numbers reported in the paper.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Iterable, Optional

from collections import deque
from functools import partial as _partial

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on a lane, value decided
_PROCESSED = 2  # callbacks have run

# Free-list bound: big enough that steady-state hot loops never miss, small
# enough that a burst of recycled events cannot pin unbounded memory.
_POOL_CAP = 4096

# Recycling needs to prove an event is unreachable from user code; CPython's
# refcount makes that exact and cheap.  On runtimes without refcounts the
# kernel simply never recycles (functionally identical, just slower).
_getrefcount = getattr(sys, "getrefcount", None)


class Event:
    """A one-shot occurrence in simulated time.

    Processes wait on events by ``yield``-ing them.  An event is *triggered*
    with either a value (:meth:`succeed`) or an exception (:meth:`fail`);
    once the simulator processes it, all registered callbacks run in
    registration order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_wait")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        # Fast-path waiter slot: the first Process to wait on this event
        # parks here instead of in ``callbacks`` (see module docstring).
        self._wait = None

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event carries a value (True) or an exception (False)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is undefined")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event with ``value`` after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        # Inlined Simulator._push — succeed() is on the hot path of stores,
        # locks, and resource grants.
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        t = sim.now + delay
        lane = sim._lane
        if not lane or t > lane[-1][0] or (t == lane[-1][0] and lane[-1][1] <= 0):
            lane.append((t, 0, seq, self))
        else:
            sim._far_push((t, 0, seq, self))
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    # -- kernel hooks ---------------------------------------------------------
    def _process(self) -> None:
        self._state = _PROCESSED
        w = self._wait
        if w is not None:
            # The slot waiter registered before any callback, so it fires
            # first — identical to the list order it replaces.
            self._wait = None
            w._resume(self)
        if self.callbacks:
            callbacks, self.callbacks = self.callbacks, []
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when this event is processed.

        If the event has already been processed the callback runs
        immediately (same semantics as adding a done-callback to a finished
        future).
        """
        if self._state == _PROCESSED:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "triggered", 2: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created via ``sim.timeout``.

    Timeouts the kernel can prove unreferenced are recycled through
    ``Simulator._timeout_pool`` after processing — see ``Simulator.run``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        sim._push(self, delay)

    def _process(self) -> None:
        # A timeout is born triggered, so add_callback() never appends once
        # we are _PROCESSED — iterating without swapping the list is safe
        # and lets a recycled timeout reuse its callbacks list allocation.
        self._state = _PROCESSED
        w = self._wait
        if w is not None:
            self._wait = None
            w._resume(self)
        callbacks = self.callbacks
        if callbacks:
            for cb in callbacks:
                cb(self)
            callbacks.clear()


class _ScheduledCallback:
    """Kernel-owned heap entry that runs ``fn()`` with no Event machinery.

    Never handed to user code, so instances are recycled unconditionally.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Optional[Callable[[], None]] = None):
        self.fn = fn

    def _process(self) -> None:
        self.fn()


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this fails with the first failure and *detaches*
    its callback from the still-pending children so long-running sims do
    not accumulate dead callbacks.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            if self._state != _PENDING:
                break  # settled early (an already-failed child); stop attaching
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
            self._detach()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])

    def _detach(self) -> None:
        cb = self._on_child
        for child in self._children:
            if child._state != _PROCESSED:
                try:
                    child.callbacks.remove(cb)
                except ValueError:
                    pass


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``.

    On settling (first success or failure) the losers' callbacks are
    detached, so waiting on a fast event plus a long watchdog timeout does
    not leak a callback per wait.
    """

    __slots__ = ("_children", "_cbs")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        self._cbs: list[Callable[[Event], None]] = []
        for i, ev in enumerate(self._children):
            if self._state != _PENDING:
                break  # settled during attach (already-processed child)
            cb = (lambda e, i=i: self._on_child(i, e))
            self._cbs.append(cb)
            ev.add_callback(cb)

    def _on_child(self, index: int, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed((index, ev.value))
        self._detach()

    def _detach(self) -> None:
        for child, cb in zip(self._children, self._cbs):
            if child._state != _PROCESSED:
                try:
                    child.callbacks.remove(cb)
                except ValueError:
                    pass


#: entries at or past this sim time share one top bucket, so ``inf``
#: deadlines never overflow the bucket-index arithmetic
_T_CAP = 1e15


class _CalendarQueue:
    """Calendar-queue far lane: total order over ``(time, priority, seq)``.

    Entries within one bucket width of the active *epoch* live in
    ``current``, a descending-sorted list (min at the end → O(1) pop, and
    near-min inserts — the common far-push shape — touch the tail).
    Later entries are appended unsorted to time-indexed buckets
    (``int(t // width)``); when ``current`` drains, the earliest bucket is
    popped, sorted once, and becomes the new epoch.  The epoch boundary
    (``horizon``) only matters for routing pushes: anything earlier is
    insorted into ``current``, so the pop order is *exactly* the heap's
    ``(time, priority, seq)`` order (seqs are unique, so ties never reach
    the event object).

    The bucket width adapts at refill time: an oversized bucket halves the
    width, a string of near-empty buckets doubles it, keeping refill sorts
    O(1)-amortized per entry for both dense and sparse event mixes.
    """

    __slots__ = ("width", "horizon", "current", "buckets", "_bucket_heap",
                 "future_count", "refills", "resizes", "max_bucket")

    _REFILL_HI = 512   # refilled bucket larger than this -> halve the width
    _REFILL_LO = 2     # this small (while many buckets remain) -> double it
    _MIN_WIDTH = 1e-9  # never shrink below a nanosecond of sim time

    def __init__(self, width: float = 64e-6):
        self.width = width
        self.horizon = float("-inf")
        self.current: list[tuple] = []  # descending; min at the end
        self.buckets: dict[int, list[tuple]] = {}
        self._bucket_heap: list[int] = []
        self.future_count = 0  # entries parked in buckets (excludes current)
        self.refills = 0
        self.resizes = 0
        self.max_bucket = 0

    def __len__(self) -> int:
        return len(self.current) + self.future_count

    def push(self, entry: tuple) -> None:
        t = entry[0]
        if t < self.horizon:
            # Active epoch: descending insort.  Tail check first — most
            # far pushes are *earlier* than everything already queued.
            cur = self.current
            if not cur or entry < cur[-1]:
                cur.append(entry)
                return
            lo, hi = 0, len(cur)
            while lo < hi:
                mid = (lo + hi) // 2
                if entry < cur[mid]:
                    lo = mid + 1
                else:
                    hi = mid
            cur.insert(lo, entry)
        else:
            width = self.width
            b = int(t // width) if t < _T_CAP else int(_T_CAP // width) + 1
            lst = self.buckets.get(b)
            if lst is None:
                self.buckets[b] = [entry]
                heapq.heappush(self._bucket_heap, b)
            else:
                lst.append(entry)
            self.future_count += 1

    def peek(self) -> Optional[tuple]:
        cur = self.current
        if not cur:
            if not self.future_count:
                return None
            self._refill()
            cur = self.current
        return cur[-1]

    def pop(self) -> tuple:
        cur = self.current
        if not cur:
            self._refill()
            cur = self.current
        return cur.pop()

    def _refill(self) -> None:
        """Promote the earliest bucket to the new epoch (``current``).

        ``current``'s list identity is preserved (filled in place) so the
        drain loop can cache a reference to it across refills.
        """
        b = heapq.heappop(self._bucket_heap)
        entries = self.buckets.pop(b)
        n = len(entries)
        self.future_count -= n
        if n > self.max_bucket:
            self.max_bucket = n
        entries.sort(reverse=True)
        self.current[:] = entries
        self.horizon = (b + 1) * self.width
        self.refills += 1
        if n > self._REFILL_HI and self.width > self._MIN_WIDTH:
            self._rebucket(self.width * 0.5)
        elif n <= self._REFILL_LO and len(self.buckets) > 8:
            self._rebucket(self.width * 2.0)

    def _rebucket(self, new_width: float) -> None:
        self.width = new_width
        entries: list[tuple] = []
        for lst in self.buckets.values():
            entries.extend(lst)
        self.buckets.clear()
        self._bucket_heap.clear()
        buckets = self.buckets
        bucket_heap = self._bucket_heap
        for e in entries:
            t = e[0]
            b = int(t // new_width) if t < _T_CAP else int(_T_CAP // new_width) + 1
            lst = buckets.get(b)
            if lst is None:
                buckets[b] = [e]
                heapq.heappush(bucket_heap, b)
            else:
                lst.append(e)
        self.resizes += 1

    def stats(self) -> dict:
        occupied = len(self.buckets)
        return {
            "width": self.width,
            "buckets": occupied,
            "bucket_occupancy": (
                self.future_count / occupied if occupied else 0.0
            ),
            "max_bucket": self.max_bucket,
            "refills": self.refills,
            "resizes": self.resizes,
        }


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()

    ``run`` executes events until both lanes are empty or ``until`` is
    reached.  ``pooling=False`` disables event recycling (debug aid).
    ``scheduler`` picks the far-lane implementation: ``"calendar"`` (the
    default :class:`_CalendarQueue`) or ``"heap"`` (classic ``heapq``);
    both retire events in identical ``(time, priority, seq)`` order.
    """

    def __init__(self, pooling: bool = True, scheduler: str = "calendar"):
        if scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler must be 'calendar' or 'heap', got {scheduler!r}")
        self.scheduler = scheduler
        self._heap: list[tuple[float, int, int, Any]] = []
        self._cal: Optional[_CalendarQueue] = (
            _CalendarQueue() if scheduler == "calendar" else None
        )
        # All far pushes funnel through this bound callable so the five
        # inlined hot paths stay scheduler-agnostic.
        if self._cal is not None:
            self._far_push = self._cal.push
        else:
            self._far_push = _partial(heapq.heappush, self._heap)
        # Near-future lane: entries appended here are non-decreasing in
        # (time, priority), so the deque is sorted by construction.
        self._lane: deque[tuple[float, int, int, Any]] = deque()
        self._seq = 0
        self.now: float = 0.0
        self._event_count = 0
        self._active = True
        self._pooling = pooling and _getrefcount is not None
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._cb_pool: list[_ScheduledCallback] = []
        self._recycled = 0

    # -- event creation helpers ----------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            return pool.pop()
        return Event(self)

    def completed_event(self, value: Any = None, ok: bool = True) -> Event:
        """An event that is already processed, carrying ``value``.

        Yielding it resumes the process immediately (the kernel's
        already-fired kick path) and ``add_callback`` runs synchronously —
        without ever touching the scheduling lanes.  Lets consumers attach
        to results that settled in an earlier kernel iteration, or after
        the run has drained, with no extra queue traffic.
        """
        if not ok and not isinstance(value, BaseException):
            raise TypeError("completed_event(ok=False) requires an exception")
        ev = Event(self)
        ev._value = value
        ev._ok = ok
        ev._state = _PROCESSED
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            to = pool.pop()
            to._value = value
            to._state = _TRIGGERED
        else:
            to = Timeout.__new__(Timeout)
            to.sim = self
            to.callbacks = []
            to._value = value
            to._ok = True
            to._state = _TRIGGERED
            to._wait = None
        # Inlined _push (hot path).
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if lane:
            tail = lane[-1]
            if t > tail[0] or (t == tail[0] and tail[1] <= 0):
                lane.append((t, 0, seq, to))
            else:
                self._far_push((t, 0, seq, to))
        else:
            lane.append((t, 0, seq, to))
        return to

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Timeout firing at *absolute* sim time ``when``.

        Exists so fused charges can reproduce the exact floating-point
        timestamps of the sequential charges they replace (``(now + a) + b``
        is not ``now + (a + b)`` in floats): the caller does the additions
        in the original order and schedules the result directly.
        """
        if when < self.now:
            raise ValueError(f"timeout_at {when} is in the past (now={self.now})")
        pool = self._timeout_pool
        if pool:
            to = pool.pop()
            to._value = value
            to._state = _TRIGGERED
        else:
            to = Timeout.__new__(Timeout)
            to.sim = self
            to.callbacks = []
            to._value = value
            to._ok = True
            to._state = _TRIGGERED
            to._wait = None
        self._seq = seq = self._seq + 1
        lane = self._lane
        if not lane or when > lane[-1][0] or (
                when == lane[-1][0] and lane[-1][1] <= 0):
            lane.append((when, 0, seq, to))
        else:
            self._far_push((when, 0, seq, to))
        return to

    def schedule_callback(self, fn: Callable[[], None], delay: float = 0.0,
                          priority: int = 0) -> None:
        """Run bare ``fn()`` after ``delay`` sim-seconds (fire-and-forget).

        Skips Event allocation entirely; counts as one processed event.
        Use for cost charges and kernel plumbing that nothing waits on.
        """
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        pool = self._cb_pool
        if pool:
            entry = pool.pop()
            entry.fn = fn
        else:
            entry = _ScheduledCallback(fn)
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if not lane or t > lane[-1][0] or (
                t == lane[-1][0] and lane[-1][1] <= priority):
            lane.append((t, priority, seq, entry))
        else:
            self._far_push((t, priority, seq, entry))

    def schedule_callback_at(self, fn: Callable[[], None], when: float,
                             priority: int = 0) -> None:
        """Run bare ``fn()`` at *absolute* sim time ``when``.

        The ``timeout_at`` of callbacks: fused fabric charges use it to
        schedule resource releases at exactly the floating-point timestamp
        the per-packet path would have produced.
        """
        if when < self.now:
            raise ValueError(
                f"schedule_callback_at {when} is in the past (now={self.now})")
        pool = self._cb_pool
        if pool:
            entry = pool.pop()
            entry.fn = fn
        else:
            entry = _ScheduledCallback(fn)
        self._seq = seq = self._seq + 1
        lane = self._lane
        if not lane or when > lane[-1][0] or (
                when == lane[-1][0] and lane[-1][1] <= priority):
            lane.append((when, priority, seq, entry))
        else:
            self._far_push((when, priority, seq, entry))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator, name: Optional[str] = None) -> "Process":
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    # -- scheduling -----------------------------------------------------------
    def _push(self, event: Any, delay: float, priority: int = 0) -> None:
        """Schedule ``event`` (anything with ``_process``) after ``delay``.

        Entries whose ``(time, priority)`` is >= the near-future lane's tail
        keep the lane sorted and go there (O(1)); everything else falls back
        to the binary heap.  Pops merge both, preserving exact
        ``(time, priority, seq)`` order.
        """
        self._seq = seq = self._seq + 1
        t = self.now + delay
        lane = self._lane
        if not lane or t > lane[-1][0] or (
                t == lane[-1][0] and lane[-1][1] <= priority):
            lane.append((t, priority, seq, event))
        else:
            self._far_push((t, priority, seq, event))

    def _far_len(self) -> int:
        cal = self._cal
        return len(cal) if cal is not None else len(self._heap)

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        lane = self._lane
        cal = self._cal
        if cal is None:
            heap = self._heap
            if lane and (not heap or lane[0] < heap[0]):
                t, _prio, _seq, event = lane.popleft()
            else:
                t, _prio, _seq, event = heapq.heappop(heap)
        else:
            far = cal.peek()
            if lane and (far is None or lane[0] < far):
                t, _prio, _seq, event = lane.popleft()
            else:
                t, _prio, _seq, event = cal.pop()
        if t < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = t
        self._event_count += 1
        event._process()
        if self._pooling:
            self._recycle(event)

    def _recycle(self, event: Any) -> None:
        """Return ``event`` to its free list if provably unreferenced.

        Caller must hold exactly one reference (its local variable); the
        refcount of 3 seen here is that local + our parameter binding +
        getrefcount's argument.
        """
        cls = event.__class__
        if cls is _ScheduledCallback:
            event.fn = None
            if len(self._cb_pool) < _POOL_CAP:
                self._cb_pool.append(event)
        elif cls is Timeout:
            if (not event.callbacks and event._wait is None
                    and _getrefcount(event) == 3
                    and len(self._timeout_pool) < _POOL_CAP):
                event._state = _PENDING
                event._value = None
                event._ok = True
                self._timeout_pool.append(event)
                self._recycled += 1
        elif cls is Event:
            if (not event.callbacks and event._wait is None
                    and _getrefcount(event) == 3
                    and len(self._event_pool) < _POOL_CAP):
                event._state = _PENDING
                event._value = None
                event._ok = True
                self._event_pool.append(event)
                self._recycled += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        lane = self._lane
        cal = self._cal
        if cal is None:
            heap = self._heap
            if lane:
                if heap and heap[0][0] < lane[0][0]:
                    return heap[0][0]
                return lane[0][0]
            return heap[0][0] if heap else float("inf")
        far = cal.peek()
        if lane:
            if far is not None and far[0] < lane[0][0]:
                return far[0]
            return lane[0][0]
        return far[0] if far is not None else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until both lanes drain or sim-time passes ``until``."""
        if until is not None:
            while (self._lane or self._far_len()) and self.peek() <= until:
                self.step()
            if self.now < until:
                self.now = until
            return
        if self._cal is not None:
            self._run_calendar()
        else:
            self._run_heap()

    # The two drain loops below are fully inlined, with per-class dispatch
    # for the dominant entry kinds: at paper scale they retire millions of
    # events, and every avoided frame counts.  They differ ONLY in how the
    # far lane's head is popped/merged — keep the dispatch bodies in sync.
    #
    # Timeout dispatch also inlines the single-waiter resume: the waiting
    # process parked in ``event._wait`` is stepped right here (generator
    # send + re-registration) instead of through Process._resume — saving a
    # callback-list append/iterate/clear and one frame per retired event.
    # Semantics are identical: the slot waiter is always the earliest
    # registrant, the ``_waiting_on is event`` tombstone guard still drops
    # interrupted waits, and a StopIteration/exception settles the process
    # exactly as Process._resume would.

    def _run_heap(self) -> None:
        heap = self._heap
        lane = self._lane
        popleft = lane.popleft
        heappop = heapq.heappop
        pooling = self._pooling
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        cb_pool = self._cb_pool
        getrefcount = _getrefcount
        timeout_cls = Timeout
        cb_cls = _ScheduledCallback
        event_cls = Event
        processed = _PROCESSED
        # Event-count is accumulated locally and flushed on exit (including
        # re-entrant runs: each loop flushes only the events it popped).
        count = 0
        try:
            while lane or heap:
                if lane and (not heap or lane[0] < heap[0]):
                    t, _prio, _seq, event = popleft()
                else:
                    t, _prio, _seq, event = heappop(heap)
                self.now = t
                count += 1
                cls = event.__class__
                if cls is timeout_cls:
                    # Inlined Timeout._process.
                    event._state = processed
                    w = event._wait
                    if w is not None:
                        event._wait = None
                        if w._waiting_on is event:
                            w._waiting_on = None
                            try:
                                target = w._send(event._value)
                            except StopIteration as stop:
                                w.succeed(stop.value)
                            except BaseException as err:
                                w.fail(err)
                            else:
                                if isinstance(target, event_cls):
                                    if target._state != processed:
                                        w._waiting_on = target
                                        if (target._wait is None
                                                and not target.callbacks):
                                            target._wait = w
                                        else:
                                            target.callbacks.append(
                                                w._resume_cb)
                                    else:
                                        w._kick(target)
                                else:
                                    w._reject_yield(target)
                                # Drop our ref so the pooling refcount
                                # proof holds when `target` is popped.
                                target = None
                    callbacks = event.callbacks
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                    # refcount 2 == our local + getrefcount's argument:
                    # nothing else can observe this event again.
                    if (pooling and not callbacks and event._wait is None
                            and getrefcount(event) == 2
                            and len(timeout_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        timeout_pool.append(event)
                        self._recycled += 1
                elif cls is cb_cls:
                    # Inlined _ScheduledCallback._process + recycle.
                    event.fn()
                    if pooling and len(cb_pool) < _POOL_CAP:
                        event.fn = None
                        cb_pool.append(event)
                else:
                    event._process()
                    if (pooling and cls is event_cls and not event.callbacks
                            and event._wait is None
                            and getrefcount(event) == 2
                            and len(event_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        event_pool.append(event)
                        self._recycled += 1
        finally:
            self._event_count += count

    def _run_calendar(self) -> None:
        cal = self._cal
        cur = cal.current  # identity-stable: _refill assigns in place
        lane = self._lane
        popleft = lane.popleft
        pooling = self._pooling
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        cb_pool = self._cb_pool
        getrefcount = _getrefcount
        timeout_cls = Timeout
        cb_cls = _ScheduledCallback
        event_cls = Event
        processed = _PROCESSED
        count = 0
        try:
            while True:
                if lane:
                    if cur:
                        if lane[0] < cur[-1]:
                            t, _prio, _seq, event = popleft()
                        else:
                            t, _prio, _seq, event = cur.pop()
                    elif cal.future_count:
                        cal._refill()
                        continue
                    else:
                        t, _prio, _seq, event = popleft()
                elif cur:
                    t, _prio, _seq, event = cur.pop()
                elif cal.future_count:
                    cal._refill()
                    continue
                else:
                    break
                self.now = t
                count += 1
                cls = event.__class__
                if cls is timeout_cls:
                    # Inlined Timeout._process.
                    event._state = processed
                    w = event._wait
                    if w is not None:
                        event._wait = None
                        if w._waiting_on is event:
                            w._waiting_on = None
                            try:
                                target = w._send(event._value)
                            except StopIteration as stop:
                                w.succeed(stop.value)
                            except BaseException as err:
                                w.fail(err)
                            else:
                                if isinstance(target, event_cls):
                                    if target._state != processed:
                                        w._waiting_on = target
                                        if (target._wait is None
                                                and not target.callbacks):
                                            target._wait = w
                                        else:
                                            target.callbacks.append(
                                                w._resume_cb)
                                    else:
                                        w._kick(target)
                                else:
                                    w._reject_yield(target)
                                # Drop our ref so the pooling refcount
                                # proof holds when `target` is popped.
                                target = None
                    callbacks = event.callbacks
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                    # refcount 2 == our local + getrefcount's argument:
                    # nothing else can observe this event again.
                    if (pooling and not callbacks and event._wait is None
                            and getrefcount(event) == 2
                            and len(timeout_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        timeout_pool.append(event)
                        self._recycled += 1
                elif cls is cb_cls:
                    # Inlined _ScheduledCallback._process + recycle.
                    event.fn()
                    if pooling and len(cb_pool) < _POOL_CAP:
                        event.fn = None
                        cb_pool.append(event)
                else:
                    event._process()
                    if (pooling and cls is event_cls and not event.callbacks
                            and event._wait is None
                            and getrefcount(event) == 2
                            and len(event_pool) < _POOL_CAP):
                        event._state = 0
                        event._value = None
                        event._ok = True
                        event_pool.append(event)
                        self._recycled += 1
        finally:
            self._event_count += count

    def run_process(self, generator, name: Optional[str] = None) -> Any:
        """Convenience: spawn ``generator`` and run the sim to completion.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or starvation)"
            )
        return proc.result

    @property
    def events_processed(self) -> int:
        return self._event_count

    def kernel_stats(self) -> dict:
        """Observability snapshot of the kernel fast paths."""
        stats = {
            "events_processed": self._event_count,
            "events_recycled": self._recycled,
            "timeout_pool": len(self._timeout_pool),
            "event_pool": len(self._event_pool),
            "callback_pool": len(self._cb_pool),
            "lane_depth": len(self._lane),
            "heap_depth": len(self._heap),
            "far_depth": self._far_len(),
            "scheduler": self.scheduler,
            "pooling": self._pooling,
        }
        if self._cal is not None:
            stats["calendar"] = self._cal.stats()
        return stats
