"""Deterministic random-number streams for reproducible experiments.

Every experiment in the paper reports averages of repeated runs; for a
simulation the equivalent discipline is *named substreams* derived from a
single root seed, so that (a) two runs with the same seed are bit-identical
and (b) adding a new consumer of randomness does not perturb existing ones.

Streams are ``numpy.random.Generator`` instances keyed by a string path,
seeded via ``SeedSequence`` spawning from the hash of the path.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, reproducible random streams.

    ::

        rngs = RngRegistry(seed=42)
        keygen = rngs.stream("workload/keys")
        jitter = rngs.stream("fabric/link-jitter")
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit digest of the name keeps streams independent of
            # creation order.
            digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.seed, digest])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry with a derived seed — for per-trial reseeding."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
