"""Counted resources, priority resources, stores, and containers.

These model contention points in the simulated cluster:

* :class:`Resource` — ``capacity`` identical servers with a FIFO queue.  NIC
  cores, CPU cores, and DMA engines are Resources.
* :class:`PriorityResource` — like Resource but the wait queue is ordered by
  a caller-supplied priority (lower first).
* :class:`Store` — an unbounded or bounded FIFO of Python objects with
  blocking ``get``.  RDMA work queues and request buffers are Stores.
* :class:`Container` — a continuous level (e.g. bytes of memory) with
  blocking ``put``/``get``.

Usage from a process::

    req = resource.request()
    yield req
    try:
        yield sim.timeout(service_time)
    finally:
        resource.release(req)

or the one-liner ``yield from resource.use(service_time)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Optional

from repro.simnet.core import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """``capacity`` interchangeable servers with FIFO admission."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Request] = deque()
        # Busy-time accounting for utilization meters.
        self._busy_integral = 0.0
        self._last_change = sim.now

    # -- accounting -----------------------------------------------------------
    def _note_change(self) -> None:
        now = self.sim.now
        self._busy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of in-use servers over time (server-seconds)."""
        self._note_change()
        return self._busy_integral

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy over ``[since, now]``."""
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.capacity)

    # -- slot-level API (no Request allocation; fabric fast paths) -------------
    def try_acquire(self) -> bool:
        """Claim a slot immediately if one is free; no Request, no event."""
        if self.in_use < self.capacity:
            self._note_change()
            self.in_use += 1
            return True
        return False

    def release_slot(self) -> None:
        """Release a slot claimed with :meth:`try_acquire`."""
        self._note_change()
        if self._queue:
            self._queue.popleft().succeed(self)
        else:
            self.in_use -= 1

    # -- API --------------------------------------------------------------------
    def request(self) -> Request:
        req = Request(self)
        if self.in_use < self.capacity:
            self._note_change()
            self.in_use += 1
            req.succeed(self)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if not req.triggered:
            # Cancelled while queued.
            try:
                self._queue.remove(req)
            except ValueError:
                raise SimulationError("releasing a request not held or queued")
            return
        self._note_change()
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(self)
            # in_use unchanged: slot handed over.
        else:
            self.in_use -= 1

    def use(self, duration: float):
        """Generator helper: acquire, hold for ``duration``, release.

        Uncontended holds skip the :class:`Request` allocation: the slot is
        claimed synchronously (exactly when ``request``'s immediate
        ``req.succeed`` would claim it) and a pooled zero-delay timeout
        stands in for the grant event.  The timeout schedules with the same
        ``(time, priority, seq)`` the grant would get, so same-instant
        ordering — and therefore every simulated result — is unchanged; only
        the allocations go away.  The release runs inline.
        """
        if self.in_use < self.capacity:
            self._note_change()
            self.in_use += 1
            yield self.sim.timeout(0.0)
            try:
                yield self.sim.timeout(duration)
            finally:
                self._note_change()
                if self._queue:
                    self._queue.popleft().succeed(self)
                else:
                    self.in_use -= 1
        else:
            req = self.request()
            yield req
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release(req)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Resource {self.name or id(self)} {self.in_use}/{self.capacity}"
            f" q={len(self._queue)}>"
        )


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._pqueue: list[tuple[float, int, Request]] = []
        self._pseq = 0

    def request(self, priority: float = 0.0) -> Request:  # type: ignore[override]
        req = Request(self)
        if self.in_use < self.capacity:
            self._note_change()
            self.in_use += 1
            req.succeed(self)
        else:
            self._pseq += 1
            heapq.heappush(self._pqueue, (priority, self._pseq, req))
        return req

    def release(self, req: Request) -> None:  # type: ignore[override]
        if not req.triggered:
            self._pqueue = [(p, s, r) for (p, s, r) in self._pqueue if r is not req]
            heapq.heapify(self._pqueue)
            return
        self._note_change()
        if self._pqueue:
            _p, _s, nxt = heapq.heappop(self._pqueue)
            nxt.succeed(self)
        else:
            self.in_use -= 1

    def release_slot(self) -> None:  # type: ignore[override]
        self._note_change()
        if self._pqueue:
            _p, _s, nxt = heapq.heappop(self._pqueue)
            nxt.succeed(self)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def use(self, duration: float, priority: float = 0.0):
        if self.in_use < self.capacity:
            self._note_change()
            self.in_use += 1
            yield self.sim.timeout(0.0)
            try:
                yield self.sim.timeout(duration)
            finally:
                self._note_change()
                if self._pqueue:
                    _p, _s, nxt = heapq.heappop(self._pqueue)
                    nxt.succeed(self)
                else:
                    self.in_use -= 1
        else:
            req = self.request(priority)
            yield req
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release(req)


class Store:
    """FIFO buffer of items with blocking ``get`` and optional bound on ``put``."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("Store capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        ev = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                putter, pitem = self._putters.popleft()
                self._items.append(pitem)
                putter.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: deliver/enqueue and return True, or False if full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                putter, pitem = self._putters.popleft()
                self._items.append(pitem)
                putter.succeed(None)
            return True, item
        return False, None

    def __len__(self) -> int:
        return len(self._items)


class Container:
    """A continuous quantity (bytes, tokens) with blocking put/get."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self.name = name
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()
        self.peak_level = init

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = self.sim.event()
        self._putters.append((ev, amount))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = self.sim.event()
        self._getters.append((ev, amount))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    self.peak_level = max(self.peak_level, self.level)
                    ev.succeed(None)
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    ev.succeed(None)
                    progressed = True
