"""Coroutine processes for the simulation kernel.

A process wraps a Python generator.  The generator ``yield``-s
:class:`~repro.simnet.core.Event` objects; the process registers itself as a
callback and is resumed with the event's value (or the event's exception is
thrown into the generator).  Sub-generators compose with ``yield from``.

A :class:`Process` is itself an :class:`Event` that fires when the generator
returns, carrying the generator's return value — so processes can wait on
each other by yielding them.

The resume path is the single hottest code in the simulator (one resume per
retired event in process-driven workloads), so it is aggressively flattened:
``gen.send``/``gen.throw`` are cached as bound methods, the callback object
is allocated once per process, and the per-event ``_resume`` inlines the
wait/registration logic instead of delegating.  ``interrupt`` is O(1): it
*tombstones* the wait (clears ``_waiting_on``) instead of scanning the
event's callback list; a stale wakeup is recognized and dropped by the
``_waiting_on is not event`` guard.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simnet.core import (
    _PENDING,
    _PROCESSED,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)

__all__ = ["Process"]


class Process(Event):
    """A running coroutine inside the simulator."""

    __slots__ = ("_gen", "_send", "_throw", "_resume_cb", "name", "_waiting_on")

    _counter = 0

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim)
        Process._counter += 1
        self._gen = generator
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self.name = name or f"proc-{Process._counter}"
        self._waiting_on: Optional[Event] = None
        # Kick off at current sim time via a scheduled callback so that
        # process startup stays ordered with other scheduled work (one seq
        # slot, exactly like the kick-off Event it replaces — but with no
        # Event allocation).
        sim.schedule_callback(self._start)

    def _start(self) -> None:
        self._step(None, None)

    # -- lifecycle -------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.triggered

    @property
    def result(self) -> Any:
        """Return value of the generator; raises its exception if it failed."""
        if not self.triggered:
            raise SimulationError(f"process {self.name!r} still running")
        if not self.ok:
            raise self.value
        return self.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time.

        O(1): the registered resume callback is left on the waited event as
        a tombstone — ``_resume`` drops the wakeup because ``_waiting_on``
        no longer points at that event.
        """
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._waiting_on is None:
            raise SimulationError(
                f"process {self.name!r} is not waiting; cannot interrupt"
            )
        self._waiting_on = None
        cause_exc = Interrupt(cause)
        self.sim.schedule_callback(lambda: self._step(None, cause_exc))

    # -- kernel plumbing ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Stale wakeup from a tombstoned wait (see interrupt)?  Drop it.
        if self._waiting_on is not event:
            return
        self._waiting_on = None
        # NOTE: this is _step() flattened into the callback — one frame per
        # retired event instead of three.  Keep the two in sync.
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return

        if isinstance(target, Event):
            if target._state != _PROCESSED:
                self._waiting_on = target
                # First waiter rides the event's fast slot; later waiters
                # overflow to the callbacks list (registration order kept).
                if target._wait is None and not target.callbacks:
                    target._wait = self
                else:
                    target.callbacks.append(self._resume_cb)
            else:
                self._kick(target)
        else:
            self._reject_yield(target)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is None:
                target = self._send(value)
            else:
                target = self._throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return

        if isinstance(target, Event):
            if target._state != _PROCESSED:
                self._waiting_on = target
                if target._wait is None and not target.callbacks:
                    target._wait = self
                else:
                    target.callbacks.append(self._resume_cb)
            else:
                self._kick(target)
        else:
            self._reject_yield(target)

    def _kick(self, target: Event) -> None:
        # Already-fired event: reschedule resume immediately to preserve
        # cooperative fairness (avoid deep recursion on hot loops).  The
        # _waiting_on guard in _resume keeps an interleaved interrupt()
        # from double-resuming.
        self._waiting_on = target
        self.sim.schedule_callback(lambda: self._resume(target))

    def _reject_yield(self, target: Any) -> None:
        error = SimulationError(
            f"process {self.name!r} yielded {type(target).__name__}, "
            "expected an Event"
        )
        try:
            self._throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as err:
            self.fail(err)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"
