"""Coroutine processes for the simulation kernel.

A process wraps a Python generator.  The generator ``yield``-s
:class:`~repro.simnet.core.Event` objects; the process registers itself as a
callback and is resumed with the event's value (or the event's exception is
thrown into the generator).  Sub-generators compose with ``yield from``.

A :class:`Process` is itself an :class:`Event` that fires when the generator
returns, carrying the generator's return value — so processes can wait on
each other by yielding them.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simnet.core import Event, Interrupt, SimulationError, Simulator

__all__ = ["Process"]


class Process(Event):
    """A running coroutine inside the simulator."""

    __slots__ = ("_gen", "name", "_waiting_on")

    _counter = 0

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim)
        Process._counter += 1
        self._gen = generator
        self.name = name or f"proc-{Process._counter}"
        self._waiting_on: Optional[Event] = None
        # Kick off at current sim time via an immediate event so that process
        # startup is ordered with other scheduled work.
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed(None)

    # -- lifecycle -------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.triggered

    @property
    def result(self) -> Any:
        """Return value of the generator; raises its exception if it failed."""
        if not self.triggered:
            raise SimulationError(f"process {self.name!r} still running")
        if not self.ok:
            raise self.value
        return self.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is None:
            raise SimulationError(
                f"process {self.name!r} is not waiting; cannot interrupt"
            )
        # Detach from the event we were waiting on and schedule the throw.
        try:
            target.callbacks.remove(self._resume)
        except ValueError:
            pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.add_callback(lambda ev: self._step(None, Interrupt(cause)))
        kick.succeed(None)

    # -- kernel plumbing ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is None:
                target = self._gen.send(value)
            else:
                target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
            try:
                self._gen.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as err:
                self.fail(err)
            return

        if target.processed:
            # Already-fired event: reschedule resume immediately to preserve
            # cooperative fairness (avoid deep recursion on hot loops).  The
            # guard keeps an interleaved interrupt() from double-resuming.
            self._waiting_on = target
            kick = Event(self.sim)
            kick.add_callback(
                lambda ev: self._resume(target) if self._waiting_on is target else None
            )
            kick.succeed(None)
        else:
            self._waiting_on = target
            target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"
