"""Synchronization primitives built on the event kernel.

These model coordination *inside the simulation* — e.g. the per-memory-region
serialization of RDMA atomic operations (a :class:`SimLock`), or the bulk-
synchronous barriers that the BCL baseline needs and HCL avoids.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.simnet.core import Event, SimulationError, Simulator

__all__ = ["SimLock", "Semaphore", "Barrier", "Signal"]


class SimLock:
    """A mutex for simulated processes.  FIFO fairness.

    ::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()
        self.contended_acquires = 0
        self.total_acquires = 0

    def acquire(self) -> Event:
        ev = self.sim.event()
        self.total_acquires += 1
        if not self._locked:
            self._locked = True
            ev.succeed(None)
        else:
            self.contended_acquires += 1
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take the lock immediately if free; no event allocation."""
        if self._locked:
            return False
        self._locked = True
        self.total_acquires += 1
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked SimLock {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._locked = False

    @property
    def locked(self) -> bool:
        return self._locked

    def holding(self, duration: float):
        """Generator helper: acquire, hold ``duration``, release."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Semaphore:
    """Counting semaphore."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = ""):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self._value > 0:
            self._value -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._value += 1

    @property
    def value(self) -> int:
        return self._value


class Barrier:
    """Reusable barrier for a fixed party count.

    ``wait()`` returns an event that fires when all parties have arrived.
    The barrier resets automatically for the next round.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._arrived: list[Event] = []
        self.generation = 0

    def wait(self) -> Event:
        ev = self.sim.event()
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            batch, self._arrived = self._arrived, []
            self.generation += 1
            gen = self.generation
            for waiter in batch:
                waiter.succeed(gen)
        return ev


class Signal:
    """A broadcast condition: many waiters, one ``fire`` wakes them all.

    Unlike a bare Event, a Signal is reusable: each ``wait()`` gets a fresh
    event attached to the *current* generation.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self.fire_count = 0

    def wait(self) -> Event:
        ev = self.sim.event()
        self._waiters.append(ev)
        return ev

    def fire(self, value=None) -> int:
        """Wake all current waiters; returns how many were woken."""
        batch, self._waiters = self._waiters, []
        self.fire_count += 1
        for waiter in batch:
            waiter.succeed(value)
        return len(batch)
