"""Wall-clock A/B benchmark of the transparent op-coalescing buffers.

The DES spends wall time in proportion to the kernel events it retires,
and every remote invocation costs a fixed event cascade (request timeout,
resource grants, response timeout).  Destination-coalescing therefore
shows up directly as wall-clock speedup: N buffered ops ride ONE batch
invocation instead of N.  This harness runs the Fig-7 application kernels
(k-mer counting, contig generation, ISx) with aggregation off and across
a sweep of buffer sizes, and records wall time, sim time, app-ops/sec and
the coalescer/cache counters into ``BENCH_agg.json``.

Used by ``python -m repro.cli aggbench`` and the CI benchmark smoke job
(which asserts that the aggregated contig run beats the unaggregated one
at ``--scale 0.25``).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusterSpec, ares_like

__all__ = [
    "AggBenchRow",
    "AggBenchReport",
    "run_agg_bench",
    "emit_agg_json",
    "AGG_SWEEP",
    "BENCH_APPS",
]

#: Buffer sizes swept against the unaggregated (0) baseline.
AGG_SWEEP: Tuple[int, ...] = (0, 8, 64, 512)

#: Apps benchmarked, in run order.
BENCH_APPS: Tuple[str, ...] = ("kmer", "contig", "isx")


@dataclass
class AggBenchRow:
    """One (app, buffer-size) measurement."""

    app: str
    aggregation: int
    read_cache: bool
    ops: int  # app-level operations (k-mers merged / keys scattered)
    sim_seconds: float
    wall_seconds: Optional[float]  # None in --sim-only mode
    ops_per_sec: Optional[float]   # app ops per wall second
    verified: bool
    agg: Optional[Dict] = None     # coalescer/cache counters (aggregated runs)


@dataclass
class AggBenchReport:
    scale: float
    nodes: int
    procs_per_node: int
    sweep: List[int]
    sim_only: bool
    rows: List[AggBenchRow] = field(default_factory=list)

    def baseline(self, app: str) -> Optional[AggBenchRow]:
        for row in self.rows:
            if row.app == app and row.aggregation == 0:
                return row
        return None

    def best_aggregated(self, app: str) -> Optional[AggBenchRow]:
        """The aggregated row with the lowest time (wall, or sim in
        ``sim_only`` mode) for ``app``."""
        agg_rows = [r for r in self.rows
                    if r.app == app and r.aggregation > 0]
        if not agg_rows:
            return None
        key = ((lambda r: r.sim_seconds) if self.sim_only
               else (lambda r: r.wall_seconds))
        return min(agg_rows, key=key)

    def speedups(self) -> Dict[str, Dict[str, float]]:
        """Per-app best-aggregated-vs-baseline speedups."""
        out: Dict[str, Dict[str, float]] = {}
        for app in dict.fromkeys(r.app for r in self.rows):
            base, best = self.baseline(app), self.best_aggregated(app)
            if base is None or best is None:
                continue
            entry = {
                "aggregation": best.aggregation,
                "sim_speedup": base.sim_seconds / best.sim_seconds,
            }
            if not self.sim_only:
                entry["wall_speedup"] = base.wall_seconds / best.wall_seconds
            out[app] = entry
        return out

    def table_rows(self) -> List[List]:
        out: List[List] = []
        for row in self.rows:
            agg = (row.agg or {}).get("aggregation", {})
            cache = (row.agg or {}).get("read_cache", {})
            out.append([
                row.app,
                row.aggregation or "off",
                f"{row.sim_seconds:.6f}",
                "-" if row.wall_seconds is None else f"{row.wall_seconds:.3f}",
                "-" if row.ops_per_sec is None else f"{row.ops_per_sec:,.0f}",
                f"{agg.get('ops_per_flush', 0):.1f}" if agg else "-",
                f"{cache.get('hit_rate', 0):.2f}" if cache else "-",
            ])
        return out

    def check(self, apps: Sequence[str] = ("contig", "kmer"),
              min_speedup: float = 1.0) -> List[str]:
        """Failures (empty when every checked app cleared ``min_speedup``).

        The comparison metric is wall time (sim time in ``sim_only`` mode):
        the acceptance bar for this optimization is real elapsed time, not
        just the modeled timeline.
        """
        failures: List[str] = []
        speedups = self.speedups()
        metric = "sim_speedup" if self.sim_only else "wall_speedup"
        for app in apps:
            entry = speedups.get(app)
            if entry is None:
                failures.append(f"{app}: no measurement")
                continue
            if entry[metric] < min_speedup:
                failures.append(
                    f"{app}: {metric}={entry[metric]:.2f}x "
                    f"< required {min_speedup:.2f}x"
                )
        for row in self.rows:
            if not row.verified:
                failures.append(
                    f"{row.app} agg={row.aggregation}: verification failed"
                )
        return failures


def _run_app(app: str, spec: ClusterSpec, scale: float, aggregation: int,
             instrument=None, batch_charge: bool = False,
             container_sim_only: bool = False):
    """Run one HCL app once; returns (ops, sim_seconds, verified, agg).

    ``batch_charge`` and ``container_sim_only`` thread the container fast
    modes through to the apps.  Contig never gets ``container_sim_only``
    (its traversal reads stored values back), so sim-only sweeps keep it
    on real data.
    """
    from repro.apps import (
        run_contig_generation, run_isx, run_kmer_counting, synthesize_genome,
    )

    def sc(n: float) -> int:
        return max(1, round(n * scale))

    if app == "isx":
        res = run_isx("hcl", spec, keys_per_rank=sc(192),
                      aggregation=aggregation, instrument=instrument,
                      batch_charge=batch_charge, sim_only=container_sim_only)
        return res.total_keys, res.time_seconds, res.verified, res.agg_report
    data = synthesize_genome(
        genome_length=sc(600 * spec.nodes), num_reads=sc(48 * spec.nodes),
        read_length=60, k=15, seed=spec.nodes,
    )
    if app == "kmer":
        res = run_kmer_counting("hcl", spec, data, aggregation=aggregation,
                                instrument=instrument,
                                batch_charge=batch_charge,
                                sim_only=container_sim_only)
        return res.total_kmers, res.time_seconds, res.verified, res.agg_report
    if app == "contig":
        res = run_contig_generation(
            "hcl", spec, data, aggregation=aggregation,
            read_cache=bool(aggregation), instrument=instrument,
            batch_charge=batch_charge,
        )
        ops = sum(max(0, len(r) - data.k + 1) for r in data.reads)
        return ops, res.time_seconds, res.verified, res.agg_report
    raise ValueError(f"unknown app {app!r}")


def run_agg_bench(
    scale: float = 1.0,
    nodes: int = 4,
    procs_per_node: int = 3,
    sweep: Sequence[int] = AGG_SWEEP,
    apps: Sequence[str] = BENCH_APPS,
    repeats: int = 2,
    sim_only: bool = False,
    trace: bool = False,
    collector: Optional[List[Tuple[str, object]]] = None,
    batch_charge: bool = False,
    container_sim_only: bool = False,
) -> AggBenchReport:
    """Sweep aggregation buffer sizes over the Fig-7 apps.

    Wall time takes the best of ``repeats`` runs (wall clock is noisy; sim
    time and the coalescer counters are deterministic and identical across
    repeats).  ``sim_only`` drops the wall-clock fields entirely so the
    emitted JSON is bit-reproducible for the CI determinism diff.

    ``batch_charge`` turns on fused closed-form charging of uncontended
    coalescer flushes; every row still verifies its application results.
    ``container_sim_only`` runs isx/kmer in the containers' timing-only
    mode (stubbed opaque payloads, cheap invariant verification) — the
    simulated timelines are bit-identical to full-data runs, so neither
    flag is recorded in the report: a ``container_sim_only`` sweep must
    byte-diff clean against a full-data sweep in ``sim_only`` JSON mode.
    (``batch_charge`` rows DO shift ``sim_seconds`` — fused charging is
    semantically equivalent, not event-identical, under contention.)

    Observability: pass a list as ``collector`` to receive one
    ``(label, sim)`` pair per (app, aggregation) combination — the CLI
    exports span logs and metrics snapshots from those simulators.
    ``trace=True`` additionally installs a span tracer on each collected
    run.  Both leave the report's content untouched: traced and untraced
    sweeps emit bit-identical ``BENCH_agg.json`` in ``sim_only`` mode.
    """
    report = AggBenchReport(scale, nodes, procs_per_node, list(sweep),
                            sim_only)
    for app in apps:
        for aggregation in sweep:
            best_wall: Optional[float] = None
            collected = False
            for _ in range(max(1, repeats) if not sim_only else 1):
                spec = ares_like(nodes=nodes, procs_per_node=procs_per_node)
                instrument = None
                if collector is not None and not collected:
                    sim_box: Dict[str, object] = {}

                    def instrument(hcl, box=sim_box):
                        box["sim"] = hcl.sim
                        if trace:
                            from repro.obs import install_tracer

                            install_tracer(hcl.sim)
                t0 = time.perf_counter()
                ops, sim_s, verified, agg = _run_app(
                    app, spec, scale, aggregation, instrument,
                    batch_charge=batch_charge,
                    container_sim_only=container_sim_only,
                )
                wall = time.perf_counter() - t0
                if instrument is not None and "sim" in sim_box:
                    collector.append(
                        (f"{app}-agg{aggregation}", sim_box["sim"])
                    )
                    collected = True
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            report.rows.append(AggBenchRow(
                app=app,
                aggregation=aggregation,
                read_cache=bool(aggregation) and app == "contig",
                ops=ops,
                sim_seconds=sim_s,
                wall_seconds=None if sim_only else best_wall,
                ops_per_sec=None if sim_only else ops / best_wall,
                verified=verified,
                agg=agg,
            ))
    return report


def emit_agg_json(report: AggBenchReport, path: str = "BENCH_agg.json") -> str:
    """Write the sweep + speedup summary next to the repo for CI diffing."""
    payload = {
        "benchmark": "aggregation_sweep",
        "speedups": report.speedups(),
        **asdict(report),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
