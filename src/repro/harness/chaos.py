"""Chaos soak: paper workloads under a seeded fault plan, with an
acked-write ledger.

The harness drives scaled-down versions of the Fig-7 application kernels
(ISx-style keyed inserts + contig-gen-style k-mer counting) against
replicated HCL maps while a :class:`~repro.fabric.faults.FaultInjector`
drops, delays and duplicates messages, crashes nodes and partitions the
switch.  Every write a rank process sees *acknowledged* is recorded; after
the storm the injector heals the cluster, queued write replays drain, and a
verification pass reads every acked key back from the (restored) primaries.

The invariant under test is the reliability contract of the hardened RPC +
failover stack: **no acknowledged write is ever lost, and no retried or
duplicated mutation is applied twice** (counts stay exact up to operations
whose ack was lost, which are tracked separately as *indeterminate*).
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, Optional

from repro.config import RetryPolicy, ares_like
from repro.core.hash_container import stable_hash
from repro.core.runtime import HCL
from repro.fabric.faults import PLAN_NAMES, make_plan
from repro.fabric.topology import Cluster
from repro.obs.registry import percentile_summary, registry_of

__all__ = ["run_chaos_soak", "SOAK_PLANS"]

#: plans the CI fault matrix runs (``calm`` is excluded: it injects nothing
#: by design, so the nonzero-faults assertion would reject it)
SOAK_PLANS = tuple(p for p in PLAN_NAMES if p != "calm")

#: backwards-compatible alias — the crc32 hash this harness always used is
#: now the container-level default (``repro.core.hash_container.stable_hash``)
_stable_hash = stable_hash


def _soak_retry_policy() -> RetryPolicy:
    """A deliberately *modest* budget: enough retransmissions to ride out
    packet loss and short partitions, small enough that a crashed primary
    exhausts it and exercises the write-failover path."""
    return RetryPolicy(
        timeout=50e-6,
        max_retries=5,
        backoff_base=10e-6,
        backoff_factor=2.0,
        backoff_max=120e-6,
    )


def run_chaos_soak(
    plan: str = "mixed",
    seed: int = 0,
    nodes: int = 3,
    procs_per_node: int = 2,
    keys_per_rank: int = 24,
    kmers_per_rank: int = 16,
    horizon: float = 2e-3,
    retry: Optional[RetryPolicy] = None,
    aggregation: int = 0,
    instrument=None,
    windows=None,
) -> Dict:
    """Run one seeded chaos soak; returns the metrics/verdict report dict.

    ``report["ok"]`` is True iff no acked write was lost, no mutation was
    double-applied, and the injector actually injected something.

    ``aggregation`` > 0 routes the upsert phase through the transparent
    write-combining buffers (flushed at phase end) and enables the
    epoch-validated read cache on the counts map.  The ack ledger then
    tracks whole flushes: a clean flush acks every buffered increment, a
    flush that exhausts failover moves everything still unsettled to
    *indeterminate* (conservative — the verification ceiling absorbs it).
    The verification pass additionally re-reads every k-mer through the
    cache and cross-checks each result against the authoritative partition
    state, asserting that no cached read is ever stale.

    ``instrument`` is invoked with the :class:`HCL` runtime after the
    containers are built but before the storm — the attach point for span
    tracers (``install_tracer(h.sim)``) and telemetry samplers.

    ``windows`` arms per-(node, partition) AIMD congestion windows on every
    client (``True`` for defaults, or a
    :class:`~repro.rpc.window.WindowConfig`).  Under a fault storm the
    windows must *shrink* (multiplicative decrease on failures), never
    deadlock — the floor of 1 guarantees progress — and the exactly-once
    ledger checks are unchanged: no acked write may be lost.
    """
    import random

    spec = ares_like(nodes=nodes, procs_per_node=procs_per_node, seed=seed)
    spec = spec.scaled(
        cost=replace(spec.cost, retry=retry or _soak_retry_policy())
    )
    cluster = Cluster(spec)
    injector = cluster.install_faults(make_plan(plan, nodes, horizon=horizon))
    h = HCL(cluster, window=windows)
    keys = h.unordered_map(
        "soak_keys", replication=1, write_failover=True, hash_fn=_stable_hash
    )
    counts = h.unordered_map(
        "soak_counts", replication=1, write_failover=True,
        hash_fn=_stable_hash, aggregation=aggregation,
        read_cache=bool(aggregation),
    )
    if instrument is not None:
        instrument(h)

    nranks = spec.total_procs
    #: (rank, i) -> bucket value, recorded only after the insert's ack
    acked_inserts: Dict = {}
    failed_writes = [0]
    #: kmer -> number of *acknowledged* upserts
    acked_counts: Dict[str, int] = {}
    #: kmer -> upserts whose ack was lost (may or may not have applied)
    indeterminate: Dict[str, int] = {}
    kmer_space = max(8, nranks * kmers_per_rank // 4)  # force collisions

    def rank_body(rank: int):
        rng = random.Random((seed << 16) ^ rank)
        # -- phase 1: ISx-style keyed inserts (idempotent payloads) --------
        for i in range(keys_per_rank):
            bucket = rng.randrange(1 << 20)
            try:
                yield from keys.insert(rank, (rank, i), bucket)
            except ConnectionError:
                failed_writes[0] += 1
                continue
            acked_inserts[(rank, i)] = bucket
        # -- phase 2: contig-gen-style k-mer counting (upserts) ------------
        pending: Dict[str, int] = {}

        def settle(ok: bool) -> None:
            ledger = acked_counts if ok else indeterminate
            for k, n in pending.items():
                ledger[k] = ledger.get(k, 0) + n
            pending.clear()

        for _ in range(kmers_per_rank):
            kmer = f"k{rng.randrange(kmer_space)}"
            if aggregation:
                # Buffered increments stay *pending* until their flush is
                # acknowledged; the commutative delta makes the batched
                # apply order irrelevant.
                yield from counts.upsert_buffered(rank, kmer, 1)
                pending[kmer] = pending.get(kmer, 0) + 1
                continue
            try:
                yield from counts.upsert(rank, kmer, 1)
            except ConnectionError:
                # The ack was lost: the increment may or may not have
                # landed.  Exactly-once is only claimed for *acked* writes.
                indeterminate[kmer] = indeterminate.get(kmer, 0) + 1
                failed_writes[0] += 1
                continue
            acked_counts[kmer] = acked_counts.get(kmer, 0) + 1
        if aggregation:
            # Drain the buffers.  A failed flush batch may or may not have
            # applied (it can ack at the primary and lose the reply, or
            # land on a replica mid-failover) — conservatively demote every
            # unsettled increment to indeterminate and keep draining the
            # remaining in-flight flushes.
            for _attempt in range(8):
                try:
                    yield from counts.flush(rank)
                except ConnectionError:
                    failed_writes[0] += 1
                    settle(False)
                    continue
                settle(True)
                break
            else:
                settle(False)

    h.run_ranks(rank_body, ranks=range(nranks))
    storm_time = h.now

    # After the storm: restore every node (firing replay hooks) and let the
    # queued write replays drain onto the restarted primaries.
    injector.heal()
    cluster.run()

    # -- verification pass: read every acked key back from the primary -----
    lost = []
    overcounted = []
    verified = [0]
    stale_reads = []

    def authoritative(kmer):
        """Ground truth straight out of the owning partition's structure."""
        value, found, _stats = counts.partition_for(kmer).structure.find(kmer)
        return (value if found else None, bool(found))

    def verify_body(rank: int):
        for key, expect in sorted(acked_inserts.items()):
            value, found = yield from keys.find(rank, key)
            if not found or value != expect:
                lost.append(["insert", list(key), expect,
                             value if found else None])
            verified[0] += 1
        for kmer in sorted(set(acked_counts) | set(indeterminate)):
            value, found = yield from counts.find(rank, kmer)
            have = value if found else 0
            floor = acked_counts.get(kmer, 0)
            ceiling = floor + indeterminate.get(kmer, 0)
            if have < floor:
                lost.append(["upsert", kmer, floor, have])
            elif have > ceiling:
                overcounted.append(["upsert", kmer, ceiling, have])
            verified[0] += 1
            if counts._cache is not None:
                # Never-stale contract: the first find above primed the
                # epoch-validated cache; a repeat read (cache-hit eligible)
                # must still agree with the partition's own state.
                again = yield from counts.find(rank, kmer)
                truth = authoritative(kmer)
                if again != truth:
                    stale_reads.append([kmer, list(again), list(truth)])

    h.run_ranks(verify_body, ranks=range(1))

    # The per-client / per-server counters all live in the simulator's
    # metrics registry now; the fleet rollups below are registry sums, so
    # the report sees exactly what any other observability consumer sees.
    metrics = registry_of(h.sim)
    acked_total = len(acked_inserts) + sum(acked_counts.values())
    cwnd_final = {}
    if windows:
        for client in h._clients.values():
            if client.windows is not None:
                cwnd_final.update(client.windows.snapshot())
    report = {
        "plan": plan,
        "seed": seed,
        "nodes": nodes,
        "procs_per_node": procs_per_node,
        "windows": bool(windows),
        "window_stalls": int(metrics.counter("rpc/window_stalls").value),
        "window_sheds": int(metrics.counter("rpc/window_sheds").value),
        "cwnd_final": cwnd_final,
        "cwnd_min_final": min(cwnd_final.values()) if cwnd_final else None,
        "sim_time_storm": storm_time,
        "sim_time_total": h.now,
        "injected": injector.counters(),
        "injected_total": injector.injected_total(),
        "rpc": {
            "invocations": int(metrics.sum_matching("/invocations", "rpcc")),
            "retries": int(metrics.sum_matching("/retries", "rpcc")),
            "timeouts": int(metrics.sum_matching("/timeouts", "rpcc")),
            "exhausted": int(metrics.sum_matching("/exhausted", "rpcc")),
            "duplicates_suppressed": int(
                metrics.sum_matching("/dups_suppressed", "rpc")
            ),
            # Cluster-wide client latency distribution: the per-node
            # rpcc*/latency fleet folded through the shared quantile path.
            "latency": percentile_summary(
                metrics.merged_histogram("/latency", "rpcc")
            ),
        },
        "failover": {
            "reads": int(keys.failover_reads.value
                         + counts.failover_reads.value),
            "writes": int(keys.failover_writes.value
                          + counts.failover_writes.value),
            "replayed": int(keys.replayed_writes.value
                            + counts.replayed_writes.value),
        },
        "acked_writes": acked_total,
        "failed_writes": failed_writes[0],
        "indeterminate_writes": int(sum(indeterminate.values())),
        "verified_reads": verified[0],
        "lost_acked_writes": len(lost),
        "duplicate_mutations": len(overcounted),
        "lost_detail": lost[:16],
        "overcount_detail": overcounted[:16],
        "aggregation": counts.aggregation_report() if aggregation else None,
        "stale_cached_reads": len(stale_reads),
        "stale_detail": stale_reads[:16],
        # Deterministic registry snapshot: every hidden counter the soak
        # touched (fault injections, per-node RPC fleets, per-container
        # failover/replay/coalescer activity, switch transits).
        "metrics": metrics.snapshot(
            prefixes=("faults", "rpc", "soak_counts", "soak_keys", "switch")
        ),
    }
    report["ok"] = (
        not lost
        and not overcounted
        and not stale_reads
        and acked_total > 0
        # the calm plan is the armed-but-quiet control: zero injections is
        # its expected outcome, not a failed experiment
        and (plan == "calm" or report["injected_total"] > 0)
    )
    h.close()
    return report


def render_report(report: Dict) -> str:
    """One-paragraph human summary of a soak report."""
    inj = report["injected"]
    lines = [
        f"chaos-soak plan={report['plan']} seed={report['seed']} "
        f"nodes={report['nodes']}x{report['procs_per_node']}",
        f"  injected: {report['injected_total']} "
        f"(drops={inj['drops']} dups={inj['dups']} delays={inj['delays']} "
        f"crashes={inj['crashes']} partition_drops={inj['partition_drops']})",
        f"  rpc: {report['rpc']['invocations']} invocations, "
        f"{report['rpc']['retries']} retries, "
        f"{report['rpc']['exhausted']} exhausted, "
        f"{report['rpc']['duplicates_suppressed']} duplicates suppressed",
        f"  failover: {report['failover']['writes']} writes, "
        f"{report['failover']['reads']} reads, "
        f"{report['failover']['replayed']} replayed",
        f"  writes: {report['acked_writes']} acked, "
        f"{report['failed_writes']} failed, "
        f"{report['indeterminate_writes']} indeterminate",
        f"  verdict: lost_acked={report['lost_acked_writes']} "
        f"double_applied={report['duplicate_mutations']} "
        f"stale_cached={report.get('stale_cached_reads', 0)} "
        f"=> {'OK' if report['ok'] else 'FAIL'}",
    ]
    agg = report.get("aggregation")
    if agg:
        lines.insert(-1, (
            f"  aggregation: {agg['aggregation']['flushes']} flushes, "
            f"{agg['aggregation']['flushed_ops']} ops coalesced, "
            f"cache hits={agg['read_cache']['hits']}"
        ))
    metrics = report.get("metrics")
    if metrics:
        lines.insert(-1, (
            f"  registry: {len(metrics)} series "
            f"(switch transits={int(metrics.get('switch/transits', 0))}, "
            f"node restarts={int(metrics.get('faults/restarts', 0))})"
        ))
    return "\n".join(lines)


def emit_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
