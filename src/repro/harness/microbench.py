"""OSU-style microbenchmarks of the simulated fabric.

The paper quotes two calibration numbers for its testbed: "the average
network performance between two nodes in Ares cluster is approximately
4.5 GB/s as measured by the OSU network benchmark" and "the memory
performance of an Ares node using Stream benchmark using 40 threads is
roughly 65 GB/sec".  This module measures the same quantities *from inside
the simulation* — latency, uni-directional bandwidth, message rate, atomic
rate, RPC null-latency, and STREAM-like memory bandwidth — so the cost
model's calibration is observable evidence, not configuration trivia.

Used by ``python -m repro.cli microbench`` and the calibration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterSpec, MB, ares_like
from repro.fabric import Cluster

__all__ = ["MicrobenchReport", "run_microbench"]


@dataclass
class MicrobenchReport:
    """Measured fabric characteristics (simulated)."""

    verb_latency_us: float  # 8-byte RDMA write round-trip-ish one-way
    read_latency_us: float  # 8-byte RDMA read (full round trip)
    cas_latency_us: float  # remote atomic
    bandwidth_gbs: float  # 1 MB writes, streaming
    message_rate_mops: float  # 8-byte writes, pipelined
    atomic_rate_mops: float  # pipelined CAS to one region
    rpc_null_latency_us: float  # empty RPC invoke -> response
    stream_gbs: float  # node-local memory bandwidth

    def rows(self):
        return [
            ["one-way write latency (8 B)", f"{self.verb_latency_us:.2f} us"],
            ["read latency (8 B)", f"{self.read_latency_us:.2f} us"],
            ["atomic CAS latency", f"{self.cas_latency_us:.2f} us"],
            ["streaming bandwidth (1 MB)", f"{self.bandwidth_gbs:.2f} GB/s"],
            ["message rate (8 B)", f"{self.message_rate_mops:.2f} Mops/s"],
            ["atomic rate", f"{self.atomic_rate_mops:.2f} Mops/s"],
            ["RPC null latency", f"{self.rpc_null_latency_us:.2f} us"],
            ["STREAM memory bandwidth", f"{self.stream_gbs:.1f} GB/s"],
        ]


def _fresh(spec: ClusterSpec, provider: str) -> Cluster:
    cluster = Cluster(spec, provider=provider)
    cluster.node(1).register_region("mb", 16 * MB)
    return cluster


def run_microbench(spec: ClusterSpec = None,
                   provider: str = "roce") -> MicrobenchReport:
    """Measure the fabric; ~a dozen tiny simulations."""
    spec = spec or ares_like(nodes=2, procs_per_node=4)

    # -- point latencies (single op on an idle fabric) ---------------------
    def one(op_builder) -> float:
        cluster = _fresh(spec, provider)
        qp = cluster.qp(0)
        cluster.sim.run_process(op_builder(qp))
        return cluster.sim.now

    write_lat = one(lambda qp: qp.rdma_write(1, "mb", 0, None, 8))
    read_lat = one(lambda qp: qp.rdma_read(1, "mb", 0, 8))
    cas_lat = one(lambda qp: qp.cas(1, "mb", 0, 0, 1))

    # -- streaming bandwidth ------------------------------------------------
    cluster = _fresh(spec, provider)
    qp = cluster.qp(0)
    n, size = 64, 1 * MB

    def stream():
        from repro.fabric.cq import QueuePairAsync

        aqp = QueuePairAsync(qp)
        for i in range(n):
            aqp.post(qp.rdma_write(1, "mb", 0, None, size))
        yield from aqp.flush()

    cluster.sim.run_process(stream())
    bandwidth = n * size / cluster.sim.now / (1 << 30)

    # -- message rate ------------------------------------------------------------
    cluster = _fresh(spec, provider)
    qp = cluster.qp(0)
    m = 512

    def pepper():
        from repro.fabric.cq import QueuePairAsync

        aqp = QueuePairAsync(qp)
        for i in range(m):
            aqp.post(qp.rdma_write(1, "mb", i * 8, None, 8))
        yield from aqp.flush()

    cluster.sim.run_process(pepper())
    message_rate = m / cluster.sim.now / 1e6

    # -- atomic rate (serializes on the region lock) ------------------------------
    cluster = _fresh(spec, provider)
    qp = cluster.qp(0)

    def atomics():
        from repro.fabric.cq import QueuePairAsync

        aqp = QueuePairAsync(qp)
        for i in range(m):
            aqp.post(qp.fetch_add(1, "mb", 0, 1))
        yield from aqp.flush()

    cluster.sim.run_process(atomics())
    atomic_rate = m / cluster.sim.now / 1e6

    # -- RPC null latency -------------------------------------------------------------
    from repro.rpc import RpcClient, RpcServer

    cluster = Cluster(spec, provider=provider)
    servers = {i: RpcServer(cluster.node(i)) for i in range(2)}
    servers[1].bind("null", lambda ctx: None)
    client = RpcClient(cluster, 0, servers)

    def null_rpc():
        yield from client.call(1, "null")

    cluster.sim.run_process(null_rpc())
    rpc_lat = cluster.sim.now

    # -- STREAM (node-local copies through the memory bus) ------------------------------
    cluster = Cluster(spec, provider=provider)
    node = cluster.node(0)
    chunk = 4 * MB
    rounds = 32

    def stream_local():
        for _ in range(rounds):
            yield from node.local_copy(chunk)

    cluster.sim.run_process(stream_local())
    stream_bw = rounds * chunk / cluster.sim.now / (1 << 30)

    return MicrobenchReport(
        verb_latency_us=write_lat * 1e6,
        read_latency_us=read_lat * 1e6,
        cas_latency_us=cas_lat * 1e6,
        bandwidth_gbs=bandwidth,
        message_rate_mops=message_rate,
        atomic_rate_mops=atomic_rate,
        rpc_null_latency_us=rpc_lat * 1e6,
        stream_gbs=stream_bw,
    )
