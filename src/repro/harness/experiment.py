"""Experiment runner utilities.

An experiment run yields an :class:`ExperimentResult` with the simulated
elapsed time and derived metrics; :func:`run_trials` repeats a factory-built
experiment with reseeded RNGs and averages, mirroring the paper's "executed
each test ten times, and we report the average" (scaled down by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.simnet.stats import summarize

__all__ = ["ExperimentResult", "run_trials", "throughput"]


@dataclass
class ExperimentResult:
    """Outcome of a single experiment run."""

    name: str
    elapsed: float  # simulated seconds
    total_ops: int = 0
    total_bytes: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.total_ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mb_per_second(self) -> float:
        return self.total_bytes / self.elapsed / 2**20 if self.elapsed > 0 else 0.0


def throughput(total_ops: int, elapsed: float) -> float:
    return total_ops / elapsed if elapsed > 0 else 0.0


def run_trials(
    factory: Callable[[int], ExperimentResult],
    trials: int = 3,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run ``factory(seed)`` ``trials`` times; return the averaged result."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    results: List[ExperimentResult] = [
        factory(base_seed + t) for t in range(trials)
    ]
    elapsed = summarize([r.elapsed for r in results])
    avg = ExperimentResult(
        name=results[0].name,
        elapsed=elapsed["mean"],
        total_ops=int(sum(r.total_ops for r in results) / trials),
        total_bytes=int(sum(r.total_bytes for r in results) / trials),
    )
    avg.extra["elapsed_stdev"] = elapsed["stdev"]
    avg.extra["trials"] = trials
    # Average any shared extra metrics.
    keys = set.intersection(*(set(r.extra) for r in results)) if results else set()
    for key in keys:
        avg.extra[key] = sum(r.extra[key] for r in results) / trials
    return avg
