"""Synthetic workload building blocks.

The paper's synthetic benchmarks issue fixed-size operations against
containers ("8192 operations of 64KB size", "operation size from 4KB to
8MB").  :class:`Blob` is the sized-but-cheap payload: the simulation charges
its ``nbytes`` without materializing megabytes per op.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.serialization.databox import register_custom_type

__all__ = ["Blob", "key_stream", "WorkloadSpec"]


class Blob:
    """A payload of a declared size.

    ``estimate_size`` in the serialization layer reads ``nbytes``; equality
    and hashing are by (size, tag) so finds can verify round-trips.
    """

    __slots__ = ("nbytes", "tag")

    def __init__(self, nbytes: int, tag: int = 0):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.nbytes = nbytes
        self.tag = tag

    def __eq__(self, other):
        return (
            isinstance(other, Blob)
            and other.nbytes == self.nbytes
            and other.tag == self.tag
        )

    def __hash__(self):
        return hash((self.nbytes, self.tag))

    def __repr__(self):  # pragma: no cover
        return f"Blob({self.nbytes}, tag={self.tag})"


# Blobs ride the DataBox custom-type path (persistence logs encode the op
# arguments); contents are synthetic, so only the shape is stored.
register_custom_type(
    Blob,
    lambda b: struct.pack("<qq", b.nbytes, b.tag),
    lambda raw: Blob(*struct.unpack("<qq", raw)),
)


def key_stream(rank: int, count: int, seed: int = 0,
               key_space: int = 1 << 30) -> Iterator[int]:
    """Deterministic per-rank stream of integer keys."""
    rng = np.random.default_rng((seed << 24) ^ (rank * 2654435761 % (1 << 31)))
    for v in rng.integers(0, key_space, size=count):
        yield int(v)


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic benchmark configuration."""

    ops_per_client: int = 128
    op_bytes: int = 4096
    insert_fraction: float = 1.0  # 1.0 = all inserts, 0.0 = all finds
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        if self.ops_per_client < 1:
            raise ValueError("ops_per_client must be positive")

    def ops_for(self, rank: int) -> Iterator[Tuple[str, int, Blob]]:
        """Yield (op, key, payload) tuples for one rank."""
        rng = np.random.default_rng((self.seed << 16) ^ rank)
        payload = Blob(self.op_bytes)
        keys = list(key_stream(rank, self.ops_per_client, seed=self.seed))
        for i, key in enumerate(keys):
            if rng.random() < self.insert_fraction:
                yield "insert", key, payload
            else:
                yield "find", key, payload
