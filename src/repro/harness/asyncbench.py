"""Wall-clock A/B benchmark of the pipelined async-futures client.

``aggbench`` measures what destination-coalescing buys over one-op-per-
invocation; this harness measures what the *pipelined programming model*
buys on top of the best aggregated configuration.  The k-mer storm is run
three ways over identical input:

* **sync baseline** — the committed ``BENCH_agg`` winner: generator-based
  ``upsert_buffered`` with the best hand-tuned static threshold.
* **async static sweep** — the ``async_rmw`` futures API over the same
  static thresholds, with AIMD congestion windows armed.  Per-op futures
  ride the write combiner (including same-node partitions), so a rank
  issues its whole storm without yielding per op.
* **async auto** — the same async run with ``aggregation="auto"``: the
  self-tuning coalescer derives the flush threshold from observed flush
  efficiency and the Table-I overhead model, no knob set.

Every row records the application-result digest; the bench *asserts* all
digests are equal (the async pipeline reorders work, never results) and
that every run verified.  Alongside wall time the rows capture the serving
SLO the windows protect — the p99 of the servers' receive-queue wait — and
the adaptive-state counters (``rpc/window_stalls``, ``auto_threshold``).

Used by ``python -m repro.cli asyncbench`` and the CI async-smoke job;
``--sim-only`` drops the wall-clock fields so the emitted
``BENCH_async.json`` is bit-reproducible for the determinism diff.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ares_like
from repro.obs.registry import registry_of

__all__ = [
    "AsyncBenchRow",
    "AsyncBenchReport",
    "run_async_bench",
    "emit_async_json",
    "ASYNC_STATIC_SWEEP",
    "SYNC_BASELINE_AGG",
]

#: static thresholds swept through the async API (windows armed)
ASYNC_STATIC_SWEEP: Tuple[int, ...] = (64, 512)

#: the sync baseline's hand-tuned threshold (BENCH_agg's kmer winner)
SYNC_BASELINE_AGG: int = 512


@dataclass
class AsyncBenchRow:
    """One (mode, threshold) measurement of the k-mer storm."""

    mode: str                      # "sync" | "async"
    aggregation: str               # "512", "64", ..., or "auto"
    windows: bool
    ops: int                       # k-mers counted
    sim_seconds: float
    wall_seconds: Optional[float]  # None in --sim-only mode
    ops_per_sec: Optional[float]
    verified: bool
    digest: str                    # crc32 of the final histogram
    queue_wait_p99: float          # p99 server receive-queue wait (sim s)
    window_stalls: int             # ops queued behind a full cwnd
    auto_threshold: Optional[int]  # final self-tuned threshold (auto rows)
    agg: Optional[Dict] = None     # coalescer counters


@dataclass
class AsyncBenchReport:
    scale: float
    nodes: int
    procs_per_node: int
    sim_only: bool
    rows: List[AsyncBenchRow] = field(default_factory=list)

    def baseline(self) -> Optional[AsyncBenchRow]:
        for row in self.rows:
            if row.mode == "sync":
                return row
        return None

    def auto_row(self) -> Optional[AsyncBenchRow]:
        for row in self.rows:
            if row.mode == "async" and row.aggregation == "auto":
                return row
        return None

    def best_static_async(self) -> Optional[AsyncBenchRow]:
        static = [r for r in self.rows
                  if r.mode == "async" and r.aggregation != "auto"]
        if not static:
            return None
        key = ((lambda r: r.sim_seconds) if self.sim_only
               else (lambda r: r.wall_seconds))
        return min(static, key=key)

    def _time(self, row: AsyncBenchRow) -> float:
        return row.sim_seconds if self.sim_only else row.wall_seconds

    def summary(self) -> Dict[str, float]:
        """Headline ratios: async-auto over the sync baseline, and the
        self-tuned threshold against the best hand-tuned static one."""
        out: Dict[str, float] = {}
        base, auto, static = (self.baseline(), self.auto_row(),
                              self.best_static_async())
        metric = "sim" if self.sim_only else "wall"
        if base and auto:
            out[f"async_{metric}_speedup"] = self._time(base) / self._time(auto)
            out["queue_wait_p99_async"] = auto.queue_wait_p99
            out["queue_wait_p99_sync"] = base.queue_wait_p99
        if auto and static:
            # <= 1 + tolerance means self-tuning matched the hand-tuned knob
            out["auto_vs_best_static"] = self._time(auto) / self._time(static)
            out["best_static_aggregation"] = int(static.aggregation)
        return out

    def table_rows(self) -> List[List]:
        out: List[List] = []
        for row in self.rows:
            out.append([
                row.mode,
                row.aggregation,
                "on" if row.windows else "off",
                f"{row.sim_seconds:.6f}",
                "-" if row.wall_seconds is None else f"{row.wall_seconds:.3f}",
                f"{row.queue_wait_p99 * 1e6:.2f}",
                row.window_stalls,
                row.auto_threshold if row.auto_threshold is not None else "-",
                row.digest,
            ])
        return out

    def check(self, min_speedup: float = 1.5,
              auto_tolerance: float = 0.10) -> List[str]:
        """Failures (empty = pass).

        * every row verified, all digests identical (results, not just
          timings, must survive the reordering pipeline);
        * async-auto beats the sync baseline by ``min_speedup`` on wall
          time (on sim time the pipeline must at least not regress —
          the modeled timeline gains come from batch amortization, the
          wall gains from not parking a generator per op);
        * the self-tuned threshold lands within ``auto_tolerance`` of the
          best hand-tuned static run.
        """
        failures: List[str] = []
        for row in self.rows:
            if not row.verified:
                failures.append(
                    f"{row.mode} agg={row.aggregation}: verification failed"
                )
        digests = {r.digest for r in self.rows}
        if len(digests) > 1:
            failures.append(
                f"application results diverged across modes: {sorted(digests)}"
            )
        base, auto = self.baseline(), self.auto_row()
        if base is None or auto is None:
            failures.append("missing sync baseline or async-auto row")
            return failures
        summary = self.summary()
        if self.sim_only:
            speedup = summary["async_sim_speedup"]
            if speedup < 1.0:
                failures.append(
                    f"async sim timeline regressed: {speedup:.2f}x < 1.0x"
                )
        else:
            speedup = summary["async_wall_speedup"]
            if speedup < min_speedup:
                failures.append(
                    f"async wall_speedup={speedup:.2f}x "
                    f"< required {min_speedup:.2f}x"
                )
        ratio = summary.get("auto_vs_best_static")
        if ratio is not None and ratio > 1.0 + auto_tolerance:
            failures.append(
                f"auto-tuned threshold {ratio:.2f}x slower than best "
                f"static (allowed {1.0 + auto_tolerance:.2f}x)"
            )
        return failures


def _run_once(spec, data, aggregation, async_api: bool, window,
              flight: Optional[Dict] = None,
              flight_box: Optional[Dict] = None):
    """One k-mer run; returns (result, sim, p99, stalls, auto_thr).

    With a ``flight`` options dict the run is driven through a
    :class:`~repro.obs.series.FlightRecorder` (zero perturbation —
    identical simulated results); the recorder lands in ``flight_box``.
    """
    from repro.apps import run_kmer_counting

    box: Dict[str, object] = {}

    def instrument(hcl):
        box["sim"] = hcl.sim
        if flight is not None:
            from repro.obs.series import FlightRecorder
            recorder = FlightRecorder(
                hcl.sim,
                interval=float(flight.get("interval", 1e-3)),
                maxlen=int(flight.get("maxlen", 512)),
                select=list(flight.get(
                    "select", ("rpc/", "/ops", "coalesce/", "rpcc*"))),
            )
            recorder.install(hcl.cluster)
            if flight_box is not None:
                flight_box["recorder"] = recorder

    res = run_kmer_counting(
        "hcl", spec, data, aggregation=aggregation, sim_only=True,
        async_api=async_api, window=window, instrument=instrument,
    )
    sim = box["sim"]
    metrics = registry_of(sim)
    qw = metrics.merged_histogram("/queue_wait", "rpc")
    p99 = qw.quantile(0.99) if qw.n else 0.0
    stalls = int(metrics.counter("rpc/window_stalls").value)
    auto_thr = None
    agg = (res.agg_report or {}).get("aggregation") or {}
    if agg.get("auto"):
        auto_thr = int(agg["auto_threshold"])
    return res, sim, p99, stalls, auto_thr


def run_async_bench(
    scale: float = 1.0,
    nodes: int = 4,
    procs_per_node: int = 3,
    static_sweep: Sequence[int] = ASYNC_STATIC_SWEEP,
    repeats: int = 3,
    sim_only: bool = False,
    collector: Optional[List[Tuple[str, object]]] = None,
    flight: Optional[Dict] = None,
    flight_sink: Optional[List[Tuple[str, Dict]]] = None,
) -> AsyncBenchReport:
    """A/B the pipelined async client against the aggregated sync path.

    All rows run the container timing-only mode over the exact workload
    ``aggbench`` uses (same genome synthesis, same topology), so the sync
    baseline's ``sim_seconds`` must match the committed ``BENCH_agg.json``
    row bit-for-bit — drift there means a behavior change, not noise.
    Wall time takes the best of ``repeats``; ``sim_only`` drops the wall
    fields so same-seed reruns emit byte-identical JSON.

    Pass a list as ``collector`` to receive one ``(label, sim)`` pair per
    row — the CLI exports metrics snapshots (``rpc/cwnd/*``,
    ``rpc/window_stalls``, ``coalesce/auto_threshold``) from those
    simulators.

    ``flight`` (an options dict, or ``{}`` for defaults) arms a
    zero-perturbation flight recorder on each row's *first* repeat;
    per-row ``(label, payload)`` pairs land in ``flight_sink``.
    Recording never changes simulated results — it only adds a little
    wall overhead to the one recorded repeat.
    """
    from repro.apps import synthesize_genome

    def sc(n: float) -> int:
        return max(1, round(n * scale))

    report = AsyncBenchReport(scale, nodes, procs_per_node, sim_only)
    data = synthesize_genome(
        genome_length=sc(600 * nodes), num_reads=sc(48 * nodes),
        read_length=60, k=15, seed=nodes,
    )
    #: (mode, aggregation, async_api, window)
    plan = [("sync", SYNC_BASELINE_AGG, False, None)]
    plan += [("async", agg, True, True) for agg in static_sweep]
    plan += [("async", "auto", True, True)]
    for mode, aggregation, async_api, window in plan:
        best_wall: Optional[float] = None
        collected = False
        for _ in range(max(1, repeats) if not sim_only else 1):
            spec = ares_like(nodes=nodes, procs_per_node=procs_per_node)
            flight_box: Dict[str, object] = {}
            t0 = time.perf_counter()
            res, sim, p99, stalls, auto_thr = _run_once(
                spec, data, aggregation, async_api, window,
                flight=flight if not collected else None,
                flight_box=flight_box,
            )
            wall = time.perf_counter() - t0
            if collector is not None and not collected:
                collector.append((f"{mode}-{aggregation}", sim))
            if (flight_sink is not None and not collected
                    and "recorder" in flight_box):
                flight_sink.append((f"{mode}-{aggregation}",
                                    flight_box["recorder"].payload()))
            if not collected:
                collected = True
            if best_wall is None or wall < best_wall:
                best_wall = wall
        report.rows.append(AsyncBenchRow(
            mode=mode,
            aggregation=str(aggregation),
            windows=bool(window),
            ops=res.total_kmers,
            sim_seconds=res.time_seconds,
            wall_seconds=None if sim_only else best_wall,
            ops_per_sec=None if sim_only else res.total_kmers / best_wall,
            verified=res.verified,
            digest=res.digest,
            queue_wait_p99=p99,
            window_stalls=stalls,
            auto_threshold=auto_thr,
            agg=(res.agg_report or {}).get("aggregation"),
        ))
    return report


def emit_async_json(report: AsyncBenchReport,
                    path: str = "BENCH_async.json") -> str:
    """Write rows + summary (sorted keys, trailing newline: CI-diffable)."""
    payload = {
        "benchmark": "async_pipeline",
        "summary": report.summary(),
        **asdict(report),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
