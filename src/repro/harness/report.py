"""Paper-style text reporting for the benchmark harness.

Each figure/table bench prints the same rows or series the paper reports,
side by side with the paper's quoted values where the paper gives them, so
``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["render_table", "render_series", "ratio", "fmt_si"]


def fmt_si(value: float, unit: str = "") -> str:
    """Human format: 1234567 -> '1.23M'."""
    for thresh, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= thresh:
            return f"{value / thresh:.2f}{suffix}{unit}"
    return f"{value:.2f}{unit}"


def ratio(a: float, b: float) -> float:
    """Safe a/b."""
    return a / b if b else float("inf")


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a title rule."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("-" * (sum(widths) + 2 * len(widths)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: Dict[str, Sequence[float]],
                  y_format=fmt_si) -> str:
    """One row per x value, one column per series — a figure as text."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [
            y_format(series[name][i]) if i < len(series[name]) else "-"
            for name in series
        ]
        rows.append(row)
    return render_table(title, headers, rows)
