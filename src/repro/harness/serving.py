"""YCSB-style serving harness: Zipfian multi-tenant load at paper scale.

Every workload in this repo so far is an HPC kernel; this harness opens the
*serving* scenario HCL's abstract claims (ROADMAP item 2) — distributed
containers fronting 10^5-10^6 simulated clients.  A seeded Zipf(theta)
key-popularity generator drives the hash map (reads / writes / server-side
RMW upserts) and per-tenant FIFO queues under open-loop Poisson arrivals,
and the report extracts serving SLOs straight from the ``obs`` histogram
machinery: p50/p95/p99/p99.9 latency, per-tenant fairness (Jain's index)
and hot-key amplification.

**Simulating a million clients.**  Spawning one process per client would
melt the event core for nothing: the superposition of k independent
Poisson(rate) arrival streams is one Poisson(k*rate) stream.  Each rank
therefore runs ONE open-loop driver whose merged inter-arrival time is
``Exponential(clients_per_rank * rate)``, attributing every arrival to a
uniformly-drawn client (statistically identical to independent clients,
exactly reproducible from the seed).  Ops are issued through the
containers' ``*_async`` futures — open-loop means arrivals never wait for
completions, which is what exposes the overload latency cliff.

**The hotspot.**  HCL queues are single-partitioned and live wherever the
constructing process runs, so a popular shared queue service *is* a node
hotspot: ``queue_home="packed"`` (the default) pins every tenant queue to
node 0, concentrating ``queue_frac`` of all traffic there while the rest
of the cluster keeps headroom.  Serving ops are issued singly
(``rpc_batch_size=1`` — request aggregation is ``aggbench``'s subject),
which makes per-request dispatch the hot node's dominant cost: overload
accumulates in its *receive work queue* — exactly the queue admission
control governs — rather than in the shared NIC-core pipeline.

**Backpressure A/B.**  ``bounds`` runs the identical workload once per
admission-control setting (``None`` = classic unbounded server queues; an
integer arms ``RpcServer(queue_bound=...)`` load shedding).  Shed ops
surface as ``serving/shed`` counters server-side and retriable
:class:`~repro.rpc.future.ServerOverloaded` errors client-side; the
harness retries them with exponential backoff up to ``shed_retries``
times, so reported latency is the *client-visible* figure including
retries.  The report's ``cliff`` block compares unbounded vs bounded p99:
without shedding the hot node's backlog delay grows with the arrival
window (the latency cliff); with it, p99 stays near the service floor and
the cost surfaces as ``shed_gaveup`` errors instead.  Retries trade that
error rate back for tail latency (each success pays its backoff), so the
crispest cliff measurement uses ``shed_retries=0``.

Only simulated (deterministic) quantities enter the report, so same-seed
reruns emit byte-identical ``BENCH_serving.json`` files.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ares_like
from repro.core.runtime import HCL
from repro.obs.registry import SLO_QUANTILES, percentile_summary, registry_of
from repro.obs.series import FlightRecorder
from repro.obs.skew import SkewDetector
from repro.obs.slo import SLOMonitor, SLORule, counter_sli, latency_sli
from repro.rpc.future import ServerOverloaded

__all__ = [
    "ZipfKeyGenerator",
    "run_serving",
    "emit_serving_json",
    "render_serving",
    "check_serving",
    "DEFAULT_MIX",
    "MONITOR_DEFAULTS",
]

#: default knobs for ``run_serving(monitors=...)`` — all sim-time scaled
MONITOR_DEFAULTS: Dict = {
    "interval": 2.5e-4,        # flight-recorder cadence (sim s)
    "maxlen": 512,             # ring-buffer bound per series
    "select": ("serving/", "/ops", "rpc/"),
    "quantiles": (0.5, 0.99),
    "hot_factor": 2.0,         # x fair share -> skew.hot_partition
    "sketch_capacity": 64,
    "top_k": 5,
    "availability_target": 0.999,
    "burn_threshold": 10.0,    # availability fast-burn multiple
    "latency_slo": 1e-3,       # latency objective (sim s)
    "latency_target": 0.99,    # <=1% of requests over the objective
    "latency_burn_threshold": 2.0,
    "short_windows": 4,        # short burn window, in sampling intervals
    "long_windows": 16,        # long burn window, in sampling intervals
}

#: read / write / RMW fractions of the map traffic (YCSB-B-ish)
DEFAULT_MIX: Tuple[float, float, float] = (0.70, 0.20, 0.10)

#: fixed serving value payload (~100B, the YCSB-ish small-object regime)
_VALUE = "v" * 100

_OP_CLASSES = ("read", "write", "rmw", "queue")


class ZipfKeyGenerator:
    """Seeded Zipf(theta) sampler over one tenant's key namespace.

    Popularity rank ``r`` (0-based) is drawn with probability proportional
    to ``(r+1)**-theta`` via an exact CDF + bisection; a deterministic
    shuffle maps ranks to key ids so the hottest key is not always id 0
    (which would bias partition routing).  Keys are namespaced per tenant
    (``t<tenant>:k<id>``), giving each tenant a private keyspace inside the
    shared container.  Everything derives from ``(seed, tenant)`` — two
    generators built with the same pair emit identical streams.
    """

    def __init__(self, keys: int, theta: float, seed: int, tenant: int = 0):
        if keys < 1:
            raise ValueError("need at least one key")
        if theta < 0:
            raise ValueError("theta must be >= 0 (0 = uniform)")
        self.keys = keys
        self.theta = theta
        self.tenant = tenant
        self._rng = random.Random((seed * 0x9E3779B1) ^ (tenant * 0x85EBCA6B))
        acc = 0.0
        cdf: List[float] = []
        for r in range(1, keys + 1):
            acc += r ** -theta
            cdf.append(acc)
        self._cdf = [c / acc for c in cdf]
        ids = list(range(keys))
        random.Random((seed << 1) ^ tenant ^ 0x5BF03635).shuffle(ids)
        self._ids = ids

    def sample_rank(self) -> int:
        """Draw a popularity rank (0 = hottest)."""
        return bisect_left(self._cdf, self._rng.random())

    def key_at(self, rank: int) -> str:
        """The tenant-namespaced key holding popularity rank ``rank``."""
        return f"t{self.tenant}:k{self._ids[rank]}"

    def sample(self) -> str:
        """Draw a key with Zipf(theta) popularity."""
        return self.key_at(self.sample_rank())


def _jain_fairness(xs: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one tenant hogs."""
    total = sum(xs)
    if total <= 0:
        return 0.0
    return (total * total) / (len(xs) * sum(x * x for x in xs))


def _arm_monitors(h: HCL, store, queues, opts: Dict) -> Dict:
    """Arm the flight recorder + skew detector + SLO monitor on one run.

    Pure observation: the recorder's ``pump`` replaces ``cluster.run``
    under the zero-perturbation contract, and the per-tick skew/SLO hooks
    only read registry metrics — a monitored run keeps identical
    simulated results, which the obs benchmarks assert field-by-field.
    """
    cfg = dict(MONITOR_DEFAULTS)
    cfg.update(opts)
    sim = h.sim
    registry = registry_of(sim)
    interval = float(cfg["interval"])
    recorder = FlightRecorder(
        sim, interval=interval, maxlen=int(cfg["maxlen"]),
        select=list(cfg["select"]), quantiles=tuple(cfg["quantiles"]),
    )
    sources = [(p.ops.name, p.node_id) for p in store.partitions]
    for q in queues:
        sources.extend((p.ops.name, p.node_id) for p in q.partitions)
    skew = SkewDetector(
        registry, sources, hot_factor=float(cfg["hot_factor"]),
        sketch_capacity=int(cfg["sketch_capacity"]),
        event_log=recorder.events, top_k=int(cfg["top_k"]),
    )
    slo = SLOMonitor(
        rules=[
            SLORule(
                "availability",
                counter_sli(registry,
                            bad=("serving/shed_gaveup", "serving/errors"),
                            total=("serving/completed",)),
                target=float(cfg["availability_target"]),
                short_window=cfg["short_windows"] * interval,
                long_window=cfg["long_windows"] * interval,
                threshold=float(cfg["burn_threshold"]),
            ),
            SLORule(
                "latency",
                latency_sli(registry, "serving/latency",
                            float(cfg["latency_slo"])),
                target=float(cfg["latency_target"]),
                short_window=cfg["short_windows"] * interval,
                long_window=cfg["long_windows"] * interval,
                threshold=float(cfg["latency_burn_threshold"]),
            ),
        ],
        event_log=recorder.events,
    )
    recorder.add_listener(skew.tick)
    recorder.add_listener(slo.tick)
    recorder.install(h.cluster)
    return {"recorder": recorder, "skew": skew, "slo": slo}


def _run_one_config(
    nodes: int,
    procs_per_node: int,
    clients: int,
    tenants: int,
    theta: float,
    keys: int,
    mix: Tuple[float, float, float],
    queue_frac: float,
    queue_home: str,
    rate: float,
    ops_per_client: float,
    seed: int,
    queue_bound: Optional[int],
    shed_retries: int,
    retry_backoff: float,
    rpc_batch_size: int,
    windows=None,
    monitors=None,
    monitors_sink: Optional[List[Dict]] = None,
) -> Dict:
    """One full serving run under one admission-control setting."""
    spec = ares_like(nodes=nodes, procs_per_node=procs_per_node, seed=seed)
    h = HCL(spec, rpc_batch_size=rpc_batch_size, rpc_queue_bound=queue_bound,
            window=windows)
    sim = h.sim
    metrics = registry_of(sim)

    store = h.unordered_map("serving-map", partitions=nodes)
    # "packed" pins every tenant queue to node 0 — the paper's queues are
    # single-partitioned and live where the constructing process runs, so
    # a popular shared queue service IS a node hotspot.  "spread" places
    # them round-robin instead (the load-balanced deployment).
    queues = [h.queue(f"serving-q{t}",
                      home_node=0 if queue_home == "packed" else t % nodes)
              for t in range(tenants)]
    gens = [ZipfKeyGenerator(keys, theta, seed, tenant=t)
            for t in range(tenants)]

    latency = metrics.histogram("serving/latency")
    class_hist = {c: metrics.histogram(f"serving/{c}/latency")
                  for c in _OP_CLASSES}
    tenant_hist = [metrics.histogram(f"serving/t{t}/latency")
                   for t in range(tenants)]
    tenant_done = [metrics.counter(f"serving/t{t}/completed")
                   for t in range(tenants)]
    issued = metrics.counter("serving/issued")
    completed = metrics.counter("serving/completed")
    shed = metrics.counter("serving/shed")  # bumped by the servers
    retried = metrics.counter("serving/shed_retried")
    gaveup = metrics.counter("serving/shed_gaveup")
    errors = metrics.counter("serving/errors")
    key_counts: Dict[str, int] = {}

    mon = None
    if monitors:
        mon = _arm_monitors(h, store, queues,
                            monitors if isinstance(monitors, dict) else {})
    skew_det = mon["skew"] if mon is not None else None

    read_cut, write_cut = mix[0], mix[0] + mix[1]

    def issue(factory, tenant: int, klass: str) -> None:
        """Fire one op open-loop; record client-visible completion latency.

        Shed ops retry with exponential backoff (up to ``shed_retries``),
        keeping the original issue timestamp — the latency a real client
        would observe across the reject/retry cycle.
        """
        t0 = sim.now
        state = {"attempt": 0}

        def on_done(ev) -> None:
            if ev.ok:
                lat = sim.now - t0
                latency.observe(lat)
                class_hist[klass].observe(lat)
                tenant_hist[tenant].observe(lat)
                completed.add(1)
                tenant_done[tenant].add(1)
            elif (isinstance(ev.value, ServerOverloaded)
                    and state["attempt"] < shed_retries):
                state["attempt"] += 1
                retried.add(1)
                delay = retry_backoff * (2 ** (state["attempt"] - 1))

                def backoff_then_retry():
                    yield sim.timeout(delay)
                    factory()._event.add_callback(on_done)

                sim.process(backoff_then_retry(), name="serving-retry")
            elif isinstance(ev.value, ServerOverloaded):
                gaveup.add(1)
            else:
                errors.add(1)

        issued.add(1)
        factory()._event.add_callback(on_done)

    total_ranks = spec.total_procs
    base, extra = divmod(clients, total_ranks)

    def rank_body(rank: int):
        n_clients = base + (1 if rank < extra else 0)
        n_ops = int(round(ops_per_client * n_clients))
        if n_ops == 0:
            return
        rng = random.Random((seed << 20) ^ (rank * 0x9E3779B1))
        merged_rate = n_clients * rate  # Poisson superposition
        for seq in range(n_ops):
            yield sim.timeout(rng.expovariate(merged_rate))
            tenant = rng.randrange(tenants)
            u = rng.random()
            if u < queue_frac:
                q = queues[tenant]
                if rng.random() < 0.5:
                    issue(lambda q=q, r=rank, v=(tenant, seq):
                          q.push_async(r, v), tenant, "queue")
                else:
                    issue(lambda q=q, r=rank: q.pop_async(r),
                          tenant, "queue")
                continue
            key = gens[tenant].sample()
            key_counts[key] = key_counts.get(key, 0) + 1
            if skew_det is not None:  # heap-only bookkeeping, no sim events
                skew_det.offer_key(key)
            v = rng.random()
            if v < read_cut:
                issue(lambda r=rank, k=key: store.async_find(r, k),
                      tenant, "read")
            elif v < write_cut:
                issue(lambda r=rank, k=key: store.async_insert(r, k, _VALUE),
                      tenant, "write")
            else:
                # RMW counters live beside the blob keys under a distinct
                # prefix, so an upsert never lands on a string value.
                issue(lambda r=rank, k="c:" + key: store.async_rmw(r, k, 1),
                      tenant, "rmw")

    # Arrivals stop after the fixed op count; the sim then drains every
    # queued request and in-flight retry before run_ranks returns, so
    # backlog delay (the cliff) is fully captured in the histograms.
    h.run_ranks(rank_body)
    sim_seconds = sim.now

    part_ops = [int(p.ops.value) for p in store.partitions]
    total_part = sum(part_ops)
    mean_part = total_part / len(part_ops) if part_ops else 0.0
    total_keyed = sum(key_counts.values())
    per_tenant = {
        f"t{t}": {
            "completed": int(tenant_done[t].value),
            **percentile_summary(tenant_hist[t], SLO_QUANTILES),
        }
        for t in range(tenants)
    }
    row = {
        "queue_bound": queue_bound,
        "issued": int(issued.value),
        "completed": int(completed.value),
        "shed": int(shed.value),
        "shed_seen_by_clients": int(metrics.sum_matching("/shed_seen", "rpcc")),
        "shed_retried": int(retried.value),
        "shed_gaveup": int(gaveup.value),
        "errors": int(errors.value),
        "windows": bool(windows),
        "window_stalls": int(metrics.counter("rpc/window_stalls").value),
        "window_sheds": int(metrics.counter("rpc/window_sheds").value),
        "sim_seconds": sim_seconds,
        "ops_per_sim_sec": (completed.value / sim_seconds
                            if sim_seconds > 0 else 0.0),
        "latency": percentile_summary(latency, SLO_QUANTILES),
        "per_class": {c: percentile_summary(class_hist[c], SLO_QUANTILES)
                      for c in _OP_CLASSES},
        "per_tenant": per_tenant,
        "fairness_jain": _jain_fairness(
            [tenant_done[t].value for t in range(tenants)]
        ),
        "hot_key_amplification": (max(part_ops) / mean_part
                                  if mean_part else 0.0),
        "hot_partition_share": (max(part_ops) / total_part
                                if total_part else 0.0),
        "top_key_share": (max(key_counts.values()) / total_keyed
                          if total_keyed else 0.0),
    }
    if mon is not None and monitors_sink is not None:
        flight = mon["recorder"].payload()
        flight["skew"] = mon["skew"].summary()
        flight["slo"] = mon["slo"].summary()
        monitors_sink.append({"queue_bound": queue_bound, "flight": flight})
    h.close()
    return row


def run_serving(
    nodes: int = 64,
    procs_per_node: int = 4,
    clients: int = 100_000,
    tenants: int = 8,
    theta: float = 0.99,
    keys: int = 16_384,
    mix: Tuple[float, float, float] = DEFAULT_MIX,
    queue_frac: float = 0.10,
    queue_home: str = "packed",
    rate: float = 100.0,
    ops_per_client: float = 1.0,
    seed: int = 7,
    bounds: Sequence[Optional[int]] = (None, 64),
    shed_retries: int = 1,
    retry_backoff: float = 1e-3,
    rpc_batch_size: int = 1,
    windows=None,
    monitors=None,
    monitors_sink: Optional[List[Dict]] = None,
) -> Dict:
    """Run the serving bench once per admission-control bound; return the
    report dict (simulated/deterministic fields only — no wall clock).

    ``windows`` arms per-(node, partition) AIMD congestion windows on the
    issue path (``True`` for defaults, or a
    :class:`~repro.rpc.window.WindowConfig`); shed ops are then retried by
    the window itself before the harness-level backoff sees them.

    ``monitors`` arms the observability stack per config (``True`` for
    :data:`MONITOR_DEFAULTS`, or a dict of overrides): flight recorder,
    skew detector and SLO burn-rate monitor.  Monitoring never changes
    the report — simulated results are identical with monitors on or off
    — so per-config flight payloads (series + events + skew/slo
    summaries) are appended to the caller's ``monitors_sink`` list
    instead of the report dict."""
    if not 0.999 <= sum(mix) <= 1.001:
        raise ValueError(f"mix must sum to 1.0, got {mix}")
    if not 0.0 <= queue_frac < 1.0:
        raise ValueError("queue_frac must be in [0, 1)")
    if queue_home not in ("packed", "spread"):
        raise ValueError("queue_home must be 'packed' or 'spread'")
    if rate <= 0 or ops_per_client <= 0:
        raise ValueError("rate and ops_per_client must be positive")
    configs = [
        _run_one_config(
            nodes, procs_per_node, clients, tenants, theta, keys, mix,
            queue_frac, queue_home, rate, ops_per_client, seed, bound,
            shed_retries, retry_backoff, rpc_batch_size, windows,
            monitors, monitors_sink,
        )
        for bound in bounds
    ]
    report = {
        "benchmark": "serving_zipf",
        "nodes": nodes,
        "procs_per_node": procs_per_node,
        "clients": clients,
        "tenants": tenants,
        "theta": theta,
        "keys_per_tenant": keys,
        "mix": {"read": mix[0], "write": mix[1], "rmw": mix[2]},
        "queue_frac": queue_frac,
        "queue_home": queue_home,
        "rate_per_client": rate,
        "ops_per_client": ops_per_client,
        "seed": seed,
        "shed_retries": shed_retries,
        "retry_backoff": retry_backoff,
        "rpc_batch_size": rpc_batch_size,
        "configs": configs,
    }
    unbounded = [c for c in configs if c["queue_bound"] is None]
    bounded = [c for c in configs if c["queue_bound"] is not None]
    if unbounded and bounded:
        p99_off = unbounded[0]["latency"]["p99"]
        p99_on = min(c["latency"]["p99"] for c in bounded)
        report["cliff"] = {
            "p99_shedding_off": p99_off,
            "p99_shedding_on": p99_on,
            "p99_ratio": p99_off / p99_on if p99_on > 0 else 0.0,
        }
    return report


def emit_serving_json(report: Dict, path: str = "BENCH_serving.json") -> str:
    """Write the report (sorted keys + trailing newline: byte-reproducible)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_serving(report: Dict) -> str:
    """Fixed-width table of the per-bound serving SLOs."""
    from repro.harness.report import render_table

    rows = []
    for cfg in report["configs"]:
        lat = cfg["latency"]
        rows.append([
            "off" if cfg["queue_bound"] is None else str(cfg["queue_bound"]),
            cfg["completed"],
            cfg["shed"],
            cfg["shed_gaveup"],
            lat["p50"] * 1e6,
            lat["p95"] * 1e6,
            lat["p99"] * 1e6,
            lat["p99.9"] * 1e6,
            cfg["fairness_jain"],
            cfg["hot_key_amplification"],
        ])
    title = (
        f"serving: {report['nodes']}x{report['procs_per_node']} nodes, "
        f"{report['clients']} clients, {report['tenants']} tenants, "
        f"Zipf(theta={report['theta']})"
    )
    return render_table(
        title,
        ["bound", "done", "shed", "gaveup", "p50us", "p95us", "p99us",
         "p99.9us", "jain", "hotkey_amp"],
        rows,
    )


def check_serving(report: Dict, require_cliff: bool = False,
                  cliff_factor: float = 3.0) -> List[str]:
    """Sanity failures for CI (empty list = pass).

    ``require_cliff`` additionally demands the overload signature: the
    unbounded config's p99 at least ``cliff_factor`` x the bounded one's
    (i.e. shedding visibly flattens the latency cliff).
    """
    failures: List[str] = []
    slo_keys = {f"p{100 * q:g}" for q in SLO_QUANTILES}
    for cfg in report["configs"]:
        label = f"bound={cfg['queue_bound']}"
        if cfg["completed"] <= 0:
            failures.append(f"{label}: no ops completed")
        accounted = cfg["completed"] + cfg["shed_gaveup"] + cfg["errors"]
        if accounted != cfg["issued"]:
            failures.append(
                f"{label}: {cfg['issued']} issued but {accounted} accounted "
                f"(completed+gaveup+errors)"
            )
        if cfg["errors"]:
            failures.append(f"{label}: {cfg['errors']} unexpected op errors")
        missing = slo_keys - set(cfg["latency"])
        if missing:
            failures.append(f"{label}: latency summary missing {sorted(missing)}")
        if not 0.0 < cfg["fairness_jain"] <= 1.0:
            failures.append(
                f"{label}: fairness {cfg['fairness_jain']} outside (0, 1]"
            )
        starved = [t for t, stats in cfg["per_tenant"].items()
                   if stats["completed"] == 0]
        if starved:
            failures.append(f"{label}: starved tenants {starved}")
        if cfg["queue_bound"] is None and cfg["shed"]:
            failures.append(f"{label}: shed {cfg['shed']} ops with no bound")
    if require_cliff:
        cliff = report.get("cliff")
        if cliff is None:
            failures.append(
                "cliff check requested but report lacks an unbounded/bounded "
                "config pair"
            )
        elif cliff["p99_ratio"] < cliff_factor:
            failures.append(
                f"no overload cliff: unbounded p99 only "
                f"{cliff['p99_ratio']:.2f}x the bounded p99 "
                f"(need >= {cliff_factor}x)"
            )
    return failures
