"""Wall-clock throughput microbenchmark of the DES kernel itself.

Every figure in the reproduction is bounded by how many simulation events
the kernel can retire per wall-clock second — the fabric, RPC, and
container models all reduce to timeouts, resource grants, and process
resumes.  This module measures that number on a fixed reference workload
(100 processes each yielding 2000 short timeouts, the shape of a busy
rank charging fabric costs) so the perf trajectory is tracked from PR to
PR in ``BENCH_kernel.json``.

Used by ``python -m repro.cli kernelbench`` and
``benchmarks/test_kernel_throughput.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Optional

from repro.simnet.core import Simulator

__all__ = [
    "KernelBenchReport",
    "run_kernel_bench",
    "kernel_events_per_sec",
    "traced_kernel_bench",
    "emit_bench_json",
    "SEED_BASELINE_EVENTS_PER_SEC",
    "REFERENCE_PROCS",
    "REFERENCE_TIMEOUTS",
]

# The seed kernel measured on the reference workload before this
# optimization pass (200,200 events in 0.52 s — see docs/PERFORMANCE.md).
SEED_BASELINE_EVENTS_PER_SEC = 384_000

REFERENCE_PROCS = 100
REFERENCE_TIMEOUTS = 2000


@dataclass
class KernelBenchReport:
    """One measurement of kernel event throughput."""

    procs: int
    timeouts_per_proc: int
    pooling: bool
    scheduler: str
    events_processed: int
    events_recycled: int
    wall_seconds: float
    events_per_sec: float
    sim_seconds: float
    speedup_vs_seed: float

    def rows(self):
        return [
            ["workload", f"{self.procs} procs x {self.timeouts_per_proc} timeouts"],
            ["pooling", "on" if self.pooling else "off"],
            ["scheduler", self.scheduler],
            ["events processed", f"{self.events_processed:,}"],
            ["events recycled", f"{self.events_recycled:,}"],
            ["wall time", f"{self.wall_seconds:.3f} s"],
            ["throughput", f"{self.events_per_sec:,.0f} events/s"],
            ["vs seed baseline (~384k)", f"{self.speedup_vs_seed:.2f}x"],
        ]


def run_kernel_bench(
    procs: int = REFERENCE_PROCS,
    timeouts_per_proc: int = REFERENCE_TIMEOUTS,
    pooling: bool = True,
    delay: float = 1e-6,
    scheduler: str = "calendar",
    registry=None,
) -> KernelBenchReport:
    """Run the reference workload once and report wall-clock throughput.

    The workload is deliberately kernel-bound: each process charges
    ``timeouts_per_proc`` short timeouts back to back, which exercises the
    near-future lane, the timeout pool, and the inlined resume loop — the
    same three paths every fabric charge rides.

    ``scheduler`` selects the far-lane event structure ("calendar" or
    "heap"); both retire events in bit-identical order, so only wall
    throughput differs between the two variants.  Pass a
    :class:`~repro.obs.MetricsRegistry` as ``registry`` to receive the
    post-run ``scheduler/*`` gauges.
    """
    sim = Simulator(pooling=pooling, scheduler=scheduler)

    def worker():
        timeout = sim.timeout
        for _ in range(timeouts_per_proc):
            yield timeout(delay)

    t0 = time.perf_counter()
    for _ in range(procs):
        sim.process(worker())
    sim.run()
    wall = time.perf_counter() - t0

    if registry is not None:
        from repro.obs import publish_scheduler_metrics

        publish_scheduler_metrics(sim, registry)
    stats = sim.kernel_stats()
    events = stats["events_processed"]
    evps = events / wall if wall > 0 else float("inf")
    return KernelBenchReport(
        procs=procs,
        timeouts_per_proc=timeouts_per_proc,
        pooling=pooling,
        scheduler=scheduler,
        events_processed=events,
        events_recycled=stats["events_recycled"],
        wall_seconds=wall,
        events_per_sec=evps,
        sim_seconds=sim.now,
        speedup_vs_seed=evps / SEED_BASELINE_EVENTS_PER_SEC,
    )


def kernel_events_per_sec(repeats: int = 3, **kwargs) -> KernelBenchReport:
    """Best-of-``repeats`` measurement (wall clock is noisy; sim is not)."""
    best: Optional[KernelBenchReport] = None
    for _ in range(max(1, repeats)):
        rep = run_kernel_bench(**kwargs)
        if best is None or rep.events_per_sec > best.events_per_sec:
            best = rep
    return best


def traced_kernel_bench(repeats: int = 3, **kwargs):
    """Best-of-``repeats`` run with wall-clock spans and a metrics registry.

    The kernel microbenchmark has no RPC pipeline to trace, so the spans
    here use a *wall-clock* tracer (``time.perf_counter``): one root
    ``kernelbench`` span with a ``kernel.repeat`` child per run, each
    annotated with its event count and throughput.  The registry mirrors
    the kernel stats (``kernel/events_processed`` etc.) so ``--metrics-out``
    works uniformly across the bench commands.

    Returns ``(best_report, tracer, registry)``.
    """
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer(clock=time.perf_counter)
    registry = MetricsRegistry()
    root = tracer.begin("kernelbench", attrs={"repeats": max(1, repeats)})
    best: Optional[KernelBenchReport] = None
    for i in range(max(1, repeats)):
        span = tracer.begin("kernel.repeat", parent=root, attrs={"repeat": i})
        rep = run_kernel_bench(registry=registry, **kwargs)
        tracer.finish(span)
        span.attrs["events"] = rep.events_processed
        span.attrs["events_per_sec"] = round(rep.events_per_sec)
        registry.counter("kernel/events_processed").add(rep.events_processed)
        registry.counter("kernel/events_recycled").add(rep.events_recycled)
        registry.histogram("kernel/wall_seconds").observe(rep.wall_seconds)
        if best is None or rep.events_per_sec > best.events_per_sec:
            best = rep
    tracer.finish(root)
    registry.gauge("kernel/best_events_per_sec").set(best.events_per_sec)
    return best, tracer, registry


def emit_bench_json(report: KernelBenchReport, path: str = "BENCH_kernel.json") -> str:
    """Write the measurement next to the repo so CI and future PRs can diff it."""
    payload = {
        "benchmark": "kernel_events_per_sec",
        "seed_baseline_events_per_sec": SEED_BASELINE_EVENTS_PER_SEC,
        **asdict(report),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
