"""Fig-4-style telemetry: NIC utilization, memory, packet rate over time.

Figure 4 of the paper argues HCL's case with time-series hardware
telemetry (Intel PAT on the real testbed).  This harness reproduces those
three series for the simulated cluster: a
:class:`~repro.simnet.trace.Sampler` records

* ``nic_utilization`` — windowed NIC-core busy %, averaged over nodes
  (Fig 4a),
* ``memory_utilization`` — cluster memory in use as % of capacity
  (Fig 4b),
* ``packet_rate`` — cluster-wide packets per simulated second (Fig 4c),

while an application kernel runs, and ``emit_telemetry_json`` writes the
series to ``BENCH_telemetry.json``.

Sampling is **two-pass** so it cannot perturb the measured run: a dry run
learns the workload's simulated duration, then an identical second run
arms samples (``Sampler.arm``) at evenly spaced absolute times across
that duration and routes ``cluster.run`` through ``Sampler.pump``.  The
pump takes each sample at its exact armed time while real events are
pending, but only ever advances the clock by processing real events or
by crossing idle gaps the untraced run would cross anyway — so armed
samples pause at phase boundaries (a multi-phase app's intermediate
``run()`` calls drain early) and lapse when the workload truly ends.
The sampled run's event timeline, results and final sim time are
therefore *identical* to the dry run; simulator-scheduled sample events
would instead stretch any phase whose events drain before the last
sample time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.config import ares_like
from repro.obs.registry import percentile_summary

__all__ = [
    "TELEMETRY_APPS",
    "FIG4_SERIES",
    "run_telemetry",
    "emit_telemetry_json",
    "check_telemetry",
]

#: the Fig-4 kernels: one ISx and one contig-generation run (ISSUE floor)
TELEMETRY_APPS: Tuple[str, ...] = ("isx", "contig")

#: the three Fig-4 series, in figure order
FIG4_SERIES = ("nic_utilization", "memory_utilization", "packet_rate")


def _attach_probes(cluster, sampler) -> None:
    nic_probes = [node.nic.utilization_probe() for node in cluster.nodes]
    sampler.add_probe(
        "nic_utilization",
        lambda probes=tuple(nic_probes): sum(p() for p in probes) / len(probes),
    )
    sampler.add_probe("memory_utilization", cluster.memory_probe())
    sampler.add_probe("packet_rate", cluster.packets_probe())


def run_telemetry(
    scale: float = 1.0,
    nodes: int = 4,
    procs_per_node: int = 3,
    samples: int = 32,
    aggregation: int = 8,
    apps: Sequence[str] = TELEMETRY_APPS,
) -> Dict:
    """Run the Fig-4 apps with telemetry sampling; returns the report dict."""
    from repro.harness.aggbench import _run_app

    if samples < 2:
        raise ValueError("telemetry needs at least 2 samples")
    runs: List[Dict] = []
    for app in apps:
        # Pass 1: dry run — learn the workload's simulated duration.
        spec = ares_like(nodes=nodes, procs_per_node=procs_per_node)
        _ops, duration, _verified, _agg = _run_app(app, spec, scale,
                                                   aggregation)
        # Pass 2: identical run, with samples armed across the learned
        # duration and the cluster's run loop driven by the sampler pump.
        spec = ares_like(nodes=nodes, procs_per_node=procs_per_node)
        box: Dict = {}

        def instrument(hcl, box=box, duration=duration):
            cluster = hcl.cluster
            sampler = cluster.sampler()
            _attach_probes(cluster, sampler)
            sampler.arm(
                (i + 1) * duration / samples for i in range(samples)
            )
            cluster.run = sampler.pump  # zero-perturbation sample driver
            box["sampler"] = sampler

        ops, sim_s, verified, _agg = _run_app(app, spec, scale, aggregation,
                                              instrument)
        sampler = box["sampler"]
        # Summary stats ride the shared obs quantile path; ``mean``/``max``
        # keep their historical spellings alongside the summary block.
        series = {
            name: {
                "times": list(ts.times),
                "values": list(ts.values),
                "mean": ts.mean(),
                "max": ts.max(),
                "summary": percentile_summary(list(ts.values)),
            }
            for name, ts in sampler.series.items()
        }
        runs.append({
            "app": app,
            "ops": ops,
            "sim_seconds": sim_s,
            "dry_run_seconds": duration,
            "verified": verified,
            "samples": len(sampler.series[FIG4_SERIES[0]]),
            "probe_errors": sampler.probe_errors,
            "series": series,
        })
    return {
        "benchmark": "telemetry_fig4",
        "scale": scale,
        "nodes": nodes,
        "procs_per_node": procs_per_node,
        "aggregation": aggregation,
        "samples": samples,
        "series_names": list(FIG4_SERIES),
        "runs": runs,
    }


def emit_telemetry_json(report: Dict,
                        path: str = "BENCH_telemetry.json") -> str:
    """Write the telemetry report (sorted keys, bit-reproducible)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_telemetry(report: Dict) -> List[str]:
    """Sanity failures for CI: every run has all three non-empty series."""
    failures: List[str] = []
    for run in report["runs"]:
        for name in FIG4_SERIES:
            ts = run["series"].get(name)
            if not ts or not ts["values"]:
                failures.append(f"{run['app']}: series {name!r} is empty")
        if not run["verified"]:
            failures.append(f"{run['app']}: workload verification failed")
        if run["probe_errors"]:
            failures.append(
                f"{run['app']}: {run['probe_errors']} probe error(s)"
            )
    return failures
