"""Experiment harness: workloads, sweeps, and paper-style reporting.

Every table and figure bench in ``benchmarks/`` builds on this package:

* :mod:`repro.harness.workload` — sized payloads, key streams, op mixes;
* :mod:`repro.harness.experiment` — run descriptors, sweep runner,
  result rows with derived metrics (ops/s, MB/s);
* :mod:`repro.harness.report` — fixed-width text tables comparing
  paper-reported values against measured ones, and CSV-ish dumps.
"""

from repro.harness.workload import Blob, key_stream, WorkloadSpec
from repro.harness.experiment import ExperimentResult, run_trials, throughput
from repro.harness.report import render_table, render_series, ratio

__all__ = [
    "Blob",
    "key_stream",
    "WorkloadSpec",
    "ExperimentResult",
    "run_trials",
    "throughput",
    "render_table",
    "render_series",
    "ratio",
]
