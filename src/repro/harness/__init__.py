"""Experiment harness: workloads, sweeps, and paper-style reporting.

Every table and figure bench in ``benchmarks/`` builds on this package:

* :mod:`repro.harness.workload` — sized payloads, key streams, op mixes;
* :mod:`repro.harness.experiment` — run descriptors, sweep runner,
  result rows with derived metrics (ops/s, MB/s);
* :mod:`repro.harness.report` — fixed-width text tables comparing
  paper-reported values against measured ones, and CSV-ish dumps;
* :mod:`repro.harness.kernelbench` — wall-clock throughput of the DES
  kernel itself (the number every figure's runtime is bounded by);
* :mod:`repro.harness.aggbench` — wall-clock A/B of the transparent
  op-coalescing buffers across the Fig-7 apps.
"""

from repro.harness.workload import Blob, key_stream, WorkloadSpec
from repro.harness.experiment import ExperimentResult, run_trials, throughput
from repro.harness.report import render_table, render_series, ratio
from repro.harness.kernelbench import (
    KernelBenchReport,
    kernel_events_per_sec,
    run_kernel_bench,
)
from repro.harness.aggbench import AggBenchReport, run_agg_bench

__all__ = [
    "KernelBenchReport",
    "kernel_events_per_sec",
    "run_kernel_bench",
    "AggBenchReport",
    "run_agg_bench",
    "Blob",
    "key_stream",
    "WorkloadSpec",
    "ExperimentResult",
    "run_trials",
    "throughput",
    "render_table",
    "render_series",
    "ratio",
]
