"""Experiment harness: workloads, sweeps, and paper-style reporting.

Every table and figure bench in ``benchmarks/`` builds on this package:

* :mod:`repro.harness.workload` — sized payloads, key streams, op mixes;
* :mod:`repro.harness.experiment` — run descriptors, sweep runner,
  result rows with derived metrics (ops/s, MB/s);
* :mod:`repro.harness.report` — fixed-width text tables comparing
  paper-reported values against measured ones, and CSV-ish dumps;
* :mod:`repro.harness.kernelbench` — wall-clock throughput of the DES
  kernel itself (the number every figure's runtime is bounded by);
* :mod:`repro.harness.aggbench` — wall-clock A/B of the transparent
  op-coalescing buffers across the Fig-7 apps;
* :mod:`repro.harness.telemetry` — Fig-4-style time-series telemetry
  (NIC utilization, memory, packet rate) sampled over the app kernels;
* :mod:`repro.harness.chaos` — seeded fault-plan soak with an
  acked-write ledger and a registry-backed metrics report;
* :mod:`repro.harness.serving` — Zipfian multi-tenant serving bench:
  SLO percentiles, fairness, and the load-shedding overload A/B.
"""

from repro.harness.workload import Blob, key_stream, WorkloadSpec
from repro.harness.experiment import ExperimentResult, run_trials, throughput
from repro.harness.report import render_table, render_series, ratio
from repro.harness.kernelbench import (
    KernelBenchReport,
    kernel_events_per_sec,
    run_kernel_bench,
    traced_kernel_bench,
)
from repro.harness.aggbench import AggBenchReport, run_agg_bench
from repro.harness.telemetry import (
    TELEMETRY_APPS,
    check_telemetry,
    emit_telemetry_json,
    run_telemetry,
)
from repro.harness.serving import (
    DEFAULT_MIX,
    ZipfKeyGenerator,
    check_serving,
    emit_serving_json,
    render_serving,
    run_serving,
)

__all__ = [
    "DEFAULT_MIX",
    "ZipfKeyGenerator",
    "check_serving",
    "emit_serving_json",
    "render_serving",
    "run_serving",
    "KernelBenchReport",
    "kernel_events_per_sec",
    "run_kernel_bench",
    "traced_kernel_bench",
    "AggBenchReport",
    "run_agg_bench",
    "TELEMETRY_APPS",
    "run_telemetry",
    "emit_telemetry_json",
    "check_telemetry",
    "Blob",
    "key_stream",
    "WorkloadSpec",
    "ExperimentResult",
    "run_trials",
    "throughput",
    "render_table",
    "render_series",
    "ratio",
]
