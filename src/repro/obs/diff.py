"""Differential run forensics: *what changed between two runs, and why?*

The regression gate (``benchmarks/check_regression.py``) can say a
metric moved past tolerance; this module answers the next question.
Feed it any two observability artifacts the repo produces —

* BENCH JSON (kernel / agg / serving / async reports),
* flight-recorder payloads (``kind: "flight_recorder"``),
* span JSON-lines logs,
* metrics snapshots (``MetricsRegistry.snapshot()`` dumps),
* wall-profile payloads (``kind: "wall_profile"``),
* critical-path analyses (``kind: "critpath"``)

— and :func:`diff_runs` emits one structured ``RunDiff``: counter
deltas, histogram-quantile shifts (with the empty-vs-nonempty case
reported as a **new signal**, never a divide-by-zero), critpath
stage-blame deltas, skew top-k set churn, and per-subsystem wall-share
deltas.  A fingerprint classifier then maps the dominant delta to a
named cause ("server queue-wait grew", "transport charge grew",
"coalescer flush efficiency dropped", "interpreter overhead in marshal
grew", ...) so a failing gate ships its own root-cause hypothesis.

Direction convention: **A is the reference (baseline), B the candidate
(fresh run)** — relative changes are ``(b - a) / |a|``.  Wall-clock
fields (``wall_seconds``, ``events_per_sec``) are inherently noisy on
shared machines, so they only count as significant past a much wider
threshold; everything simulated uses ``rel_threshold`` directly, and a
same-seed self-diff of any deterministic artifact reports zero
significant deltas.

Everything is stdlib-only and deterministic (sorted iteration, no RNG),
like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import SLO_QUANTILES, percentile_summary

__all__ = [
    "FINGERPRINT_CODES",
    "detect_kind",
    "diff_paths",
    "diff_runs",
    "fingerprint",
    "load_artifact",
    "render_diff",
    "write_diff_json",
]

#: default relative-change significance threshold (10%)
DEFAULT_REL_THRESHOLD = 0.10

#: wall-clock metrics only count as significant past this threshold
NOISY_REL_THRESHOLD = 0.50

#: absolute share-point threshold for stage/subsystem blame shifts
SHARE_THRESHOLD = 0.05

#: key fragments marking wall-clock (machine-noisy) metrics
_NOISY_FRAGMENTS = ("wall", "events_per_sec", "elapsed")

#: config keys that define workload shape — differing values mean the two
#: runs measured different experiments, which trumps every other signal.
#: Tuning knobs (``sweep``, ``aggregation``, ``queue_bound``, window
#: sizes) are deliberately *not* here: an A/B over a knob is exactly what
#: the fingerprinter exists to explain.
_WORKLOAD_KEYS = (
    "scale", "nodes", "procs_per_node", "procs", "clients", "tenants",
    "ops_per_client", "keys_per_tenant", "events_processed", "seed",
    "theta", "sim_only", "scheduler",
)

#: tuning knobs: config keys an A/B experiment deliberately varies.  A
#: differing knob is listed under config changes but does *not* trigger
#: the workload-shape fingerprint — the interesting question is what the
#: knob change did, which the other rules answer.
_KNOB_KEYS = ("sweep", "aggregation", "queue_bound", "queue_bounds",
              "rpc_batch_size", "batch", "window", "shed_retries",
              "queue_frac", "retry_backoff", "rate_per_client", "mix",
              "queue_home", "pooling")

#: fields used to label rows when aligning lists of dicts across runs
_IDENTITY_FIELDS = ("app", "mode", "queue_bound", "stage", "subsystem",
                    "name", "partition", "key", "tenant", "cls")

#: quantile-ish keys compared inside a histogram-summary group
_QUANTILE_METRICS = ("mean", "p50", "p90", "p95", "p99", "p99.9", "max")


# -- artifact loading ---------------------------------------------------------

def detect_kind(doc) -> str:
    """Classify one loaded artifact (best-effort, never raises)."""
    if isinstance(doc, list):
        if all(isinstance(r, dict) and "span_id" in r for r in doc) and doc:
            return "spans"
        return "unknown"
    if not isinstance(doc, dict):
        return "unknown"
    bench = doc.get("benchmark")
    if isinstance(bench, str):
        return {
            "kernel_events_per_sec": "bench_kernel",
            "aggregation_sweep": "bench_agg",
            "serving_zipf": "bench_serving",
            "async_pipeline": "bench_async",
        }.get(bench, "bench")
    kind = doc.get("kind")
    if kind in ("flight_recorder", "critpath", "wall_profile", "run_diff"):
        return {"flight_recorder": "flight"}.get(kind, kind)
    if doc.get("records") and detect_kind(doc.get("records")) == "spans":
        return "spans"
    if doc and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        or (isinstance(v, dict)
            and ("n" in v or {"value", "peak"} <= set(v)))
        for v in doc.values()
    ):
        return "metrics"
    return "unknown"


def load_artifact(path: str) -> Tuple[str, Dict]:
    """Load one artifact file; ``.jsonl`` files parse as span logs."""
    if path.endswith(".jsonl"):
        records: List[Dict] = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return "spans", {"kind": "spans", "records": records}
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    kind = detect_kind(doc)
    if kind == "spans" and isinstance(doc, list):
        doc = {"kind": "spans", "records": doc}
    return kind, doc


# -- per-kind summarization (keeps the generic flatten tractable) -------------

def _summarize(kind: str, doc: Dict) -> Dict:
    """Reduce bulky artifacts to their comparable surface."""
    if kind == "spans":
        by_stage: Dict[str, List[float]] = {}
        for rec in doc.get("records", []):
            if isinstance(rec, dict) and isinstance(rec.get("dur"),
                                                    (int, float)):
                by_stage.setdefault(str(rec.get("name")), []).append(
                    float(rec["dur"]))
        return {
            "spans_total": sum(len(v) for v in by_stage.values()),
            "stage": {
                name: percentile_summary(durs, SLO_QUANTILES)
                for name, durs in sorted(by_stage.items())
            },
        }
    if kind == "flight":
        series_out: Dict[str, Dict] = {}
        for name, series in sorted((doc.get("series") or {}).items()):
            values = series.get("values") or []
            numeric = [v for v in values
                       if isinstance(v, (int, float))
                       and not isinstance(v, bool)]
            series_out[name] = {
                "points": len(values),
                "dropped": series.get("dropped", 0),
                "last": numeric[-1] if numeric else 0.0,
                "mean": (sum(numeric) / len(numeric)) if numeric else 0.0,
            }
        events: Dict[str, int] = {}
        for ev in doc.get("events") or []:
            if isinstance(ev, (list, tuple)) and len(ev) >= 2:
                events[str(ev[1])] = events.get(str(ev[1]), 0) + 1
        return {
            "samples": doc.get("samples", 0),
            "events_dropped": doc.get("events_dropped", 0),
            "series": series_out,
            "events": events,
        }
    if kind == "wall_profile":
        return {
            "wall_seconds": doc.get("wall_seconds", 0.0),
            "profiled_seconds": doc.get("profiled_seconds", 0.0),
            "scopes": {s.get("name"): {"wall_seconds": s.get("wall_seconds"),
                                       "count": s.get("count")}
                       for s in doc.get("scopes") or []
                       if isinstance(s, dict)},
        }
    if kind == "critpath":
        return {"traces": doc.get("traces", 0),
                "skipped": doc.get("skipped", 0)}
    return doc


# -- generic flattening -------------------------------------------------------

def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_quantile_group(value) -> bool:
    return (isinstance(value, dict) and _is_number(value.get("n"))
            and any(k == "mean" or (k.startswith("p") and
                                    k[1:2].isdigit())
                    for k in value))


def _row_labels(rows: Sequence[Dict]) -> Optional[Tuple[List[str], str]]:
    """Stable labels for a list of dict rows, aligned across runs.

    Prefers a coarse identity (``app``, ``mode``, ...) so an A/B over a
    knob (e.g. ``aggregation`` 512 vs 1) still aligns row-for-row.  When
    one identity owns several rows (a sweep), rows within the group are
    ranked by their knob value and labelled ``identity#rank`` — the
    baseline row of run A aligns with the baseline row of run B even
    when the swept values differ.  Returns ``(labels, field)`` — the
    identity field is folded into the label, so the caller drops it from
    the row body (a churned top-k list must not read as a workload
    change) — or None (positional labels) when no identity field covers
    every row.
    """
    for field in _IDENTITY_FIELDS:
        if all(field in r for r in rows):
            labels = [str(r[field]) for r in rows]
            if len(set(labels)) == len(labels):
                return labels, field
            if all("aggregation" in r for r in rows):
                order = sorted(
                    range(len(rows)),
                    key=lambda i: (labels[i], rows[i]["aggregation"], i))
                ranked = [""] * len(rows)
                rank_of: Dict[str, int] = {}
                for i in order:
                    rank = rank_of.get(labels[i], 0)
                    rank_of[labels[i]] = rank + 1
                    ranked[i] = f"{labels[i]}#{rank}"
                return ranked, field
    return None


def _flatten(node, prefix: str, counters: Dict[str, float],
             quantiles: Dict[str, Dict], configs: Dict[str, object]) -> None:
    if _is_quantile_group(node):
        quantiles[prefix] = node
        return
    if isinstance(node, dict):
        for key in sorted(node, key=str):
            sub = f"{prefix}/{key}" if prefix else str(key)
            _flatten(node[key], sub, counters, quantiles, configs)
        return
    if isinstance(node, list):
        if node and all(isinstance(r, dict) for r in node):
            labelling = _row_labels(node)
            labels, field = labelling if labelling else (None, None)
            for i, row in enumerate(node):
                label = labels[i] if labels else str(i)
                if field is not None:
                    row = {k: v for k, v in row.items() if k != field}
                _flatten(row, f"{prefix}[{label}]", counters, quantiles,
                         configs)
        else:
            configs[prefix] = json.dumps(node, sort_keys=True)
        return
    if _is_number(node):
        counters[prefix] = float(node)
    elif node is not None:
        configs[prefix] = node


def _flatten_doc(kind: str, doc: Dict):
    counters: Dict[str, float] = {}
    quantiles: Dict[str, Dict] = {}
    configs: Dict[str, object] = {}
    _flatten(_summarize(kind, doc), "", counters, quantiles, configs)
    return counters, quantiles, configs


# -- section diffs ------------------------------------------------------------

def _is_noisy(key: str) -> bool:
    lowered = key.lower()
    return any(frag in lowered for frag in _NOISY_FRAGMENTS)


def _counter_rows(ca: Dict[str, float], cb: Dict[str, float],
                  rel_threshold: float) -> List[Dict]:
    rows: List[Dict] = []
    for key in sorted(set(ca) | set(cb)):
        a, b = ca.get(key), cb.get(key)
        noisy = _is_noisy(key)
        threshold = max(rel_threshold, NOISY_REL_THRESHOLD) if noisy \
            else rel_threshold
        if a is None or (a == 0 and b not in (None, 0)):
            status, rel = "new_signal", None
            significant = not noisy and abs(b or 0.0) > 0
        elif b is None or (b == 0 and a != 0):
            status, rel = "gone", None
            significant = not noisy
        elif a == b:
            status, rel, significant = "unchanged", 0.0, False
        else:
            rel = (b - a) / abs(a) if a else 0.0
            status = "changed"
            significant = abs(rel) >= threshold
        if status == "unchanged":
            continue
        rows.append({
            "key": key,
            "a": a,
            "b": b,
            "delta": (b - a) if (a is not None and b is not None) else None,
            "rel": rel,
            "status": status,
            "noisy": noisy,
            "significant": significant,
        })
    rows.sort(key=lambda r: (not r["significant"],
                             -(abs(r["rel"]) if r["rel"] is not None
                               else float("inf")),
                             r["key"]))
    return rows


def _quantile_rows(qa: Dict[str, Dict], qb: Dict[str, Dict],
                   rel_threshold: float) -> List[Dict]:
    rows: List[Dict] = []
    for key in sorted(set(qa) | set(qb)):
        a, b = qa.get(key), qb.get(key)
        n_a = int((a or {}).get("n") or 0)
        n_b = int((b or {}).get("n") or 0)
        row: Dict = {"key": key, "n_a": n_a, "n_b": n_b, "noisy":
                     _is_noisy(key), "shifts": {}}
        if n_a == 0 and n_b == 0:
            continue
        if n_a == 0 and n_b > 0:
            # Empty-vs-nonempty is a *new signal* — quantiles of an empty
            # histogram are all 0.0, so relative shifts are undefined,
            # never a division.
            row.update(status="new_signal", significant=not row["noisy"])
            rows.append(row)
            continue
        if n_b == 0 and n_a > 0:
            row.update(status="gone", significant=not row["noisy"])
            rows.append(row)
            continue
        threshold = max(rel_threshold, NOISY_REL_THRESHOLD) \
            if row["noisy"] else rel_threshold
        significant = False
        for metric in _QUANTILE_METRICS:
            va, vb = a.get(metric), b.get(metric)
            if not (_is_number(va) and _is_number(vb)) or va == vb:
                continue
            if va == 0:
                shift = {"a": va, "b": vb, "rel": None,
                         "status": "new_signal"}
                shift_sig = True
            else:
                rel = (vb - va) / abs(va)
                shift = {"a": va, "b": vb, "rel": rel, "status": "changed"}
                shift_sig = abs(rel) >= threshold
            shift["significant"] = shift_sig
            row["shifts"][metric] = shift
            significant = significant or shift_sig
        if not row["shifts"]:
            continue
        row.update(status="changed", significant=significant)
        rows.append(row)
    rows.sort(key=lambda r: (not r["significant"], r["key"]))
    return rows


def _stage_shares(doc: Dict, which: str) -> Dict[str, float]:
    blame = doc.get(which) or {}
    return {s["stage"]: float(s.get("share") or 0.0)
            for s in blame.get("stages") or [] if isinstance(s, dict)}


def _critpath_section(a: Dict, b: Dict) -> Dict:
    out: Dict = {"rows": [], "significant": False}
    for which in ("overall", "slow"):
        sa, sb = _stage_shares(a, which), _stage_shares(b, which)
        for stage in sorted(set(sa) | set(sb)):
            delta = sb.get(stage, 0.0) - sa.get(stage, 0.0)
            if abs(delta) < 1e-12:
                continue
            significant = abs(delta) >= SHARE_THRESHOLD
            out["rows"].append({
                "blame": which,
                "stage": stage,
                "a": sa.get(stage, 0.0),
                "b": sb.get(stage, 0.0),
                "delta": delta,
                "significant": significant,
            })
            out["significant"] = out["significant"] or significant
    out["rows"].sort(key=lambda r: (not r["significant"],
                                    -abs(r["delta"]), r["blame"],
                                    r["stage"]))
    return out


def _profile_section(a: Dict, b: Dict) -> Dict:
    def shares(doc):
        return {s["subsystem"]: float(s.get("share") or 0.0)
                for s in doc.get("subsystems") or [] if isinstance(s, dict)}
    sa, sb = shares(a), shares(b)
    out: Dict = {"rows": [], "significant": False,
                 "wall_seconds_a": a.get("wall_seconds", 0.0),
                 "wall_seconds_b": b.get("wall_seconds", 0.0)}
    for subsystem in sorted(set(sa) | set(sb)):
        delta = sb.get(subsystem, 0.0) - sa.get(subsystem, 0.0)
        if abs(delta) < 1e-12:
            continue
        significant = abs(delta) >= SHARE_THRESHOLD
        out["rows"].append({
            "subsystem": subsystem,
            "a": sa.get(subsystem, 0.0),
            "b": sb.get(subsystem, 0.0),
            "delta": delta,
            "significant": significant,
        })
        out["significant"] = out["significant"] or significant
    out["rows"].sort(key=lambda r: (not r["significant"],
                                    -abs(r["delta"]), r["subsystem"]))
    return out


def _find_skew(doc) -> Optional[Dict]:
    """First skew summary embedded anywhere in the document."""
    if isinstance(doc, dict):
        if "top_partitions" in doc or "top_keys" in doc:
            return doc
        for key in sorted(doc, key=str):
            found = _find_skew(doc[key])
            if found is not None:
                return found
    elif isinstance(doc, list):
        for item in doc:
            found = _find_skew(item)
            if found is not None:
                return found
    return None


def _topk_churn(a_rows: List[Dict], b_rows: List[Dict],
                field: str) -> Dict:
    sa = {str(r.get(field)) for r in a_rows or [] if isinstance(r, dict)}
    sb = {str(r.get(field)) for r in b_rows or [] if isinstance(r, dict)}
    union = sa | sb
    jaccard = (len(sa & sb) / len(union)) if union else 1.0
    return {
        "entered": sorted(sb - sa),
        "left": sorted(sa - sb),
        "jaccard": jaccard,
    }


def _skew_section(a: Dict, b: Dict) -> Optional[Dict]:
    skew_a, skew_b = _find_skew(a), _find_skew(b)
    if skew_a is None or skew_b is None:
        return None
    partitions = _topk_churn(skew_a.get("top_partitions"),
                             skew_b.get("top_partitions"), "partition")
    keys = _topk_churn(skew_a.get("top_keys"), skew_b.get("top_keys"),
                       "key")
    imb_a = float(skew_a.get("imbalance") or 0.0)
    imb_b = float(skew_b.get("imbalance") or 0.0)
    churned = min(partitions["jaccard"], keys["jaccard"]) < 0.7
    return {
        "partitions": partitions,
        "keys": keys,
        "imbalance_a": imb_a,
        "imbalance_b": imb_b,
        "imbalance_delta": imb_b - imb_a,
        "significant": churned or abs(imb_b - imb_a) >=
        max(0.25, 0.1 * max(imb_a, 1.0)),
    }


# -- fingerprint classifier ---------------------------------------------------

#: every cause the classifier can emit, with its human-readable label
FINGERPRINT_CODES: Dict[str, str] = {
    "workload-shape-changed": "runs measured different workloads",
    "coalesce-efficiency-dropped": "coalescer flush efficiency dropped",
    "server-queue-wait-grew": "server queue-wait grew",
    "transport-charge-grew": "transport charge grew",
    "server-execute-grew": "server execute time grew",
    "marshal-overhead-grew": "interpreter overhead in marshal grew",
    "kernel-overhead-grew": "DES kernel wall overhead grew",
    "load-shedding-increased": "load shedding increased",
    "hot-set-churned": "hot partition/key set churned",
    "latency-tail-grew": "latency tail grew",
    "throughput-dropped": "throughput dropped",
    "no-significant-change": "no significant change",
}


def _counter_signal(rows: List[Dict], fragments: Sequence[str],
                    direction: int) -> Tuple[float, Optional[str]]:
    """Strongest significant counter move matching ``fragments``.

    Returns ``(magnitude, evidence)`` where magnitude is |rel| clamped to
    1.0 (new/gone signals count as 1.0).  ``direction`` +1 matches
    increases, -1 decreases.
    """
    best, evidence = 0.0, None
    for row in rows:
        if not row["significant"]:
            continue
        key = row["key"].lower()
        if not any(frag in key for frag in fragments):
            continue
        rel = row["rel"]
        if rel is None:
            grew = row["status"] == "new_signal"
            if (direction > 0) != grew:
                continue
            magnitude = 1.0
            desc = row["status"].replace("_", " ")
        else:
            if (rel > 0) != (direction > 0):
                continue
            magnitude = min(1.0, abs(rel))
            desc = f"{rel:+.0%}"
        if magnitude > best:
            best = magnitude
            evidence = f"{row['key']} {desc} ({row['a']} -> {row['b']})"
    return best, evidence


def _quantile_signal(rows: List[Dict], fragments: Sequence[str],
                     metrics: Sequence[str],
                     direction: int) -> Tuple[float, Optional[str]]:
    best, evidence = 0.0, None
    for row in rows:
        key = row["key"].lower()
        if not any(frag in key for frag in fragments):
            continue
        if row.get("status") == "new_signal" and direction > 0:
            if 1.0 > best:
                best, evidence = 1.0, f"{row['key']} appeared (new signal)"
            continue
        for metric in metrics:
            shift = row.get("shifts", {}).get(metric)
            if not shift or not shift["significant"]:
                continue
            rel = shift["rel"]
            if rel is None:
                magnitude, desc = 1.0, "new signal"
                if direction < 0:
                    continue
            else:
                if (rel > 0) != (direction > 0):
                    continue
                magnitude, desc = min(1.0, abs(rel)), f"{rel:+.0%}"
            if magnitude > best:
                best = magnitude
                evidence = f"{row['key']}.{metric} {desc}"
    return best, evidence


def _share_signal(section: Optional[Dict], row_key: str,
                  names: Sequence[str],
                  direction: int) -> Tuple[float, Optional[str]]:
    if not section:
        return 0.0, None
    best, evidence = 0.0, None
    for row in section["rows"]:
        if not row["significant"]:
            continue
        if row.get(row_key) not in names:
            continue
        delta = row["delta"]
        if (delta > 0) != (direction > 0):
            continue
        magnitude = min(1.0, abs(delta) / 0.25)
        if magnitude > best:
            best = magnitude
            evidence = (f"{row.get('blame', 'wall')} share of "
                        f"{row[row_key]}: {row['a']:.1%} -> {row['b']:.1%}")
    return best, evidence


def fingerprint(diff: Dict) -> Dict:
    """Name the dominant cause behind a RunDiff.

    Each candidate cause scores ``weight x magnitude`` from the section
    deltas that support it; the best-scoring cause wins.  Specific causes
    (coalescer efficiency, queue wait, transport charge, marshal
    overhead) outweigh the generic ones (tail grew, throughput dropped),
    so the report names a mechanism whenever the data supports one.
    """
    counters = diff["counters"]["rows"]
    quantiles = diff["quantiles"]["rows"]
    critpath = diff.get("critpath")
    profile = diff.get("profile")
    skew = diff.get("skew")

    candidates: List[Tuple[float, str, str]] = []

    shape_changes = [c for c in diff["config_changes"]
                     if not c.get("knob")]
    if shape_changes:
        change = shape_changes[0]
        candidates.append((
            100.0, "workload-shape-changed",
            f"{change['key']}: {change['a']!r} -> {change['b']!r}"))

    mag, ev = _counter_signal(counters, ("ops_per_flush",), -1)
    mag2, ev2 = _counter_signal(counters, ("/flushes", "flushes"), +1)
    if mag or mag2:
        candidates.append((10.0 * max(mag, mag2), "coalesce-efficiency-dropped",
                           ev if mag >= mag2 else ev2))

    mag, ev = _counter_signal(counters, ("queue_wait", "server.queue",
                                         "server/queue"), +1)
    mag2, ev2 = _quantile_signal(quantiles, ("queue_wait", "server.queue",
                                             "server.wait"),
                                 ("p99", "p95", "mean"), +1)
    mag3, ev3 = _share_signal(critpath, "stage", ("server.queue",
                                                  "server.wait"), +1)
    best = max(mag, mag2, mag3)
    if best:
        candidates.append((9.0 * best, "server-queue-wait-grew",
                           {mag: ev, mag2: ev2, mag3: ev3}[best]))

    mag, ev = _share_signal(critpath, "stage", ("transport", "client.send",
                                                "rpc.deliver"), +1)
    mag2, ev2 = _counter_signal(counters, ("transport", "charge"), +1)
    best = max(mag, mag2)
    if best:
        candidates.append((9.0 * best, "transport-charge-grew",
                           ev if mag >= mag2 else ev2))

    mag, ev = _share_signal(critpath, "stage", ("server.execute",), +1)
    if mag:
        candidates.append((8.0 * mag, "server-execute-grew", ev))

    mag, ev = _share_signal(profile, "subsystem", ("marshal",), +1)
    mag2, ev2 = _share_signal(critpath, "stage", ("client.marshal",), +1)
    best = max(mag, mag2)
    if best:
        candidates.append((8.0 * best, "marshal-overhead-grew",
                           ev if mag >= mag2 else ev2))

    mag, ev = _share_signal(profile, "subsystem", ("kernel",), +1)
    if mag:
        candidates.append((7.0 * mag, "kernel-overhead-grew", ev))

    mag, ev = _counter_signal(counters, ("shed",), +1)
    if mag:
        candidates.append((8.0 * mag, "load-shedding-increased", ev))

    if skew and skew["significant"]:
        churn = 1.0 - min(skew["partitions"]["jaccard"],
                          skew["keys"]["jaccard"])
        candidates.append((
            6.0 * max(churn, 0.2), "hot-set-churned",
            f"top-k jaccard partitions {skew['partitions']['jaccard']:.2f} "
            f"keys {skew['keys']['jaccard']:.2f}, imbalance "
            f"{skew['imbalance_a']:.2f} -> {skew['imbalance_b']:.2f}"))

    mag, ev = _quantile_signal(quantiles, ("",), ("p99.9", "p99", "p95"), +1)
    if mag:
        candidates.append((5.0 * mag, "latency-tail-grew", ev))

    mag, ev = _counter_signal(counters, ("ops_per_sim_sec", "events_per_sec",
                                         "speedup", "throughput"), -1)
    if mag:
        candidates.append((4.0 * mag, "throughput-dropped", ev))

    if not candidates:
        return {"code": "no-significant-change",
                "label": FINGERPRINT_CODES["no-significant-change"],
                "evidence": "", "score": 0.0}
    candidates.sort(key=lambda c: (-c[0], c[1]))
    score, code, evidence = candidates[0]
    return {
        "code": code,
        "label": FINGERPRINT_CODES[code],
        "evidence": evidence or "",
        "score": score,
        "runners_up": [
            {"code": c, "label": FINGERPRINT_CODES[c], "score": s,
             "evidence": e or ""}
            for s, c, e in candidates[1:4]
        ],
    }


# -- top level ----------------------------------------------------------------

def diff_runs(a_doc: Dict, b_doc: Dict, a_name: str = "A",
              b_name: str = "B",
              rel_threshold: float = DEFAULT_REL_THRESHOLD,
              top: int = 40) -> Dict:
    """Structured RunDiff between two loaded artifacts (A = reference)."""
    kind_a, kind_b = detect_kind(a_doc), detect_kind(b_doc)
    ca, qa, cfg_a = _flatten_doc(kind_a, a_doc)
    cb, qb, cfg_b = _flatten_doc(kind_b, b_doc)

    def _is_knob(key: str) -> bool:
        tail = key.rsplit("/", 1)[-1]
        return tail in _KNOB_KEYS

    config_changes = []
    for key in sorted(set(cfg_a) | set(cfg_b)):
        if cfg_a.get(key) != cfg_b.get(key):
            config_changes.append({"key": key, "a": cfg_a.get(key),
                                   "b": cfg_b.get(key),
                                   "knob": _is_knob(key)})
    for key in _WORKLOAD_KEYS:
        va, vb = ca.get(key), cb.get(key)
        if va != vb:
            config_changes.append({"key": key, "a": va, "b": vb,
                                   "knob": False})
    # Numeric knob settings (rpc_batch_size, aggregation, ...) flatten
    # into the counter dicts, but they are settings, not measurements:
    # report them as knob config changes and keep them out of the
    # counter-delta section.
    knob_keys = [k for k in set(ca) | set(cb) if _is_knob(k)]
    for key in sorted(knob_keys):
        if ca.get(key) != cb.get(key):
            config_changes.append({"key": key, "a": ca.get(key),
                                   "b": cb.get(key), "knob": True})
        ca.pop(key, None)
        cb.pop(key, None)
    seen_cfg = set()
    config_changes = [
        c for c in sorted(config_changes, key=lambda c: c["key"])
        if not (c["key"] in seen_cfg or seen_cfg.add(c["key"]))
    ]
    workload_keys = set(_WORKLOAD_KEYS)
    ca = {k: v for k, v in ca.items() if k not in workload_keys}
    cb = {k: v for k, v in cb.items() if k not in workload_keys}

    counter_rows = _counter_rows(ca, cb, rel_threshold)
    quantile_rows = _quantile_rows(qa, qb, rel_threshold)

    critpath = _critpath_section(a_doc, b_doc) \
        if kind_a == kind_b == "critpath" else None
    profile = _profile_section(a_doc, b_doc) \
        if kind_a == kind_b == "wall_profile" else None
    skew = _skew_section(a_doc, b_doc)

    n_sig_counters = sum(1 for r in counter_rows if r["significant"])
    n_sig_quantiles = sum(1 for r in quantile_rows if r["significant"])
    diff: Dict = {
        "kind": "run_diff",
        "a": {"name": a_name, "artifact": kind_a},
        "b": {"name": b_name, "artifact": kind_b},
        "comparable": kind_a == kind_b and kind_a != "unknown",
        "rel_threshold": rel_threshold,
        "config_changes": config_changes,
        "counters": {
            "rows": counter_rows[:max(top, n_sig_counters)],
            "total": len(counter_rows),
            "significant": n_sig_counters,
        },
        "quantiles": {
            "rows": quantile_rows[:max(top, n_sig_quantiles)],
            "total": len(quantile_rows),
            "significant": n_sig_quantiles,
        },
        "critpath": critpath,
        "profile": profile,
        "skew": skew,
    }
    diff["significant"] = bool(
        config_changes
        or n_sig_counters
        or n_sig_quantiles
        or (critpath and critpath["significant"])
        or (profile and profile["significant"])
        or (skew and skew["significant"])
    )
    diff["fingerprint"] = fingerprint(diff)
    return diff


def diff_paths(a_path: str, b_path: str,
               rel_threshold: float = DEFAULT_REL_THRESHOLD,
               top: int = 40) -> Dict:
    """Load two artifact files and diff them (A = reference/baseline)."""
    _kind_a, a_doc = load_artifact(a_path)
    _kind_b, b_doc = load_artifact(b_path)
    return diff_runs(a_doc, b_doc, a_name=a_path, b_name=b_path,
                     rel_threshold=rel_threshold, top=top)


# -- rendering ----------------------------------------------------------------

def _fmt_val(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_diff(diff: Dict, max_rows: int = 20) -> str:
    """Markdown forensics report for one RunDiff."""
    fp = diff["fingerprint"]
    lines = [
        f"## Run forensics: {diff['a']['name']} vs {diff['b']['name']}",
        "",
        f"- artifacts: `{diff['a']['artifact']}` vs "
        f"`{diff['b']['artifact']}`"
        + ("" if diff["comparable"] else " — **not directly comparable**"),
        f"- significant change: **{'yes' if diff['significant'] else 'no'}**"
        f" (threshold {diff['rel_threshold']:.0%})",
        f"- **fingerprint: {fp['label']}** (`{fp['code']}`)"
        + (f" — {fp['evidence']}" if fp.get("evidence") else ""),
    ]
    if diff["config_changes"]:
        lines += ["", "### Workload / config changes", ""]
        for change in diff["config_changes"][:max_rows]:
            lines.append(f"- `{change['key']}`: {change['a']!r} -> "
                         f"{change['b']!r}")
    rows = [r for r in diff["counters"]["rows"]][:max_rows]
    if rows:
        lines += ["", "### Counter deltas "
                  f"({diff['counters']['significant']} significant of "
                  f"{diff['counters']['total']} changed)", "",
                  "| metric | A | B | Δ | rel | status |",
                  "|---|---|---|---|---|---|"]
        for r in rows:
            rel = f"{r['rel']:+.1%}" if r["rel"] is not None else "-"
            flag = "**" if r["significant"] else ""
            lines.append(
                f"| {flag}`{r['key']}`{flag} | {_fmt_val(r['a'])} | "
                f"{_fmt_val(r['b'])} | {_fmt_val(r['delta'])} | {rel} | "
                f"{r['status']}{' (noisy)' if r['noisy'] else ''} |")
    qrows = diff["quantiles"]["rows"][:max_rows]
    if qrows:
        lines += ["", "### Histogram / quantile shifts "
                  f"({diff['quantiles']['significant']} significant of "
                  f"{diff['quantiles']['total']} changed)", ""]
        for r in qrows:
            if r["status"] in ("new_signal", "gone"):
                lines.append(f"- `{r['key']}`: **{r['status'].replace('_', ' ')}**"
                             f" (n {r['n_a']} -> {r['n_b']})")
                continue
            def _shift_txt(m, s):
                rel = ("new" if s["rel"] is None else
                       format(s["rel"], "+.0%"))
                return f"{m} {s['a']:.4g}->{s['b']:.4g} ({rel})"
            shifts = ", ".join(
                _shift_txt(m, s)
                for m, s in r["shifts"].items() if s["significant"]
            ) or ", ".join(_shift_txt(m, s)
                           for m, s in list(r["shifts"].items())[:3])
            lines.append(f"- `{r['key']}` (n {r['n_a']}->{r['n_b']}): {shifts}")
    if diff.get("critpath") and diff["critpath"]["rows"]:
        lines += ["", "### Critical-path stage blame", "",
                  "| blame | stage | A share | B share | Δ |",
                  "|---|---|---|---|---|"]
        for r in diff["critpath"]["rows"][:max_rows]:
            flag = "**" if r["significant"] else ""
            lines.append(f"| {r['blame']} | {flag}{r['stage']}{flag} | "
                         f"{r['a']:.1%} | {r['b']:.1%} | {r['delta']:+.1%} |")
    if diff.get("profile") and diff["profile"]["rows"]:
        lines += ["", "### Wall-clock subsystem shares", "",
                  f"wall {diff['profile']['wall_seconds_a']:.3f}s -> "
                  f"{diff['profile']['wall_seconds_b']:.3f}s", "",
                  "| subsystem | A share | B share | Δ |",
                  "|---|---|---|---|"]
        for r in diff["profile"]["rows"][:max_rows]:
            flag = "**" if r["significant"] else ""
            lines.append(f"| {flag}{r['subsystem']}{flag} | {r['a']:.1%} | "
                         f"{r['b']:.1%} | {r['delta']:+.1%} |")
    if diff.get("skew"):
        skew = diff["skew"]
        lines += ["", "### Skew top-k churn", "",
                  f"- imbalance {skew['imbalance_a']:.2f} -> "
                  f"{skew['imbalance_b']:.2f}",
                  f"- partitions jaccard {skew['partitions']['jaccard']:.2f}"
                  f" (entered: {', '.join(skew['partitions']['entered']) or '-'};"
                  f" left: {', '.join(skew['partitions']['left']) or '-'})",
                  f"- keys jaccard {skew['keys']['jaccard']:.2f}"
                  f" (entered: {', '.join(skew['keys']['entered']) or '-'};"
                  f" left: {', '.join(skew['keys']['left']) or '-'})"]
    if fp.get("runners_up"):
        lines += ["", "### Runner-up causes", ""]
        for r in fp["runners_up"]:
            lines.append(f"- {r['label']} (`{r['code']}`, score "
                         f"{r['score']:.2f})"
                         + (f" — {r['evidence']}" if r["evidence"] else ""))
    lines.append("")
    return "\n".join(lines)


def write_diff_json(diff: Dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(diff, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
