"""Flight recorder: continuous zero-perturbation registry sampling.

The Fig-4 telemetry harness samples a handful of hand-picked probes at
pre-armed times, which requires a dry run to learn the workload duration.
The :class:`FlightRecorder` generalizes that into a black-box recorder:
it snapshots *selected registry metrics* — counter/gauge values and
histogram quantiles — into sim-time-indexed :class:`TimeSeries` ring
buffers at a fixed cadence, with no dry run and no knowledge of when the
workload ends.

It reuses the :meth:`~repro.simnet.trace.Sampler.pump` driving discipline
(PR 5) for the same **zero-perturbation** guarantee: the clock only
advances by processing real events, or by jumping across an idle gap the
unrecorded run would cross anyway.  ``recorder.pump`` is a drop-in
replacement for ``Cluster.run`` — harnesses install it with
``cluster.run = recorder.pump`` exactly like the telemetry sampler — so
a recorded run retires the identical event sequence (identical simulated
results) as an unrecorded one; only the sampled series differ from
nothing at all.

Per-tick listeners (the skew detector and SLO monitor) hang off
:meth:`add_listener` and share the recorder's :class:`EventLog`, so one
pump drives the whole monitoring stack.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry, registry_of
from repro.simnet.stats import Counter, Gauge, Histogram
from repro.simnet.trace import EventLog, TimeSeries

__all__ = ["FlightRecorder", "select_matches"]


def select_matches(name: str, selectors: Optional[Sequence[str]]) -> bool:
    """True when a metric name matches any selector (or there are none).

    Selector shapes, mirroring the registry's naming scheme:

    * trailing ``/`` or ``.`` — prefix match (``"serving/"``,
      ``"serving-map."``);
    * trailing ``*`` — raw prefix match for instance-numbered families
      (``"rpcc*"`` catches ``rpcc0/...``, ``rpcc1/...``);
    * leading ``/`` — component-anchored suffix match (``"/ops"``);
    * otherwise — exact name.
    """
    if not selectors:
        return True
    for sel in selectors:
        if not sel:
            continue
        if sel[-1] in "/.":
            if name.startswith(sel):
                return True
        elif sel[-1] == "*":
            if name.startswith(sel[:-1]):
                return True
        elif sel[0] == "/":
            if name.endswith(sel):
                return True
        elif name == sel:
            return True
    return False


class FlightRecorder:
    """Whole-registry sampler with bounded ring-buffer series.

    Parameters
    ----------
    sim:
        The simulation to record (its lazily-attached registry is read).
    interval:
        Sampling cadence in sim-seconds.
    maxlen:
        Ring-buffer bound per series — only the most recent ``maxlen``
        samples are retained (``TimeSeries.dropped`` counts evictions).
    select:
        Metric-name selectors (see :func:`select_matches`); ``None``
        records the entire registry.
    quantiles:
        The quantile series recorded per histogram (``{name}/p99`` etc.),
        alongside the sample-count series ``{name}/n``.
    event_limit:
        Bound on the shared :class:`EventLog` (alerts, skew events).
    """

    def __init__(self, sim, interval: float, maxlen: int = 512,
                 select: Optional[Sequence[str]] = None,
                 quantiles: Sequence[float] = (0.5, 0.99),
                 event_limit: int = 4096):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.sim = sim
        self.registry: MetricsRegistry = registry_of(sim)
        self.interval = interval
        self.maxlen = maxlen
        self.select = list(select) if select is not None else None
        self.quantiles = tuple(quantiles)
        self.series: Dict[str, TimeSeries] = {}
        self.events = EventLog(sim, limit=event_limit)
        self.samples = 0
        self._listeners: List[Callable[[float], None]] = []
        self._next: Optional[float] = None

    # -- wiring ---------------------------------------------------------------
    def add_listener(self, fn: Callable[[float], None]) -> None:
        """Register a per-tick hook ``fn(now)`` (skew/SLO monitors)."""
        self._listeners.append(fn)

    def install(self, cluster) -> "FlightRecorder":
        """Route ``cluster.run`` through :meth:`pump` (instance attr)."""
        cluster.run = self.pump
        return self

    # -- sampling -------------------------------------------------------------
    def _series(self, name: str) -> TimeSeries:
        ts = self.series.get(name)
        if ts is None:
            ts = TimeSeries(name, maxlen=self.maxlen)
            self.series[name] = ts
        return ts

    def tick(self) -> None:
        """Record one sample of every selected metric at the current time.

        Metrics are visited in sorted-name order and series are created
        lazily, so metrics registered mid-run simply start recording at
        their first post-registration tick — deterministically.
        """
        now = self.sim.now
        self.samples += 1
        registry = self.registry
        for name in registry.names():
            if not select_matches(name, self.select):
                continue
            metric = registry.get(name)
            if isinstance(metric, (Counter, Gauge)):
                self._series(name).record(now, metric.value)
            elif isinstance(metric, Histogram):
                self._series(f"{name}/n").record(now, float(metric.n))
                for q in self.quantiles:
                    self._series(f"{name}/p{100 * q:g}").record(
                        now, metric.quantile(q))
        for fn in self._listeners:
            fn(now)

    def pump(self, until: Optional[float] = None) -> float:
        """Run the simulation, sampling every ``interval`` sim-seconds.

        Same zero-perturbation contract as
        :meth:`~repro.simnet.trace.Sampler.pump`, with a continuous
        cadence instead of a pre-armed sample list: the clock advances
        only through real events or idle-gap jumps the unrecorded run
        would cross anyway, and in drain mode a pending sample with no
        real event left simply lapses (or waits for a later ``pump``
        call in multi-phase workloads).  After a long inter-phase gap the
        cadence re-anchors at the current time rather than replaying
        every missed nominal tick.
        """
        sim = self.sim
        inf = float("inf")
        if self._next is None:
            self._next = sim.now + self.interval
        while True:
            nxt = self._next
            if until is not None and nxt > until:
                break
            if sim.now >= nxt:
                self.tick()
                nxt += self.interval
                if nxt <= sim.now:  # re-anchor after an inter-phase gap
                    nxt = sim.now + self.interval
                self._next = nxt
                continue
            p = sim.peek()
            if p <= nxt:
                sim.step()
            elif p != inf or until is not None:
                # Idle gap the unrecorded clock crosses anyway — a later
                # real event exists, or ``run(until=...)`` pads past it.
                sim.run(until=nxt)
            else:
                break  # drain mode, nothing pending: the sample lapses
        sim.run(until=until)
        return sim.now

    # -- views & export -------------------------------------------------------
    def rate(self, name: str) -> TimeSeries:
        """Per-second derivative view of one recorded series."""
        ts = self.series.get(name)
        if ts is None:
            return TimeSeries(f"{name}/rate" if name else "rate",
                              maxlen=self.maxlen)
        return ts.rate_series()

    def payload(self) -> Dict:
        """JSON-ready artifact: sorted series + the shared event log.

        Everything is simulated state, so same-seed reruns produce
        byte-identical payloads (the CI flight-recorder leg diffs them).
        """
        return {
            "kind": "flight_recorder",
            "interval": self.interval,
            "maxlen": self.maxlen,
            "quantiles": list(self.quantiles),
            "samples": self.samples,
            "series": {
                name: {
                    "times": list(ts.times),
                    "values": list(ts.values),
                    "dropped": ts.dropped,
                }
                for name, ts in sorted(self.series.items())
            },
            "events": [[t, kind, payload]
                       for (t, kind, payload) in self.events.entries],
            "events_dropped": self.events.dropped,
        }
