"""Span tracing across the RoR pipeline.

A traced RPC produces one **root span** (``rpc.<op>``) covering the
invocation's full simulated lifetime, plus child spans for each pipeline
stage.  The client-side stages are *contiguous* — each starts exactly
where the previous one ends — so their durations sum to the op's
end-to-end latency by construction:

fair-weather path
    ``client.marshal`` -> ``client.send`` -> ``server.wait`` ->
    ``client.pull`` -> ``client.settle``

hardened (retry/backoff) path
    ``client.marshal`` -> ``rpc.deliver`` (send + retransmissions +
    completion wait) -> ``client.pull`` -> ``client.settle``

Server-side detail spans (``server.queue``, the NIC work-queue wait, and
``server.execute``, the handler run) nest *inside* the ``server.wait``
interval; a coalesced flush additionally gets a ``coalesce.buffer``
parent covering first-append -> flush.  Exporters in
:mod:`repro.obs.exporters` turn the span list into a JSON-lines log or a
Chrome ``trace_event`` file loadable in Perfetto.

Tracing is **pure observation**: spans record ``sim.now`` at stage
boundaries and never schedule events, acquire resources, or consume RNG
draws — so a traced run retires the identical event sequence (and
therefore identical simulated results) as an untraced one, and an
untraced run pays only a ``None``-check per RPC.

The tracer's clock is pluggable (any zero-arg float callable), so the
same machinery traces wall-clock phases of host-side benchmarks
(``kernelbench --trace``) with ``time.perf_counter``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "STAGE_NAMES", "install_tracer", "tracer_of"]

#: attribute the tracer hangs off a Simulator when installed
_SIM_ATTR = "_obs_tracer"

#: the contiguous client-side stages that tile a root RPC span.  Exactly
#: one of {client.send + server.wait, rpc.deliver} appears per RPC.
STAGE_NAMES = frozenset({
    "client.marshal",
    "client.send",
    "server.wait",
    "rpc.deliver",
    "client.pull",
    "client.settle",
})


class Span:
    """One timed interval in a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start", "end", "attrs")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, node: Optional[int], start: float,
                 attrs: Optional[Dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover
        state = f"{self.duration:.3g}s" if self.finished else "open"
        return f"<Span {self.name} #{self.span_id} {state}>"


class Tracer:
    """Collects spans for one simulation (or one wall-clock harness).

    Span and trace ids are drawn from plain counters, so identical runs
    produce identical span logs — the determinism CI leg diffs them.
    """

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self.spans: List[Span] = []
        self._next_span = 0
        self._next_trace = 0

    # -- creation -------------------------------------------------------------
    def begin(self, name: str, parent: Optional[Span] = None,
              node: Optional[int] = None,
              attrs: Optional[Dict] = None) -> Span:
        """Open a span starting now; finish it with :meth:`finish`.

        Without ``parent`` the span roots a new trace; with one it joins
        the parent's trace (this is how op ids thread through the RPC
        envelope: the request carries the root span, and every stage hangs
        off it).
        """
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id = self._next_trace
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(trace_id, self._next_span, parent_id, name, node,
                    self.clock(), attrs)
        self.spans.append(span)
        return span

    def finish(self, span: Span, end: Optional[float] = None) -> Span:
        if span.end is None:
            span.end = self.clock() if end is None else end
        return span

    def record(self, name: str, start: float, end: float,
               parent: Optional[Span] = None, node: Optional[int] = None,
               attrs: Optional[Dict] = None) -> Span:
        """Record an already-elapsed interval as a complete span.

        The RPC stage hooks use this: the stage boundary times are read
        off ``sim.now`` as the protocol runs, and the span is recorded in
        one shot when the stage closes.
        """
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id = self._next_trace
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(trace_id, self._next_span, parent_id, name, node,
                    start, attrs)
        span.end = end
        self.spans.append(span)
        return span

    # -- queries --------------------------------------------------------------
    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def stage_children(self, root: Span) -> List[Span]:
        """The tiling client-side stage spans of one RPC root."""
        return [s for s in self.children_of(root) if s.name in STAGE_NAMES]

    def stage_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-stage totals across all finished spans: n / total / mean."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if not span.finished:
                continue
            row = out.setdefault(span.name, {"n": 0, "total": 0.0})
            row["n"] += 1
            row["total"] += span.duration
        for row in out.values():
            row["mean"] = row["total"] / row["n"] if row["n"] else 0.0
        return out

    def __len__(self) -> int:
        return len(self.spans)


def install_tracer(sim_or_cluster) -> Tracer:
    """Install (or return the already-installed) tracer for a simulation.

    Accepts a :class:`~repro.simnet.core.Simulator` or anything exposing
    ``.sim`` (Cluster, HCL).  The tracer's clock is the simulation clock.
    """
    sim = getattr(sim_or_cluster, "sim", sim_or_cluster)
    tracer = getattr(sim, _SIM_ATTR, None)
    if tracer is None:
        tracer = Tracer(clock=lambda: sim.now)
        setattr(sim, _SIM_ATTR, tracer)
    return tracer


def tracer_of(sim) -> Optional[Tracer]:
    """The simulation's tracer, or None when tracing is off (the default)."""
    return getattr(sim, _SIM_ATTR, None)
