"""The per-simulation metrics registry.

Before this module, every layer built its own ``Counter``/``Gauge``/
``Histogram`` objects ad hoc — the fabric links, the NIC, the RPC client
and server, the coalescer, the fault injector all held private metric
instances with no way to enumerate or export them.  The registry is the
single factory those layers now share: metrics are namespaced by the
same ``<owner>/<metric>`` names they always carried, created lazily on
first request, and returned by identity on repeat lookups (two layers
asking for the same name observe the same metric).

One registry exists per :class:`~repro.simnet.core.Simulator`, attached
lazily by :func:`registry_of` — every layer already holds the ``sim``,
so no constructor signatures change and two independent simulations
(e.g. an A/B benchmark pair) never share state.

Registration is zero-cost on the simulated timeline: factories allocate
plain Python objects and never schedule events, so a run with the
registry is bit-identical to one without it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

from typing import Sequence

from repro.simnet.stats import Counter, Gauge, Histogram

__all__ = [
    "MetricsRegistry",
    "SLO_QUANTILES",
    "percentile_summary",
    "registry_of",
]

#: serving-SLO quantile set (p50/p95/p99/p99.9) — the tail percentiles the
#: serving harness and its BENCH_serving.json report
SLO_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99, 0.999)

#: the registry snapshot's historical quantile set (p50/p90/p99)
_SNAPSHOT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def percentile_summary(
    source: Union[Histogram, Sequence[float]],
    qs: Sequence[float] = _SNAPSHOT_QUANTILES,
) -> Dict[str, float]:
    """One ``{n, mean, min, max, p50, ...}`` dict for any latency source.

    The single quantile-extraction path every harness summary goes
    through: pass a :class:`~repro.simnet.stats.Histogram` (bucketed
    estimates via :meth:`~repro.simnet.stats.Histogram.percentiles`) or a
    plain value sequence (exact nearest-rank quantiles).  Keys follow the
    histogram convention — ``0.999`` becomes ``"p99.9"``.
    """
    if isinstance(source, Histogram):
        return {
            "n": source.n,
            "mean": source.mean(),
            "min": source.min or 0.0,
            "max": source.max or 0.0,
            **source.percentiles(qs),
        }
    values = sorted(source)
    n = len(values)
    out = {
        "n": n,
        "mean": sum(values) / n if n else 0.0,
        "min": values[0] if n else 0.0,
        "max": values[-1] if n else 0.0,
    }
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantiles must be in [0,1]")
        if n == 0:
            out[f"p{100 * q:g}"] = 0.0
        else:
            # Nearest-rank: the smallest value with cumulative share >= q.
            rank = max(0, min(n - 1, math.ceil(q * n) - 1))
            out[f"p{100 * q:g}"] = values[rank]
    return out

#: attribute the registry hangs off a Simulator (created lazily)
_SIM_ATTR = "_obs_metrics"

Metric = Union[Counter, Gauge, Histogram]


def _suffix_matches(name: str, suffix: str) -> bool:
    """True when ``suffix`` matches ``name`` at a name-component boundary.

    Rollup suffixes address trailing ``/``-separated components, not raw
    character tails: ``"retries"`` matches ``"rpcc0/retries"`` and a
    metric literally named ``"retries"``, but must *not* silently absorb
    ``"rpc/window_retries"``.  A suffix that already starts with ``/``
    (the idiomatic ``"/retries"`` form) is boundary-anchored by
    construction.
    """
    if not name.endswith(suffix):
        return False
    if len(name) == len(suffix) or suffix.startswith("/"):
        return True
    return name[-len(suffix) - 1] == "/"


class MetricsRegistry:
    """Namespaced, lazily-created metric factory for one simulation."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- factories ------------------------------------------------------------
    def _get_or_create(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create the :class:`Counter` called ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the :class:`Gauge` called ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the :class:`Histogram` called ``name``."""
        return self._get_or_create(name, Histogram)

    # -- lookup ---------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Registered metric names (sorted), optionally prefix-filtered."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- aggregation ----------------------------------------------------------
    def sum_matching(self, suffix: str, prefix: str = "") -> float:
        """Sum counter/gauge values whose name matches ``prefix``/``suffix``.

        The fleet-wide rollup: per-node metrics share a suffix
        (``rpcc0/retries``, ``rpcc1/retries``, ... -> ``/retries``), so a
        chaos or bench report can total them without holding references
        to every client/server object.  Suffixes match whole trailing
        name components only (``"retries"`` never totals
        ``window_retries``); prefixes stay plain ``startswith`` so
        instance-numbered families (``rpcc`` -> ``rpcc0/...``) keep
        rolling up.
        """
        total = 0.0
        for name, metric in self._metrics.items():
            if not _suffix_matches(name, suffix):
                continue
            if prefix and not name.startswith(prefix):
                continue
            if isinstance(metric, (Counter, Gauge)):
                total += metric.value
        return total

    def merged_histogram(self, suffix: str, prefix: str = "") -> Histogram:
        """Bucket-exact union of every histogram matching ``prefix``/``suffix``.

        The distribution analogue of :meth:`sum_matching`: per-node
        histogram fleets (``rpcc0/latency``, ``rpcc1/latency``, ...) fold
        into one cluster-wide :class:`Histogram` ready for
        :func:`percentile_summary`.
        """
        merged = Histogram(f"{prefix}*{suffix}")
        for name in sorted(self._metrics):
            if not _suffix_matches(name, suffix):
                continue
            if prefix and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                merged.merge(metric)
        return merged

    # -- export ---------------------------------------------------------------
    def snapshot(self, prefixes: Optional[Iterable[str]] = None) -> Dict:
        """Flat, deterministic (sorted-key) dict of every metric's state.

        Counters map to their value; gauges to ``{value, peak}``;
        histograms to ``{n, mean, min, max, p50, p90, p99}``.  This is the
        payload behind ``--metrics-out`` and the chaos-soak ``metrics``
        section.
        """
        wanted: Optional[Tuple[str, ...]] = (
            tuple(prefixes) if prefixes is not None else None
        )
        out: Dict = {}
        for name in sorted(self._metrics):
            if wanted is not None and not name.startswith(wanted):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = {"value": metric.value, "peak": metric.peak}
            else:  # Histogram
                out[name] = percentile_summary(metric)
        return out


def registry_of(sim) -> MetricsRegistry:
    """The simulation's registry, created lazily on first access.

    Attached as a plain attribute so the simnet kernel stays ignorant of
    the observability layer and Simulator construction cost is unchanged.
    """
    registry = getattr(sim, _SIM_ATTR, None)
    if registry is None:
        registry = MetricsRegistry()
        setattr(sim, _SIM_ATTR, registry)
    return registry


def publish_scheduler_metrics(sim, registry: MetricsRegistry = None
                              ) -> MetricsRegistry:
    """Mirror the kernel's event-core stats into ``scheduler/*`` gauges.

    The fused batch-charge counters (``scheduler/batch_charge_hits`` /
    ``_fallbacks``) are live counters bumped by the RPC clients; this adds
    the scheduler-structure side — lane/far depth and, on the calendar
    queue, bucket occupancy and the adaptive-width resize/refill counts —
    so one ``--metrics-out`` snapshot covers the whole namespace.
    """
    if registry is None:
        registry = registry_of(sim)
    stats = sim.kernel_stats()
    registry.gauge("scheduler/lane_depth").set(stats["lane_depth"])
    registry.gauge("scheduler/far_depth").set(stats["far_depth"])
    cal = stats.get("calendar")
    if cal is not None:
        registry.gauge("scheduler/bucket_width").set(cal["width"])
        registry.gauge("scheduler/buckets").set(cal["buckets"])
        registry.gauge("scheduler/bucket_occupancy").set(
            cal["bucket_occupancy"])
        registry.gauge("scheduler/max_bucket").set(cal["max_bucket"])
        registry.gauge("scheduler/refills").set(cal["refills"])
        registry.gauge("scheduler/resizes").set(cal["resizes"])
    return registry
