"""Self-contained HTML dashboard for observability artifacts.

``render_dashboard`` turns a flight-recorder payload (plus optional
critical-path analysis and metrics snapshot) into one dependency-free
HTML file: inline SVG sparklines for every recorded series, a
partition-load heatmap, the SLO/skew alert timeline, critical-path blame
tables and metric rollups.  No external scripts, stylesheets, fonts or
images — the file renders offline and the CI job checks exactly that.

Design notes (reference data-viz palette, used unchanged):

* sparklines are single-series 2px lines in the slot-1 categorical blue
  — one series per plot, so the title carries identity and no legend is
  needed;
* the heatmap encodes magnitude with the sequential blue ramp
  (light -> dark, lightest = near zero) with a 2px surface gap between
  cells;
* alert rows use the reserved status colors *with* an icon + label, so
  state never rides on color alone;
* text stays in ink tokens, never series colors; native ``<title>``
  tooltips give every mark a hover value.

Rendering is pure formatting of its inputs (sorted iteration, fixed
float formats, no timestamps), so the same artifact bytes always produce
the same dashboard bytes.  ``validate_dashboard`` checks well-formedness
(balanced tags via ``html.parser``), required section ids, and the
absence of external resource references.
"""

from __future__ import annotations

import html as _html
from html.parser import HTMLParser
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard", "write_dashboard", "validate_dashboard",
           "REQUIRED_SECTIONS"]

#: every dashboard carries these section ids (placeholders when empty)
REQUIRED_SECTIONS = ("summary", "series", "heatmap", "skew", "alerts",
                    "critpath", "metrics")

#: sequential blue ramp, steps 100 -> 700 (lightest = near zero)
_SEQ_RAMP = ("#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
             "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
             "#184f95", "#104281", "#0d366b")

_MAX_SPARKLINES = 64
_MAX_METRIC_ROWS = 300
_MAX_EVENT_ROWS = 200

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #e07a22;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #ef9852;
  }
}
body { background: var(--page); color: var(--ink-1); margin: 0;
       font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
section { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 14px 16px; margin: 14px 0; }
.empty { color: var(--muted); }
table { border-collapse: collapse; width: 100%; margin: 6px 0; }
th { text-align: left; color: var(--ink-2); font-weight: 600;
     border-bottom: 1px solid var(--baseline); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
     font-variant-numeric: tabular-nums; }
td.name { font-variant-numeric: normal; }
.sparks { display: flex; flex-wrap: wrap; gap: 12px; }
.spark { width: 244px; }
.spark .label { color: var(--ink-2); font-size: 12px;
                overflow: hidden; text-overflow: ellipsis;
                white-space: nowrap; }
.spark .val { color: var(--muted); font-size: 11px;
              font-variant-numeric: tabular-nums; }
.bar { background: var(--series-1); height: 8px; border-radius: 0 4px 4px 0;
       display: inline-block; vertical-align: middle; }
.status { font-weight: 600; }
.status.alert { color: var(--status-critical); }
.status.hot { color: var(--status-serious); }
.status.clear { color: var(--status-good); }
svg text { fill: var(--muted); font-size: 10px; }
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _num(value) -> str:
    """Fixed, locale-free number formatting (deterministic output)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return _esc(value)


def _polyline_points(times: Sequence[float], values: Sequence[float],
                     tmin: float, tspan: float, vmin: float,
                     vspan: float) -> List[str]:
    w, h, pad = 240, 40, 3
    pts = []
    for t, v in zip(times, values):
        x = pad + (w - 2 * pad) * (t - tmin) / tspan
        y = h - pad - (h - 2 * pad) * (v - vmin) / vspan
        pts.append(f"{x:.1f},{y:.1f}")
    return pts


def _sparkline(name: str, times: Sequence[float],
               values: Sequence[float],
               compare: Optional[Tuple[Sequence[float],
                                       Sequence[float]]] = None) -> str:
    """One labelled inline-SVG sparkline (2px line, last-value dot).

    With ``compare`` (run B's ``(times, values)``), both series share one
    time/value scale and B overlays in the slot-2 orange beneath A, so a
    divergence is visible at a glance.
    """
    w, h, pad = 240, 40, 3
    all_values = list(values)
    all_times = [times[0], times[-1]]
    if compare and len(compare[1]) >= 2:
        all_values += list(compare[1])
        all_times += [compare[0][0], compare[0][-1]]
    vmin = min(all_values)
    vmax = max(all_values)
    tmin = min(all_times)
    tspan = (max(all_times) - tmin) or 1.0
    vspan = (vmax - vmin) or 1.0
    pts = _polyline_points(times, values, tmin, tspan, vmin, vspan)
    last = pts[-1].split(",")
    tip = (f"{name}: last {_num(values[-1])}, "
           f"min {_num(vmin)}, max {_num(vmax)}, n={len(values)}")
    overlay = ""
    val_extra = ""
    if compare and len(compare[1]) >= 2:
        pts_b = _polyline_points(compare[0], compare[1], tmin, tspan,
                                 vmin, vspan)
        last_b = pts_b[-1].split(",")
        overlay = (
            f'<polyline points="{" ".join(pts_b)}" fill="none" '
            'stroke="var(--series-2)" stroke-width="2" '
            'stroke-linejoin="round" stroke-linecap="round"></polyline>'
            f'<circle cx="{last_b[0]}" cy="{last_b[1]}" r="3" '
            'fill="var(--series-2)"></circle>')
        tip += f"; B last {_num(compare[1][-1])}, n={len(compare[1])}"
        val_extra = f" · B last {_num(compare[1][-1])}"
    return (
        '<div class="spark">'
        f'<div class="label" title="{_esc(name)}">{_esc(name)}</div>'
        f'<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" '
        'role="img"><title>' + _esc(tip) + "</title>"
        f'<line x1="{pad}" y1="{h - pad}" x2="{w - pad}" y2="{h - pad}" '
        'stroke="var(--baseline)" stroke-width="1"></line>'
        + overlay +
        f'<polyline points="{" ".join(pts)}" fill="none" '
        'stroke="var(--series-1)" stroke-width="2" '
        'stroke-linejoin="round" stroke-linecap="round"></polyline>'
        f'<circle cx="{last[0]}" cy="{last[1]}" r="3" '
        'fill="var(--series-1)"></circle></svg>'
        f'<div class="val">last {_num(values[-1])} · '
        f'min {_num(vmin)} · max {_num(vmax)}{val_extra}</div>'
        "</div>"
    )


def _series_section(flight: Optional[Dict],
                    compare: Optional[Dict] = None) -> str:
    if not flight or not flight.get("series"):
        return '<p class="empty">No flight-recorder series.</p>'
    names = sorted(flight["series"])
    compare_series = (compare or {}).get("series") or {}
    shown = names[:_MAX_SPARKLINES]
    parts = []
    if compare_series:
        parts.append('<p class="sub">A in <strong style="color:'
                     'var(--series-1)">blue</strong>, B overlaid in '
                     '<strong style="color:var(--series-2)">orange'
                     "</strong> (shared scales).</p>")
    parts.append('<div class="sparks">')
    for name in shown:
        ts = flight["series"][name]
        if len(ts.get("values", [])) < 2:
            continue
        other = compare_series.get(name)
        pair = None
        if other and len(other.get("values", [])) >= 2:
            pair = (other["times"], other["values"])
        parts.append(_sparkline(name, ts["times"], ts["values"], pair))
    parts.append("</div>")
    if len(names) > len(shown):
        parts.append(f'<p class="empty">Showing {len(shown)} of '
                     f"{len(names)} series (sorted by name).</p>")
    only_b = sorted(set(compare_series) - set(names))
    if only_b:
        parts.append(f'<p class="empty">{len(only_b)} series only in '
                     f"run B: {_esc(', '.join(only_b[:8]))}"
                     f"{'…' if len(only_b) > 8 else ''}</p>")
    return "".join(parts)


def _ops_deltas(flight: Dict) -> List[Tuple[str, List[float]]]:
    """Per-tick op deltas for every ``*/ops`` partition series."""
    rows = []
    for name in sorted(flight.get("series", {})):
        if not name.endswith("/ops"):
            continue
        values = flight["series"][name].get("values", [])
        if len(values) < 2:
            continue
        deltas = [max(0.0, values[i] - values[i - 1])
                  for i in range(1, len(values))]
        rows.append((name, deltas))
    return rows


def _heatmap_section(flight: Optional[Dict]) -> str:
    rows = _ops_deltas(flight) if flight else []
    if not rows:
        return '<p class="empty">No per-partition op series recorded.</p>'
    ncols = max(len(d) for _n, d in rows)
    peak = max((max(d) for _n, d in rows if d), default=0.0)
    cell_w, cell_h, gap, label_w = 12, 14, 2, 150
    width = label_w + ncols * (cell_w + gap)
    height = len(rows) * (cell_h + gap)
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">'
             "<title>Per-partition ops per sampling tick "
             "(darker = more load)</title>"]
    for r, (name, deltas) in enumerate(rows):
        y = r * (cell_h + gap)
        parts.append(f'<text x="0" y="{y + cell_h - 3}">'
                     f"{_esc(name)}</text>")
        for c, delta in enumerate(deltas):
            x = label_w + c * (cell_w + gap)
            if peak > 0 and delta > 0:
                idx = min(len(_SEQ_RAMP) - 1,
                          int((delta / peak) * (len(_SEQ_RAMP) - 1) + 0.5))
                fill = _SEQ_RAMP[idx]
            else:
                fill = "var(--grid)"
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_w}" '
                f'height="{cell_h}" rx="2" fill="{fill}">'
                f"<title>{_esc(name)} tick {c + 1}: "
                f"{_num(delta)} ops</title></rect>")
    parts.append("</svg>")
    parts.append('<p class="sub">Rows: partitions · columns: sampling '
                 "ticks · darker cells carry more ops.</p>")
    return "".join(parts)


def _skew_section(skew: Optional[Dict]) -> str:
    if not skew:
        return '<p class="empty">No skew-detector summary.</p>'
    parts = [
        "<p>"
        f"imbalance (max/mean) <strong>{_num(skew.get('imbalance', 0))}"
        f"</strong> · cv {_num(skew.get('cv', 0))} · "
        f"hot-partition events {_num(skew.get('hot_events', 0))} · "
        f"keys offered {_num(skew.get('keys_offered', 0))}"
        "</p>"
    ]
    tops = skew.get("top_partitions") or []
    if tops:
        parts.append("<table><tr><th>partition</th><th>node</th>"
                     "<th>ops</th><th>share</th><th></th></tr>")
        for row in tops:
            share = row.get("share", 0.0)
            parts.append(
                f'<tr><td class="name">{_esc(row.get("partition"))}</td>'
                f'<td>{_num(row.get("node"))}</td>'
                f'<td>{_num(row.get("ops"))}</td>'
                f"<td>{100 * share:.1f}%</td>"
                f'<td><span class="bar" style="width:'
                f'{max(2, int(140 * share))}px"></span></td></tr>')
        parts.append("</table>")
    keys = skew.get("top_keys") or []
    if keys:
        parts.append("<table><tr><th>hot key</th><th>count</th>"
                     "<th>max error</th></tr>")
        for row in keys:
            parts.append(
                f'<tr><td class="name">{_esc(row.get("key"))}</td>'
                f'<td>{_num(row.get("count"))}</td>'
                f'<td>{_num(row.get("error"))}</td></tr>')
        parts.append("</table>")
    return "".join(parts)


_EVENT_STATUS = {
    "slo.alert": ("alert", "▲ alert"),
    "slo.clear": ("clear", "✓ clear"),
    "skew.hot_partition": ("hot", "▲ hot partition"),
    "skew.cooled": ("clear", "✓ cooled"),
}


def _alerts_section(flight: Optional[Dict], slo: Optional[Dict]) -> str:
    events = (flight or {}).get("events") or []
    parts = []
    if slo:
        rules = slo.get("rules") or []
        parts.append(
            f"<p>{_num(slo.get('alerts', 0))} alert(s) across "
            f"{_num(len(rules))} rule(s), {_num(slo.get('ticks', 0))} "
            "evaluation ticks.</p>")
        if rules:
            parts.append("<table><tr><th>rule</th><th>target</th>"
                         "<th>threshold</th><th>windows (s)</th>"
                         "<th>alerts</th><th>state</th></tr>")
            for rule in rules:
                firing = rule.get("firing")
                state = ('<span class="status alert">▲ firing</span>'
                         if firing else
                         '<span class="status clear">✓ ok</span>')
                parts.append(
                    f'<tr><td class="name">{_esc(rule.get("rule"))}</td>'
                    f'<td>{_num(rule.get("target"))}</td>'
                    f'<td>{_num(rule.get("threshold"))}</td>'
                    f'<td>{_num(rule.get("short_window"))} / '
                    f'{_num(rule.get("long_window"))}</td>'
                    f'<td>{_num(rule.get("alerts"))}</td>'
                    f"<td>{state}</td></tr>")
            parts.append("</table>")
    if events:
        shown = events[:_MAX_EVENT_ROWS]
        parts.append("<table><tr><th>sim time (s)</th><th>event</th>"
                     "<th>detail</th></tr>")
        for entry in shown:
            t, kind, payload = entry[0], entry[1], entry[2]
            cls, label = _EVENT_STATUS.get(kind, ("", kind))
            badge = (f'<span class="status {cls}">{_esc(label)}</span>'
                     if cls else _esc(label))
            detail = ""
            if isinstance(payload, dict):
                detail = " · ".join(
                    f"{_esc(k)}={_num(payload[k])}"
                    for k in sorted(payload) if k != "t")
            parts.append(f"<tr><td>{_num(t)}</td>"
                         f'<td class="name">{badge} '
                         f"<small>({_esc(kind)})</small></td>"
                         f'<td class="name">{detail}</td></tr>')
        parts.append("</table>")
        if len(events) > len(shown):
            parts.append(f'<p class="empty">Showing {len(shown)} of '
                         f"{len(events)} events.</p>")
    if not parts:
        return '<p class="empty">No alerts or monitor events.</p>'
    return "".join(parts)


def _blame_table(blame: Dict) -> str:
    stages = blame.get("stages") or []
    if not blame.get("n") or not stages:
        return '<p class="empty">No traces.</p>'
    parts = ["<table><tr><th>stage</th><th>total (s)</th>"
             "<th>share</th><th></th></tr>"]
    for row in stages:
        share = row.get("share", 0.0)
        parts.append(
            f'<tr><td class="name">{_esc(row.get("stage"))}</td>'
            f'<td>{_num(row.get("total"))}</td>'
            f"<td>{100 * share:.1f}%</td>"
            f'<td><span class="bar" style="width:'
            f'{max(2, int(160 * share))}px"></span></td></tr>')
    parts.append("</table>")
    return "".join(parts)


def _critpath_section(critpath: Optional[Dict]) -> str:
    if not critpath or not critpath.get("traces"):
        return ('<p class="empty">No span data (run with tracing and '
                "pass <code>--spans</code>).</p>")
    parts = [
        f"<p>{_num(critpath['traces'])} traced RPCs · tiling residual "
        f"max {_num(critpath.get('tiling_max_residual', 0))} s · "
        f"{_num(critpath.get('clamped', 0))} retried trace(s) "
        "rescaled.</p>",
        "<h2>Cluster-wide stage blame</h2>",
        _blame_table(critpath.get("overall") or {}),
    ]
    slow = critpath.get("slow") or {}
    if slow.get("n"):
        q = slow.get("quantile", 0.99)
        parts.append(f"<h2>Where does p{100 * q:g} live</h2>")
        parts.append(f"<p>{_num(slow['n'])} trace(s) at or above "
                     f"{_num(slow.get('threshold', 0))} s.</p>")
        parts.append(_blame_table(slow))
    groups = critpath.get("groups") or []
    if groups:
        parts.append("<h2>Blame by (dst node, stream)</h2>")
        parts.append("<table><tr><th>dst</th><th>stream</th><th>n</th>"
                     "<th>e2e total (s)</th><th>e2e mean (s)</th>"
                     "<th>dominant stage</th></tr>")
        for g in groups:
            parts.append(
                f"<tr><td>{_num(g.get('dst'))}</td>"
                f"<td>{_num(g.get('stream'))}</td>"
                f"<td>{_num(g.get('n'))}</td>"
                f"<td>{_num(g.get('e2e_total'))}</td>"
                f"<td>{_num(g.get('e2e_mean'))}</td>"
                f'<td class="name">{_esc(g.get("dominant_stage"))} '
                f"({100 * g.get('dominant_share', 0.0):.1f}%)</td></tr>")
        parts.append("</table>")
    top = critpath.get("top_traces") or []
    if top:
        parts.append("<h2>Slowest traces</h2>")
        parts.append("<table><tr><th>trace</th><th>op</th><th>dst</th>"
                     "<th>e2e (s)</th><th>dominant stage</th></tr>")
        for t in top:
            stages = t.get("stages") or {}
            dom = max(stages, key=lambda s: stages[s]) if stages else ""
            parts.append(
                f"<tr><td>{_num(t.get('trace_id'))}</td>"
                f'<td class="name">{_esc(t.get("op"))}</td>'
                f"<td>{_num(t.get('dst'))}</td>"
                f"<td>{_num(t.get('e2e'))}</td>"
                f'<td class="name">{_esc(dom)} '
                f"({_num(stages.get(dom, 0.0))} s)</td></tr>")
        parts.append("</table>")
    return "".join(parts)


def _metrics_section(metrics: Optional[Dict]) -> str:
    if not metrics:
        return '<p class="empty">No metrics snapshot.</p>'
    names = sorted(metrics)
    shown = names[:_MAX_METRIC_ROWS]
    parts = ["<table><tr><th>metric</th><th>value</th></tr>"]
    for name in shown:
        value = metrics[name]
        if isinstance(value, dict):
            text = " · ".join(f"{_esc(k)}={_num(value[k])}"
                              for k in sorted(value))
        else:
            text = _num(value)
        parts.append(f'<tr><td class="name">{_esc(name)}</td>'
                     f'<td class="name">{text}</td></tr>')
    parts.append("</table>")
    if len(names) > len(shown):
        parts.append(f'<p class="empty">Showing {len(shown)} of '
                     f"{len(names)} metrics.</p>")
    return "".join(parts)


def _delta_cell(rel: Optional[float], delta) -> str:
    if rel is None:
        return '<span class="status alert">new</span>'
    cls = "alert" if abs(rel) >= 0.25 else ""
    badge = f"{rel:+.1%}"
    if cls:
        return f'<span class="status {cls}">{_esc(badge)}</span>'
    return _esc(badge)


def _diff_section(diff: Optional[Dict]) -> str:
    """Run-forensics A/B tables (fingerprint banner + delta tables)."""
    if not diff:
        return '<p class="empty">No A/B diff (single-run report).</p>'
    fp = diff.get("fingerprint") or {}
    significant = diff.get("significant")
    state = ('<span class="status alert">▲ significant change</span>'
             if significant else
             '<span class="status clear">✓ no significant change</span>')
    parts = [
        f"<p>{state} · A = {_esc(diff['a']['name'])} "
        f"({_esc(diff['a']['artifact'])}) · B = {_esc(diff['b']['name'])} "
        f"({_esc(diff['b']['artifact'])})</p>",
        f"<p><strong>fingerprint: {_esc(fp.get('label', '-'))}</strong> "
        f"<code>{_esc(fp.get('code', ''))}</code>"
        + (f" · {_esc(fp['evidence'])}" if fp.get("evidence") else "")
        + "</p>",
    ]
    changes = diff.get("config_changes") or []
    if changes:
        parts.append("<table><tr><th>config</th><th>A</th><th>B</th></tr>")
        for c in changes[:20]:
            parts.append(f'<tr><td class="name">{_esc(c["key"])}</td>'
                         f'<td class="name">{_esc(c["a"])}</td>'
                         f'<td class="name">{_esc(c["b"])}</td></tr>')
        parts.append("</table>")
    counter_rows = (diff.get("counters") or {}).get("rows") or []
    if counter_rows:
        parts.append("<h2>Counter deltas</h2>")
        parts.append("<table><tr><th>metric</th><th>A</th><th>B</th>"
                     "<th>Δ</th><th>status</th></tr>")
        for r in counter_rows[:30]:
            parts.append(
                f'<tr><td class="name">{_esc(r["key"])}</td>'
                f"<td>{_num(r['a']) if r['a'] is not None else '-'}</td>"
                f"<td>{_num(r['b']) if r['b'] is not None else '-'}</td>"
                f"<td>{_delta_cell(r['rel'], r['delta'])}</td>"
                f'<td class="name">{_esc(r["status"])}'
                f"{' (noisy)' if r.get('noisy') else ''}</td></tr>")
        parts.append("</table>")
    quantile_rows = (diff.get("quantiles") or {}).get("rows") or []
    if quantile_rows:
        parts.append("<h2>Quantile shifts</h2>")
        parts.append("<table><tr><th>histogram</th><th>n A→B</th>"
                     "<th>shifts</th></tr>")
        for r in quantile_rows[:30]:
            if r.get("status") in ("new_signal", "gone"):
                text = (f'<span class="status alert">'
                        f"{_esc(r['status'].replace('_', ' '))}</span>")
            else:
                bits = []
                for metric, s in (r.get("shifts") or {}).items():
                    rel = ("new" if s["rel"] is None
                           else format(s["rel"], "+.0%"))
                    bits.append(f"{metric} {_num(s['a'])}→{_num(s['b'])} "
                                f"({rel})")
                text = _esc(" · ".join(bits))
            parts.append(f'<tr><td class="name">{_esc(r["key"])}</td>'
                         f"<td>{_num(r['n_a'])}→{_num(r['n_b'])}</td>"
                         f'<td class="name">{text}</td></tr>')
        parts.append("</table>")
    for section_key, label, row_key in (("critpath", "Stage-blame deltas",
                                         "stage"),
                                        ("profile", "Wall-share deltas",
                                         "subsystem")):
        section = diff.get(section_key)
        if not section or not section.get("rows"):
            continue
        parts.append(f"<h2>{label}</h2>")
        parts.append(f"<table><tr><th>{row_key}</th><th>A</th><th>B</th>"
                     "<th>Δ</th></tr>")
        for r in section["rows"][:20]:
            parts.append(
                f'<tr><td class="name">{_esc(r[row_key])}</td>'
                f"<td>{100 * r['a']:.1f}%</td>"
                f"<td>{100 * r['b']:.1f}%</td>"
                f"<td>{r['delta']:+.1%}</td></tr>")
        parts.append("</table>")
    skew = diff.get("skew")
    if skew:
        parts.append("<h2>Skew churn</h2>")
        parts.append(
            f"<p>imbalance {_num(skew['imbalance_a'])} → "
            f"{_num(skew['imbalance_b'])} · partition top-k jaccard "
            f"{skew['partitions']['jaccard']:.2f} · key top-k jaccard "
            f"{skew['keys']['jaccard']:.2f}</p>")
    return "".join(parts)


def _summary_section(flight: Optional[Dict], critpath: Optional[Dict],
                     metrics: Optional[Dict]) -> str:
    cells = []
    if flight:
        cells.append(f"flight recorder: {_num(flight.get('samples', 0))} "
                     f"samples at {_num(flight.get('interval', 0))} s "
                     f"cadence, {len(flight.get('series', {}))} series, "
                     f"{len(flight.get('events', []))} events")
        skew = flight.get("skew")
        if skew:
            cells.append(f"imbalance {_num(skew.get('imbalance', 0))}, "
                         f"{_num(skew.get('hot_events', 0))} "
                         "hot-partition event(s)")
        slo = flight.get("slo")
        if slo:
            cells.append(f"{_num(slo.get('alerts', 0))} SLO alert(s)")
    if critpath and critpath.get("traces"):
        cells.append(f"{_num(critpath['traces'])} traced RPCs analyzed")
    if metrics:
        cells.append(f"{len(metrics)} metrics in snapshot")
    if not cells:
        return '<p class="empty">No artifacts provided.</p>'
    return "<p>" + " · ".join(cells) + "</p>"


def render_dashboard(flight: Optional[Dict] = None,
                     critpath: Optional[Dict] = None,
                     metrics: Optional[Dict] = None,
                     title: str = "Observability report",
                     compare: Optional[Dict] = None,
                     diff: Optional[Dict] = None) -> str:
    """Render the full dashboard HTML (deterministic for fixed inputs).

    A/B comparison mode: pass ``compare`` (run B's flight payload) to
    overlay its series on run A's sparklines, and/or ``diff`` (a
    :func:`repro.obs.diff.diff_runs` RunDiff) to add the forensics
    section with fingerprint banner and delta tables.  Single-run
    dashboards are unchanged — the ``diff`` section id is additive and
    not part of :data:`REQUIRED_SECTIONS`.
    """
    skew = (flight or {}).get("skew")
    slo = (flight or {}).get("slo")
    sections = [
        ("summary", "Summary",
         _summary_section(flight, critpath, metrics)),
        ("series", "Flight-recorder series",
         _series_section(flight, compare=compare)),
        ("heatmap", "Partition load heatmap",
         _heatmap_section(flight)),
        ("skew", "Skew detector",
         _skew_section(skew)),
        ("alerts", "SLO burn-rate alerts",
         _alerts_section(flight, slo)),
        ("critpath", "Critical path",
         _critpath_section(critpath)),
        ("metrics", "Metric rollups",
         _metrics_section(metrics)),
    ]
    if compare is not None or diff is not None:
        sections.insert(1, ("diff", "Run forensics (A vs B)",
                            _diff_section(diff)))
    body = [f"<h1>{_esc(title)}</h1>",
            '<p class="sub">All times are simulated seconds; the report '
            "is self-contained and renders offline.</p>"]
    for sid, heading, content in sections:
        body.append(f'<section id="{sid}"><h2>{_esc(heading)}</h2>'
                    f"{content}</section>")
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            '<meta charset="utf-8">'
            '<meta name="viewport" '
            'content="width=device-width, initial-scale=1">'
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head>"
            "<body><main>" + "".join(body) + "</main></body></html>\n")


def write_dashboard(path: str, flight: Optional[Dict] = None,
                    critpath: Optional[Dict] = None,
                    metrics: Optional[Dict] = None,
                    title: str = "Observability report",
                    compare: Optional[Dict] = None,
                    diff: Optional[Dict] = None) -> int:
    """Write the dashboard; returns the byte length written."""
    text = render_dashboard(flight=flight, critpath=critpath,
                            metrics=metrics, title=title,
                            compare=compare, diff=diff)
    with open(path, "w") as fh:
        fh.write(text)
    return len(text)


_VOID_TAGS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link",
    "meta", "source", "track", "wbr",
})


class _DashboardChecker(HTMLParser):
    """Tag-balance + attribute scanner for :func:`validate_dashboard`."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: List[str] = []
        self.ids: set = set()
        self.errors: List[str] = []
        self.saw_html = False

    def _scan_attrs(self, tag: str, attrs) -> None:
        for key, value in attrs:
            if key == "id" and value:
                self.ids.add(value)
            if key in ("src", "href") and value:
                if value.startswith(("http:", "https:", "//")):
                    self.errors.append(
                        f"external resource reference in <{tag} "
                        f"{key}={value!r}>")

    def handle_starttag(self, tag, attrs):
        if tag == "html":
            self.saw_html = True
        self._scan_attrs(tag, attrs)
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self._scan_attrs(tag, attrs)

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        if not self.stack:
            self.errors.append(f"closing </{tag}> with no open tag")
            return
        top = self.stack.pop()
        if top != tag:
            self.errors.append(f"mismatched </{tag}>; open tag was "
                               f"<{top}>")


def validate_dashboard(source: str, from_file: bool = True) -> List[str]:
    """Validate dashboard HTML; returns a list of error strings.

    Checks: parseable, balanced tags, an ``<html>`` root, every
    :data:`REQUIRED_SECTIONS` id present, and zero external resource
    references (the self-containment guarantee).
    """
    if from_file:
        with open(source) as fh:
            text = fh.read()
    else:
        text = source
    checker = _DashboardChecker()
    try:
        checker.feed(text)
        checker.close()
    except Exception as exc:  # pragma: no cover - parser is permissive
        return [f"unparseable HTML: {exc}"]
    errors = list(checker.errors)
    if not checker.saw_html:
        errors.append("missing <html> root element")
    if checker.stack:
        errors.append(f"unclosed tags at EOF: {checker.stack}")
    for sid in REQUIRED_SECTIONS:
        if sid not in checker.ids:
            errors.append(f"missing required section id {sid!r}")
    return errors
