"""Observability layer: the unified metrics registry and RPC span tracing.

Every simulation gets a lazily-created :class:`~repro.obs.registry.MetricsRegistry`
(namespaced counters / gauges / histograms — the factory behind every
layer's observables) and, when explicitly installed, a
:class:`~repro.obs.span.Tracer` that follows one logical op across the
full RoR pipeline as parent/child spans.  Tracing is off by default and
purely observational: a traced-off run is bit-identical to a build
without this package, and a traced-on run produces the same simulated
results (spans only read ``sim.now``; they never schedule events).

See ``docs/OBSERVABILITY.md`` for the naming scheme, span stages and
exporter formats.
"""

from repro.obs.registry import (
    MetricsRegistry,
    SLO_QUANTILES,
    percentile_summary,
    publish_scheduler_metrics,
    registry_of,
)
from repro.obs.span import (
    STAGE_NAMES,
    Span,
    Tracer,
    install_tracer,
    tracer_of,
)
from repro.obs.exporters import (
    SPAN_SCHEMA,
    chrome_trace,
    metrics_snapshot,
    span_record,
    validate_chrome_trace,
    validate_span_log,
    write_chrome_trace,
    write_metrics_json,
    write_span_jsonl,
)
from repro.obs.series import FlightRecorder, select_matches
from repro.obs.skew import SkewDetector, SpaceSavingSketch
from repro.obs.slo import SLOMonitor, SLORule, counter_sli, latency_sli
from repro.obs.critpath import analyze as critpath_analyze
from repro.obs.critpath import load_spans
from repro.obs.profile import (
    WallProfiler,
    WallScope,
    classify_function,
    render_profile,
    validate_profile,
    write_folded,
    write_profile_json,
)
from repro.obs.diff import (
    FINGERPRINT_CODES,
    detect_kind,
    diff_paths,
    diff_runs,
    load_artifact,
    render_diff,
    write_diff_json,
)
from repro.obs.report import (
    render_dashboard,
    validate_dashboard,
    write_dashboard,
)

__all__ = [
    "MetricsRegistry",
    "SLO_QUANTILES",
    "percentile_summary",
    "publish_scheduler_metrics",
    "registry_of",
    "Span",
    "Tracer",
    "STAGE_NAMES",
    "install_tracer",
    "tracer_of",
    "SPAN_SCHEMA",
    "chrome_trace",
    "metrics_snapshot",
    "span_record",
    "validate_chrome_trace",
    "validate_span_log",
    "write_chrome_trace",
    "write_metrics_json",
    "write_span_jsonl",
    "FlightRecorder",
    "select_matches",
    "SkewDetector",
    "SpaceSavingSketch",
    "SLOMonitor",
    "SLORule",
    "counter_sli",
    "latency_sli",
    "critpath_analyze",
    "load_spans",
    "WallProfiler",
    "WallScope",
    "classify_function",
    "render_profile",
    "validate_profile",
    "write_folded",
    "write_profile_json",
    "FINGERPRINT_CODES",
    "detect_kind",
    "diff_paths",
    "diff_runs",
    "load_artifact",
    "render_diff",
    "write_diff_json",
    "render_dashboard",
    "validate_dashboard",
    "write_dashboard",
]
