"""Multi-window burn-rate SLO monitoring.

Implements the SRE-workbook alerting discipline over the simulation's
own metrics: an SLO (say 99.9% availability) grants an error budget of
``1 - target``; the **burn rate** over a window is the bad-event fraction
in that window divided by the budget (burn 1.0 = spending exactly the
budget).  An alert requires *both* a short window (fast reaction, and it
clears quickly once the episode ends) and a long window (immunity to
single-tick blips) to exceed the rule's threshold.

Windows are expressed in sim-seconds — a "1h-equivalent" long window in
a run whose whole life is 20 sim-milliseconds is just a proportionally
scaled span; harnesses default them to small multiples of the
flight-recorder cadence.

Two SLI shapes cover the serving harness:

* :func:`counter_sli` — ratio of bad-event counters (gave-up sheds,
  errors) to a total counter (availability SLI);
* :func:`latency_sli` — fraction of requests over a latency objective,
  via :meth:`~repro.simnet.stats.Histogram.count_above` (conservative on
  log2 buckets; exact at bucket boundaries).

The monitor only *reads* metrics and appends to an :class:`EventLog`
(``slo.alert`` / ``slo.clear`` with sim timestamps) — no simulator
events, so monitored runs keep identical simulated results, and the
alert stream is deterministic across same-seed reruns.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry
from repro.simnet.stats import Histogram
from repro.simnet.trace import EventLog

__all__ = ["SLORule", "SLOMonitor", "counter_sli", "latency_sli"]

#: an SLI probe returns cumulative ``(bad, total)`` event counts
SLIProbe = Callable[[], Tuple[float, float]]


def counter_sli(registry: MetricsRegistry, bad: Sequence[str],
                total: Sequence[str]) -> SLIProbe:
    """Availability-style SLI from counter names: bad / (total + bad).

    ``bad`` counters (e.g. ``serving/shed_gaveup``, ``serving/errors``)
    are failed requests *not* included in the ``total`` counters (e.g.
    ``serving/completed``), so the denominator adds them back in.
    """
    def probe() -> Tuple[float, float]:
        b = 0.0
        for name in bad:
            metric = registry.get(name)
            if metric is not None:
                b += float(metric.value)
        t = b
        for name in total:
            metric = registry.get(name)
            if metric is not None:
                t += float(metric.value)
        return b, t
    return probe


def latency_sli(registry: MetricsRegistry, histogram: str,
                threshold: float) -> SLIProbe:
    """Latency SLI: requests over ``threshold`` / all requests."""
    def probe() -> Tuple[float, float]:
        metric = registry.get(histogram)
        if not isinstance(metric, Histogram):
            return 0.0, 0.0
        return float(metric.count_above(threshold)), float(metric.n)
    return probe


class SLORule:
    """One multi-window burn-rate alerting rule.

    Fires when the burn rate over *both* ``short_window`` and
    ``long_window`` sim-seconds reaches ``threshold`` (e.g. threshold 10
    on a 99.9% target = burning a month's budget in ~3 days, scaled).
    """

    def __init__(self, name: str, sli: SLIProbe, target: float,
                 short_window: float, long_window: float,
                 threshold: float = 10.0):
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if short_window <= 0 or long_window < short_window:
            raise ValueError("need 0 < short_window <= long_window")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.name = name
        self.sli = sli
        self.target = target
        self.budget = 1.0 - target
        self.short_window = short_window
        self.long_window = long_window
        self.threshold = threshold
        # (t, bad, total) cumulative samples, trimmed to the long window
        self._history: List[Tuple[float, float, float]] = []
        self.firing = False
        self.alerts = 0

    def _burn(self, now: float, window: float) -> float:
        """Burn rate over ``[now - window, now]`` from cumulative samples."""
        history = self._history
        if not history:
            return 0.0
        latest = history[-1]
        base = None
        cutoff = now - window
        for sample in history:
            if sample[0] >= cutoff:
                base = sample
                break
        if base is None or base is latest:
            return 0.0
        bad = latest[1] - base[1]
        total = latest[2] - base[2]
        if total <= 0:
            return 0.0
        return (bad / total) / self.budget

    def observe(self, now: float) -> Dict:
        """Record one SLI sample; returns the rule's instantaneous state."""
        bad, total = self.sli()
        history = self._history
        # Keep one sample older than the long window as the delta base.
        history.append((now, bad, total))
        cutoff = now - self.long_window
        drop = 0
        while drop < len(history) - 2 and history[drop + 1][0] < cutoff:
            drop += 1
        if drop:
            del history[:drop]
        short = self._burn(now, self.short_window)
        long = self._burn(now, self.long_window)
        return {
            "rule": self.name,
            "bad": bad,
            "total": total,
            "short_burn": short,
            "long_burn": long,
            "breach": short >= self.threshold and long >= self.threshold,
        }


class SLOMonitor:
    """Evaluates burn-rate rules at each flight-recorder tick.

    Alerts are edge-triggered: one ``slo.alert`` event when a rule starts
    breaching and one ``slo.clear`` when it stops, each carrying the sim
    timestamp and both window burns.
    """

    def __init__(self, rules: Sequence[SLORule],
                 event_log: Optional[EventLog] = None):
        self.rules = list(rules)
        self.events = event_log
        self.ticks = 0
        self.alerts: List[Dict] = []

    def tick(self, now: float) -> None:
        self.ticks += 1
        for rule in self.rules:
            state = rule.observe(now)
            if state["breach"] and not rule.firing:
                rule.firing = True
                rule.alerts += 1
                alert = {
                    "t": now,
                    "rule": rule.name,
                    "target": rule.target,
                    "short_burn": state["short_burn"],
                    "long_burn": state["long_burn"],
                }
                self.alerts.append(alert)
                if self.events is not None:
                    self.events.log("slo.alert", alert)
            elif not state["breach"] and rule.firing:
                rule.firing = False
                if self.events is not None:
                    self.events.log("slo.clear", {
                        "t": now,
                        "rule": rule.name,
                        "short_burn": state["short_burn"],
                        "long_burn": state["long_burn"],
                    })

    def summary(self) -> Dict:
        """Per-rule alert counts and final burn state (JSON-ready)."""
        return {
            "ticks": self.ticks,
            "alerts": len(self.alerts),
            "rules": [
                {
                    "rule": rule.name,
                    "target": rule.target,
                    "threshold": rule.threshold,
                    "short_window": rule.short_window,
                    "long_window": rule.long_window,
                    "alerts": rule.alerts,
                    "firing": rule.firing,
                }
                for rule in self.rules
            ],
        }
