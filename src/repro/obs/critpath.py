"""Critical-path analysis over RPC span trees.

ROADMAP item 3's profile-first tool: reduce a span log to *attributions*
— for every traced RPC, exactly where did its end-to-end simulated
latency go?  The client-side stage spans tile the root by construction
(PR 5), so the decomposition is exact:

* ``client.marshal`` / ``client.pull`` / ``client.settle`` — client CPU;
* ``client.send`` — request serialization onto the NIC (fair-weather);
* ``server.queue`` / ``server.execute`` — server-side detail spans nested
  inside the ``server.wait`` (or hardened ``rpc.deliver``) interval;
* ``transport`` — the remainder of that interval: network delivery,
  response return and (on the hardened path) retransmission backoff.

Retried RPCs can execute more than once server-side (a lost *response*
re-executes before dedup catches up), so queue/execute sums occasionally
exceed the wait interval; they are then scaled proportionally into it —
attributions always sum exactly to the measured end-to-end latency
(``clamped`` counts how often this fired).

Outputs: cluster-wide per-stage blame, per-``(dst node, stream)`` blame
groups, the "where does p99 live" table (stage blame within the slowest
``1 - slow_quantile`` of traces), and the top-N slowest traces with full
per-stage breakdowns.  Works on live :class:`~repro.obs.span.Tracer`
objects or span JSON-lines files — same records either way.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.exporters import span_record
from repro.obs.span import Span, Tracer

__all__ = ["analyze", "load_spans", "spans_of", "STAGE_ORDER"]

#: attribution-stage display order (every per-trace breakdown sums to e2e)
STAGE_ORDER = (
    "client.marshal",
    "client.send",
    "server.queue",
    "server.execute",
    "transport",
    "client.pull",
    "client.settle",
)

#: root-tiling stage names that wrap the server interval
_WAIT_STAGES = ("server.wait", "rpc.deliver")
_CLIENT_STAGES = ("client.marshal", "client.send", "client.pull",
                  "client.settle")


def load_spans(path: str) -> List[Dict]:
    """Load span records from a ``write_span_jsonl`` file."""
    records: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_of(source) -> List[Dict]:
    """Normalize a Tracer / Span list / record list into span records."""
    if isinstance(source, Tracer):
        spans: Sequence = source.spans
    else:
        spans = source
    out: List[Dict] = []
    for span in spans:
        if isinstance(span, Span):
            if span.finished:
                out.append(span_record(span))
        else:
            out.append(span)
    return out


def _is_rpc_root(record: Dict) -> bool:
    """An RPC pipeline root: ``rpc.<op>`` but not the deliver stage.

    Coalesced batch RPCs hang under a ``coalesce.buffer`` parent, so
    pipeline roots are identified by *name*, not by ``parent_id is None``.
    """
    name = record.get("name", "")
    return name.startswith("rpc.") and name != "rpc.deliver"


def _breakdown(root: Dict, children: List[Dict]) -> Optional[Dict]:
    """Exact per-stage attribution of one RPC root (sums to ``dur``)."""
    stages = {stage: 0.0 for stage in STAGE_ORDER}
    wait = 0.0
    tiled = 0.0
    found = False
    for child in children:
        name = child["name"]
        dur = child["dur"]
        if name in _CLIENT_STAGES:
            stages[name] += dur
            tiled += dur
            found = True
        elif name in _WAIT_STAGES:
            wait += dur
            tiled += dur
            found = True
    if not found:
        return None
    queue = sum(c["dur"] for c in children if c["name"] == "server.queue")
    execute = sum(c["dur"] for c in children if c["name"] == "server.execute")
    clamped = False
    inside = queue + execute
    if inside > wait and inside > 0:
        # Re-executed retries: scale the server detail into the interval
        # the client actually waited, keeping the tiling exact.
        scale = wait / inside
        queue *= scale
        execute *= scale
        clamped = True
    stages["server.queue"] = queue
    stages["server.execute"] = execute
    stages["transport"] = wait - queue - execute
    return {
        "trace_id": root["trace_id"],
        "op": root["name"],
        "dst": (root.get("attrs") or {}).get("dst"),
        "stream": (root.get("attrs") or {}).get("stream"),
        "e2e": root["dur"],
        "residual": root["dur"] - tiled,
        "clamped": clamped,
        "stages": stages,
    }


def _blame(breakdowns: List[Dict]) -> Dict:
    """Aggregate stage blame over a set of per-trace breakdowns."""
    totals = {stage: 0.0 for stage in STAGE_ORDER}
    e2e = 0.0
    for b in breakdowns:
        e2e += b["e2e"]
        for stage in STAGE_ORDER:
            totals[stage] += b["stages"][stage]
    return {
        "n": len(breakdowns),
        "e2e_total": e2e,
        "stages": [
            {
                "stage": stage,
                "total": totals[stage],
                "share": totals[stage] / e2e if e2e > 0 else 0.0,
            }
            for stage in STAGE_ORDER
        ],
    }


def analyze(source, top_n: int = 5, slow_quantile: float = 0.99,
            max_groups: int = 10) -> Dict:
    """Full critical-path report over a span source (JSON-ready).

    ``source`` is a :class:`Tracer`, a list of :class:`Span` objects, or
    a list of span records (e.g. from :func:`load_spans`).
    """
    if not 0.0 < slow_quantile < 1.0:
        raise ValueError("slow_quantile must be in (0, 1)")
    records = spans_of(source)
    by_parent: Dict[int, List[Dict]] = {}
    for rec in records:
        pid = rec.get("parent_id")
        if pid is not None:
            by_parent.setdefault(pid, []).append(rec)

    breakdowns: List[Dict] = []
    skipped = 0
    for rec in records:
        if not _is_rpc_root(rec):
            continue
        b = _breakdown(rec, by_parent.get(rec["span_id"], []))
        if b is None:
            skipped += 1
        else:
            breakdowns.append(b)

    if not breakdowns:
        return {
            "kind": "critpath",
            "traces": 0,
            "skipped": skipped,
            "overall": _blame([]),
            "slow": {"quantile": slow_quantile, "threshold": 0.0,
                     **_blame([])},
            "groups": [],
            "top_traces": [],
            "tiling_max_residual": 0.0,
            "clamped": 0,
        }

    # Cluster-wide "where does the time go".
    overall = _blame(breakdowns)

    # "Where does p99 live": blame within the slowest tail.
    latencies = sorted(b["e2e"] for b in breakdowns)
    rank = min(len(latencies) - 1,
               max(0, int(slow_quantile * len(latencies))))
    threshold = latencies[rank]
    slow = [b for b in breakdowns if b["e2e"] >= threshold]
    slow_blame = _blame(slow)

    # Per-(dst node, stream) blame groups, heaviest first.
    grouped: Dict[tuple, List[Dict]] = {}
    for b in breakdowns:
        grouped.setdefault((b["dst"], b["stream"]), []).append(b)
    groups = []
    for (dst, stream), members in grouped.items():
        blame = _blame(members)
        dominant = max(blame["stages"], key=lambda s: s["total"])
        groups.append({
            "dst": dst,
            "stream": stream,
            "n": blame["n"],
            "e2e_total": blame["e2e_total"],
            "e2e_mean": blame["e2e_total"] / blame["n"],
            "dominant_stage": dominant["stage"],
            "dominant_share": dominant["share"],
            "stages": blame["stages"],
        })
    groups.sort(key=lambda g: (-g["e2e_total"],
                               g["dst"] if g["dst"] is not None else -1,
                               str(g["stream"])))

    # Top-N slowest individual traces (stable order on ties).
    ranked = sorted(breakdowns, key=lambda b: (-b["e2e"], b["trace_id"]))
    top = [
        {
            "trace_id": b["trace_id"],
            "op": b["op"],
            "dst": b["dst"],
            "stream": b["stream"],
            "e2e": b["e2e"],
            "stages": {s: b["stages"][s] for s in STAGE_ORDER},
        }
        for b in ranked[:top_n]
    ]

    return {
        "kind": "critpath",
        "traces": len(breakdowns),
        "skipped": skipped,
        "overall": overall,
        "slow": {"quantile": slow_quantile, "threshold": threshold,
                 **slow_blame},
        "groups": groups[:max_groups],
        "top_traces": top,
        "tiling_max_residual": max(abs(b["residual"]) for b in breakdowns),
        "clamped": sum(1 for b in breakdowns if b["clamped"]),
    }
